//! iCOIL — scenario-aware autonomous parking via integrated constrained
//! optimization and imitation learning.
//!
//! This umbrella crate re-exports the whole workspace under one name, so
//! downstream users can depend on `icoil` alone:
//!
//! * [`geom`] — 2-D geometry primitives;
//! * [`vehicle`] — Ackermann model, actions, discretization;
//! * [`world`] — the deterministic parking simulator;
//! * [`perception`] — BEV rendering and object detection;
//! * [`nn`] — the from-scratch neural-network library;
//! * [`solver`] — dense linear algebra and the ADMM QP solver;
//! * [`planner`] — Reeds-Shepp curves and hybrid A*;
//! * [`il`] — imitation learning (expert, dataset, trainer, model);
//! * [`co`] — the constrained-optimization MPC controller;
//! * [`hsa`] — hybrid scenario analysis and mode switching;
//! * [`core`] — the iCOIL policy, baselines and evaluation harness.
//!
//! # Example
//!
//! ```
//! use icoil::world::{Difficulty, ScenarioConfig, World};
//!
//! let scenario = ScenarioConfig::new(Difficulty::Easy, 1).build();
//! let world = World::new(scenario);
//! assert!(!world.in_collision());
//! ```

#![deny(missing_docs)]

pub use icoil_co as co;
pub use icoil_core as core;
pub use icoil_geom as geom;
pub use icoil_hsa as hsa;
pub use icoil_il as il;
pub use icoil_nn as nn;
pub use icoil_perception as perception;
pub use icoil_planner as planner;
pub use icoil_solver as solver;
pub use icoil_telemetry as telemetry;
pub use icoil_vehicle as vehicle;
pub use icoil_world as world;
