//! The `icoil` command-line interface.
//!
//! ```text
//! icoil run       --method co --difficulty easy --seed 7 [--ascii] [--model FILE]
//! icoil evaluate  --method icoil --difficulty normal --episodes 20 [--model FILE]
//! icoil train     --episodes 8 --epochs 15 --rounds 1 --out artifacts/il_model.json
//! icoil plan      --difficulty easy --seed 3
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set at the sanctioned offline crates.

use icoil::core::{artifacts, eval, ICoilConfig, Method};
use icoil::il::IlModel;
use icoil::planner::{plan as hybrid_plan, PlannerConfig, PlanningProblem};
use icoil::world::episode::EpisodeConfig;
use icoil::world::{
    render_trace, Difficulty, MapKind, ParkingStats, ScenarioConfig, World,
};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, options)) = parse_args(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "run" => cmd_run(&options),
        "evaluate" => cmd_evaluate(&options),
        "train" => cmd_train(&options),
        "plan" => cmd_plan(&options),
        _ => Err(format!("unknown command `{command}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
icoil — scenario-aware autonomous parking

USAGE:
  icoil run      --method co|il|icoil --difficulty easy|normal|hard --seed N
                 [--map mocam|compact|parallel] [--model FILE] [--max-time SECS] [--ascii]
  icoil evaluate --method co|il|icoil --difficulty D --episodes N [--model FILE]
                 [--parallelism W]  (default: ICOIL_PARALLELISM or core count)
  icoil train    [--episodes N] [--epochs E] [--rounds R] [--out FILE]
  icoil plan     --difficulty D --seed N";

/// Splits `cmd --key value --key value …` into the command name and an
/// option map. Returns `None` when the shape is wrong.
fn parse_args(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let mut it = args.iter();
    let command = it.next()?.clone();
    let mut options = HashMap::new();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?;
        if key == "ascii" {
            options.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it.next()?;
        options.insert(key.to_string(), value.clone());
    }
    Some((command, options))
}

fn get_difficulty(options: &HashMap<String, String>) -> Result<Difficulty, String> {
    match options.get("difficulty").map(String::as_str) {
        None | Some("easy") => Ok(Difficulty::Easy),
        Some("normal") => Ok(Difficulty::Normal),
        Some("hard") => Ok(Difficulty::Hard),
        Some(other) => Err(format!("unknown difficulty `{other}`")),
    }
}

fn get_map(options: &HashMap<String, String>) -> Result<MapKind, String> {
    match options.get("map").map(String::as_str) {
        None | Some("mocam") => Ok(MapKind::Mocam),
        Some("compact") => Ok(MapKind::Compact),
        Some("parallel") => Ok(MapKind::Parallel),
        Some(other) => Err(format!("unknown map `{other}`")),
    }
}

fn get_method(options: &HashMap<String, String>) -> Result<Method, String> {
    match options.get("method").map(String::as_str) {
        Some("co") | None => Ok(Method::Co),
        Some("il") => Ok(Method::Il),
        Some("icoil") => Ok(Method::ICoil),
        Some(other) => Err(format!("unknown method `{other}`")),
    }
}

fn get_u64(options: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("`--{key}` expects an integer")),
    }
}

fn get_f64(options: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match options.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("`--{key}` expects a number")),
    }
}

/// Loads the model for IL-dependent methods; CO runs without one.
fn load_model(
    options: &HashMap<String, String>,
    method: Method,
) -> Result<IlModel, String> {
    let path = options
        .get("model")
        .map(String::as_str)
        .unwrap_or("artifacts/il_model.json");
    if method == Method::Co {
        // placeholder model: never consulted by the CO policy
        return Ok(IlModel::untrained(
            icoil::vehicle::ActionCodec::default(),
            ICoilConfig::default().bev,
            0,
        ));
    }
    let json = std::fs::read_to_string(path).map_err(|e| {
        format!("cannot read model `{path}` ({e}); train one with `icoil train`")
    })?;
    IlModel::from_json(&json).map_err(|e| format!("model `{path}` is corrupt: {e}"))
}

fn cmd_run(options: &HashMap<String, String>) -> Result<(), String> {
    let difficulty = get_difficulty(options)?;
    let method = get_method(options)?;
    let seed = get_u64(options, "seed", 0)?;
    let max_time = get_f64(options, "max-time", 60.0)?;
    let model = load_model(options, method)?;
    let config = ICoilConfig::default();
    let sc = ScenarioConfig::new(difficulty, seed).with_map(get_map(options)?);
    let episode = EpisodeConfig {
        max_time,
        record_trace: true,
    };
    let result = eval::run_one(method, &config, &model, &sc, &episode);
    println!(
        "{method} on {difficulty} seed {seed}: {} after {:.1} s ({:.1} m driven)",
        result.outcome, result.parking_time, result.path_length
    );
    if options.contains_key("ascii") {
        let world = World::new(sc.build());
        println!("{}", render_trace(&world, &result.trace, 90));
    }
    Ok(())
}

fn cmd_evaluate(options: &HashMap<String, String>) -> Result<(), String> {
    let difficulty = get_difficulty(options)?;
    let method = get_method(options)?;
    let episodes = get_u64(options, "episodes", 20)?;
    // --parallelism overrides ICOIL_PARALLELISM / the detected core count;
    // results are bit-identical at any setting.
    let eval_config = match options.get("parallelism") {
        None => eval::EvalConfig::from_env(),
        Some(v) => {
            let workers: usize = v
                .parse()
                .map_err(|_| "`--parallelism` expects an integer".to_string())?;
            eval::EvalConfig::with_parallelism(workers)
        }
    };
    let model = load_model(options, method)?;
    let config = ICoilConfig::default();
    let scenario_configs: Vec<ScenarioConfig> = (0..episodes)
        .map(|s| ScenarioConfig::new(difficulty, s))
        .collect();
    let results = eval::run_batch_with(
        method,
        &config,
        &model,
        &scenario_configs,
        &EpisodeConfig {
            max_time: 60.0,
            record_trace: false,
        },
        &eval_config,
    );
    let stats = ParkingStats::from_results(&results);
    println!(
        "{method} on {difficulty} ({episodes} episodes, {} worker(s)): {stats}",
        eval_config.parallelism
    );
    Ok(())
}

fn cmd_train(options: &HashMap<String, String>) -> Result<(), String> {
    let episodes = get_u64(options, "episodes", 8)?;
    let epochs = get_u64(options, "epochs", 15)? as usize;
    let rounds = get_u64(options, "rounds", 1)? as usize;
    let default_out = "artifacts/il_model.json".to_string();
    let out = options.get("out").unwrap_or(&default_out);
    println!("training: {episodes} expert episodes, {epochs} epochs, {rounds} DAgger round(s)");
    let model = if rounds == 0 {
        artifacts::train_default_model(episodes, epochs)
    } else {
        artifacts::train_dagger_model(episodes, epochs, rounds)
    };
    if let Some(dir) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    std::fs::write(out, model.to_json()).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_plan(options: &HashMap<String, String>) -> Result<(), String> {
    let difficulty = get_difficulty(options)?;
    let seed = get_u64(options, "seed", 0)?;
    let scenario = ScenarioConfig::new(difficulty, seed)
        .with_map(get_map(options)?)
        .build();
    let obstacles = scenario.static_footprints();
    let problem = PlanningProblem {
        start: scenario.start_state.pose,
        goal: scenario.map.goal_pose(),
        bounds: scenario.map.bounds(),
        obstacles: &obstacles,
        vehicle: &scenario.vehicle_params,
        safety_margin: 0.3,
    };
    let path =
        hybrid_plan(&problem, &PlannerConfig::default()).map_err(|e| e.to_string())?;
    println!(
        "planned {:.1} m with {} gear change(s) from {} to {}",
        path.length(),
        path.direction_switches(),
        scenario.start_state.pose,
        scenario.map.goal_pose()
    );
    for (pose, dir) in path.poses.iter().zip(&path.directions).step_by(8) {
        println!(
            "  ({:5.1}, {:5.1}) {:+5.2}  {}",
            pose.x,
            pose.y,
            pose.theta,
            if *dir > 0.0 { "fwd" } else { "rev" }
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_command_and_options() {
        let (cmd, opts) =
            parse_args(&args(&["run", "--seed", "7", "--method", "co", "--ascii"])).unwrap();
        assert_eq!(cmd, "run");
        assert_eq!(opts["seed"], "7");
        assert_eq!(opts["method"], "co");
        assert_eq!(opts["ascii"], "true");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_args(&args(&[])).is_none());
        assert!(parse_args(&args(&["run", "seed", "7"])).is_none()); // missing --
        assert!(parse_args(&args(&["run", "--seed"])).is_none()); // missing value
    }

    #[test]
    fn difficulty_and_method_parsing() {
        let mut o = HashMap::new();
        assert_eq!(get_difficulty(&o).unwrap(), Difficulty::Easy);
        o.insert("difficulty".into(), "hard".into());
        assert_eq!(get_difficulty(&o).unwrap(), Difficulty::Hard);
        o.insert("difficulty".into(), "extreme".into());
        assert!(get_difficulty(&o).is_err());
        let mut o = HashMap::new();
        o.insert("method".into(), "icoil".into());
        assert_eq!(get_method(&o).unwrap(), Method::ICoil);
    }

    #[test]
    fn numeric_parsing_defaults_and_errors() {
        let mut o = HashMap::new();
        assert_eq!(get_u64(&o, "episodes", 20).unwrap(), 20);
        o.insert("episodes".into(), "7".into());
        assert_eq!(get_u64(&o, "episodes", 20).unwrap(), 7);
        o.insert("episodes".into(), "x".into());
        assert!(get_u64(&o, "episodes", 20).is_err());
    }
}
