//! Cross-crate integration: a full iCOIL episode on every procedural
//! map family, with the maneuver taxonomy cross-checked against the
//! live gear-reversal counter.

use icoil_core::{eval, ICoilConfig, ICoilPolicy};
use icoil_il::IlModel;
use icoil_telemetry::Counter;
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{run_episode, EpisodeConfig};
use icoil_world::{
    classify_maneuver, gear_reversals, Maneuver, MapFamilyKind, ProcGen, ProcGenConfig, World,
};

/// Every family generates, builds and survives a short full-stack
/// episode, and the trace-derived reversal count agrees exactly with
/// the policy's `gear_reversals` telemetry counter.
#[test]
fn every_family_runs_a_full_stack_episode() {
    let config = ICoilConfig::default();
    for (i, kind) in MapFamilyKind::ALL.into_iter().enumerate() {
        let gen = ProcGen::new(ProcGenConfig {
            family: Some(kind),
            ..ProcGenConfig::default()
        });
        let spec = gen.generate(900 + i as u64);
        assert_eq!(spec.family.kind(), kind, "generator honors the pinned family");

        let scenario = spec.build();
        let model = IlModel::untrained(ActionCodec::default(), config.bev, 1);
        let mut policy = ICoilPolicy::new(&config, model, &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 6.0,
                record_trace: true,
            },
        );
        assert!(!result.trace.is_empty(), "{}: episode produced no frames", kind.name());

        let metrics = eval::drain_episode_metrics(&mut policy, &result);
        let traced = gear_reversals(&result.trace) as u64;
        assert_eq!(
            metrics.counter(Counter::GearReversals),
            traced,
            "{}: live counter disagrees with the recorded trace",
            kind.name()
        );
        let maneuver = classify_maneuver(&result.trace);
        match maneuver {
            Maneuver::SingleShot => assert!(traced <= 1),
            Maneuver::NPoint(points) => assert_eq!(points as u64, traced + 1),
        }
    }
}

/// Family names round-trip through the stable-name lookup used by the
/// bench CLI and the scenarios report schema.
#[test]
fn family_names_round_trip() {
    for kind in MapFamilyKind::ALL {
        assert_eq!(MapFamilyKind::from_name(kind.name()), Some(kind));
    }
    assert_eq!(MapFamilyKind::from_name("no_such_family"), None);
}
