//! Cross-crate integration tests: full episodes through the real stack.

use icoil_core::{eval, ICoilConfig, Method, PureCoPolicy};
use icoil_il::IlModel;
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{run_episode, EpisodeConfig, ModeTag, Outcome};
use icoil_world::{Difficulty, MapKind, ScenarioConfig, World};

fn untrained(config: &ICoilConfig) -> IlModel {
    IlModel::untrained(ActionCodec::default(), config.bev, 1)
}

#[test]
fn co_parks_on_easy_seed() {
    let config = ICoilConfig::default();
    let scenario = ScenarioConfig::new(Difficulty::Easy, 11).build();
    let mut policy = PureCoPolicy::new(&config, &scenario);
    let mut world = World::new(scenario);
    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 90.0,
            record_trace: true,
        },
    );
    assert_eq!(result.outcome, Outcome::Success, "CO parks on the easy level");
    // trace sanity: monotone time, valid actions, final pose at the bay
    for pair in result.trace.windows(2) {
        assert!(pair[1].time > pair[0].time);
    }
    for f in &result.trace {
        assert!(f.action.validate().is_ok());
    }
    assert!(world.at_goal());
}

#[test]
fn co_parks_on_the_compact_map() {
    // the stack is not specialized to the Fig. 4 lot. The compact lot is
    // deliberately tight; not every random layout is solved (see
    // DESIGN.md), so this exercises a known-good seed.
    let config = ICoilConfig::default();
    let scenario = ScenarioConfig::new(Difficulty::Easy, 3)
        .with_map(MapKind::Compact)
        .build();
    let mut policy = PureCoPolicy::new(&config, &scenario);
    let mut world = World::new(scenario);
    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 90.0,
            record_trace: false,
        },
    );
    assert_eq!(result.outcome, Outcome::Success, "outcome {:?}", result.outcome);
}

#[test]
fn co_enters_the_parallel_bay() {
    // The classic pull-past-and-reverse maneuver between two parked
    // cars. Final millimeter alignment inside the 1.4 m-clearance slot
    // is a known limitation of the tracking layer (see DESIGN.md), so
    // this test asserts the *maneuver*: the car must reverse into the
    // bay without hitting either parked car, ending within a meter of
    // the goal.
    let config = ICoilConfig::default();
    let scenario = ScenarioConfig::new(Difficulty::Easy, 1)
        .with_map(MapKind::Parallel)
        .build();
    let bay = scenario.map.bay();
    let goal = scenario.map.goal_pose();
    let mut policy = PureCoPolicy::new(&config, &scenario);
    let mut world = World::new(scenario);
    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 90.0,
            record_trace: true,
        },
    );
    assert_ne!(result.outcome, Outcome::Collision, "must not hit the parked cars");
    // the maneuver must contain reverse driving and reach the bay
    assert!(result.trace.iter().any(|f| f.action.reverse));
    let last = result.trace.last().expect("non-empty trace");
    assert!(
        bay.inflated(0.5).contains(last.pose.position()),
        "must end inside the bay, ended at {}",
        last.pose
    );
    assert!(
        last.pose.distance(&goal) < 1.3,
        "must end within 1.3 m of the goal, was {:.2} m",
        last.pose.distance(&goal)
    );
}

#[test]
fn episodes_are_deterministic_across_runs() {
    let run = || {
        let config = ICoilConfig::default();
        let model = untrained(&config);
        let sc = ScenarioConfig::new(Difficulty::Normal, 17);
        eval::run_one(
            Method::ICoil,
            &config,
            &model,
            &sc,
            &EpisodeConfig {
                max_time: 10.0,
                record_trace: true,
            },
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seeds must give bit-identical episodes");
}

#[test]
fn icoil_with_untrained_model_degrades_to_co_and_parks() {
    // eq. (1) failure containment: if the DNN is uncertain everywhere,
    // iCOIL must behave exactly like the reliable CO stack
    let config = ICoilConfig::default();
    let model = untrained(&config);
    let sc = ScenarioConfig::new(Difficulty::Easy, 11);
    let result = eval::run_one(
        Method::ICoil,
        &config,
        &model,
        &sc,
        &EpisodeConfig {
            max_time: 90.0,
            record_trace: true,
        },
    );
    assert!(result.is_success(), "outcome {:?}", result.outcome);
    let il_frames = result
        .trace
        .iter()
        .filter(|f| f.mode == Some(ModeTag::Il))
        .count();
    assert_eq!(il_frames, 0, "an untrained model must never be trusted");
}

#[test]
fn hsa_telemetry_present_every_frame() {
    let config = ICoilConfig::default();
    let model = untrained(&config);
    let sc = ScenarioConfig::new(Difficulty::Hard, 2);
    let result = eval::run_one(
        Method::ICoil,
        &config,
        &model,
        &sc,
        &EpisodeConfig {
            max_time: 5.0,
            record_trace: true,
        },
    );
    assert!(!result.trace.is_empty());
    for f in &result.trace {
        let u = f.uncertainty.expect("uncertainty recorded");
        let c = f.complexity.expect("complexity recorded");
        assert!(u.is_finite() && u >= 0.0);
        assert!(c.is_finite() && c > 0.0);
    }
}

#[test]
fn batch_statistics_shape() {
    let config = ICoilConfig::default();
    let model = untrained(&config);
    let scenario_configs: Vec<ScenarioConfig> = (0..3)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, 100 + s))
        .collect();
    let results = eval::run_batch(
        Method::Il,
        &config,
        &model,
        &scenario_configs,
        &EpisodeConfig {
            max_time: 3.0,
            record_trace: false,
        },
    );
    assert_eq!(results.len(), 3);
    let stats = icoil_world::ParkingStats::from_results(&results);
    assert_eq!(stats.episodes, 3);
    // untrained IL cannot park in 3 simulated seconds
    assert_eq!(stats.successes, 0);
}

#[test]
fn co_handles_every_map_and_difficulty_tier() {
    // Both non-default lots at all three difficulty tiers, on seeds
    // probed to be solvable (not every random layout is — see
    // DESIGN.md). Success means parked; for the Easy parallel seed the
    // stack completes the maneuver but times out on final millimeter
    // alignment (the known tracking limitation), so that row asserts
    // the maneuver instead. The seeds are calibrated to the MPC's exact
    // numerics: a change to the solver or the warm-start path shifts
    // episode outcomes, so expect to re-probe each cell (sweep seeds
    // with PureCoPolicy at max_time 90) after touching those layers.
    let table = [
        (MapKind::Parallel, Difficulty::Easy, 1u64, false),
        (MapKind::Parallel, Difficulty::Normal, 19, true),
        (MapKind::Parallel, Difficulty::Hard, 3, true),
        (MapKind::Compact, Difficulty::Easy, 3, true),
        (MapKind::Compact, Difficulty::Normal, 9, true),
        (MapKind::Compact, Difficulty::Hard, 5, true),
    ];
    let config = ICoilConfig::default();
    for (kind, diff, seed, expect_success) in table {
        let scenario = ScenarioConfig::new(diff, seed).with_map(kind).build();
        let goal = scenario.map.goal_pose();
        let mut policy = PureCoPolicy::new(&config, &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(
            &mut world,
            &mut policy,
            &EpisodeConfig {
                max_time: 90.0,
                record_trace: true,
            },
        );
        let label = format!("{kind:?}/{diff:?} seed {seed}");
        assert_ne!(result.outcome, Outcome::Collision, "{label} must not collide");
        if expect_success {
            assert_eq!(result.outcome, Outcome::Success, "{label}: {:?}", result.outcome);
        } else {
            let last = result.trace.last().expect("non-empty trace");
            assert!(result.trace.iter().any(|f| f.action.reverse), "{label} must reverse");
            assert!(
                last.pose.distance(&goal) < 1.3,
                "{label} must end within 1.3 m of the goal, was {:.2} m",
                last.pose.distance(&goal)
            );
        }
    }
}


