//! End-to-end episodes with each KKT factorization backend forced,
//! plus a check that the deployed `Auto` rule resolves to the sparse
//! backend on the MPC's own problems.

use icoil_co::{build_mpc_qp, CoConfig, RefState};
use icoil_core::{ICoilConfig, PureCoPolicy};
use icoil_solver::{solve_qp, Backend, QpSettings};
use icoil_world::episode::{run_episode, EpisodeConfig, Outcome};
use icoil_world::{Difficulty, ScenarioConfig, World};

fn run_forced(backend: Backend) -> Outcome {
    let mut config = ICoilConfig::default();
    config.co.qp_backend = backend;
    let scenario = ScenarioConfig::new(Difficulty::Easy, 11).build();
    let mut policy = PureCoPolicy::new(&config, &scenario);
    let mut world = World::new(scenario);
    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 90.0,
            record_trace: false,
        },
    );
    result.outcome
}

#[test]
fn sparse_backend_parks_end_to_end() {
    assert_eq!(run_forced(Backend::Sparse), Outcome::Success);
}

#[test]
fn dense_backend_parks_end_to_end() {
    assert_eq!(run_forced(Backend::Dense), Outcome::Success);
}

#[test]
fn auto_backend_resolves_to_sparse_on_mpc_problems() {
    // Build one representative MPC QP and solve it with the default
    // (Auto) backend: the resolved backend recorded in the solution must
    // be Sparse — the block-banded simultaneous form is exactly what the
    // sparse path exists for.
    let scenario = ScenarioConfig::new(Difficulty::Normal, 3).build();
    let config = CoConfig::default();
    let state = scenario.start_state;
    let reference: Vec<RefState> = (1..=config.horizon)
        .map(|h| RefState {
            x: state.pose.x + 0.4 * h as f64,
            y: state.pose.y,
            theta: state.pose.theta,
            v: 1.0,
        })
        .collect();
    let nominal_u = vec![[0.2, 0.0]; config.horizon];
    let qp = build_mpc_qp(
        &state,
        &nominal_u,
        &reference,
        &[],
        &scenario.vehicle_params,
        &config,
    );
    assert_eq!(qp.backend(), Backend::Auto);
    let sol = solve_qp(&qp, &QpSettings::default());
    assert_eq!(sol.backend, Backend::Sparse);
}
