//! Failure-injection tests: degraded sensing and adversarial scenes must
//! degrade gracefully, never panic — including when the faulty episodes
//! are dispatched across worker threads.

use icoil_core::{run_scenarios_with, EvalConfig, ICoilConfig, PureCoPolicy};
use icoil_world::episode::Policy;
use icoil_perception::{BevConfig, Perception};
use icoil_world::episode::{run_episode, EpisodeConfig, Observation};
use icoil_world::{Difficulty, NoiseConfig, Scenario, ScenarioConfig, World};

#[test]
fn co_parks_under_hard_sensing_noise() {
    // easy map geometry + hard noise profile: the planner must still park
    let scenario = ScenarioConfig::new(Difficulty::Easy, 13).build();
    let config = ICoilConfig::default();
    let mut policy = PureCoPolicy::new(&config, &scenario);
    let mut world = World::new(scenario);
    // manually crank the sensing noise beyond the scenario's own level
    // (the policy owns its Perception; we emulate by running the hard
    // scenario variant of the same seed instead)
    let hard = ScenarioConfig::new(Difficulty::Hard, 13).build();
    let mut hard_policy = PureCoPolicy::new(&config, &hard);
    let mut hard_world = World::new(hard);
    let cfg = EpisodeConfig {
        max_time: 90.0,
        record_trace: false,
    };
    let clean = run_episode(&mut world, &mut policy, &cfg);
    let noisy = run_episode(&mut hard_world, &mut hard_policy, &cfg);
    assert!(clean.is_success());
    assert!(
        noisy.is_success(),
        "hard-level noise on this seed must still be manageable: {:?}",
        noisy.outcome
    );
    // noise costs time, never correctness
    assert!(noisy.parking_time >= clean.parking_time * 0.8);
}

#[test]
fn extreme_detector_noise_does_not_panic() {
    let scenario = ScenarioConfig::new(Difficulty::Normal, 5).build();
    let mut perception = Perception::new(BevConfig::default(), &scenario);
    perception.set_noise(NoiseConfig {
        image_noise_std: 0.8,
        pixel_dropout: 0.5,
        box_jitter: 1.0,
        heading_jitter: 0.5,
        false_negative_rate: 0.5,
        phantom_rate: 0.5,
    });
    let mut world = World::new(scenario);
    for _ in 0..50 {
        let sensing = perception.observe(&Observation::new(&world));
        assert!(sensing.bev.data.iter().all(|v| v.is_finite()));
        world.step(&icoil_vehicle::Action::forward(0.3, 0.1));
    }
}

#[test]
fn blocked_goal_times_out_gracefully() {
    // surround the goal corridor with obstacles: CO cannot find a path
    // and must keep braking/unsticking until the clock runs out, without
    // panicking or colliding by its own motion
    let mut scenario = ScenarioConfig::new(Difficulty::Easy, 11)
        .with_n_static(0)
        .build();
    // wall off the bay entrance manually
    for (i, y) in [7.0, 10.0, 13.0].iter().enumerate() {
        scenario.obstacles.push(icoil_world::Obstacle::fixed(
            100 + i,
            icoil_geom::Pose2::new(22.5, *y, 0.0),
            1.5,
            3.2,
        ));
    }
    let config = ICoilConfig::default();
    let mut policy = PureCoPolicy::new(&config, &scenario);
    let mut world = World::new(scenario);
    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 20.0,
            record_trace: false,
        },
    );
    assert_ne!(
        result.outcome,
        icoil_world::Outcome::Success,
        "a sealed bay cannot be reached"
    );
}

/// A mixed batch of faulty scenarios: hard sensing noise, a manually
/// sealed bay, and a phantom-heavy hard tier.
fn faulty_batch() -> Vec<Scenario> {
    let mut batch = vec![
        ScenarioConfig::new(Difficulty::Hard, 13).build(),
        ScenarioConfig::new(Difficulty::Hard, 3).build(),
        ScenarioConfig::new(Difficulty::Normal, 5).build(),
    ];
    let mut sealed = ScenarioConfig::new(Difficulty::Easy, 11)
        .with_n_static(0)
        .build();
    for (i, y) in [7.0, 10.0, 13.0].iter().enumerate() {
        sealed.obstacles.push(icoil_world::Obstacle::fixed(
            100 + i,
            icoil_geom::Pose2::new(22.5, *y, 0.0),
            1.5,
            3.2,
        ));
    }
    batch.push(sealed);
    batch
}

#[test]
fn injected_faults_behave_identically_under_parallel_dispatch() {
    // Faults must stay contained per worker: a batch mixing hard noise,
    // a sealed bay, and phantom-heavy sensing runs without panics at
    // parallelism > 1 and reproduces the serial results bit-for-bit.
    let batch = faulty_batch();
    let config = ICoilConfig::default();
    let policy_for = |scenario: &Scenario| -> Box<dyn Policy> {
        Box::new(PureCoPolicy::new(&config, scenario))
    };
    let episode = EpisodeConfig {
        max_time: 10.0,
        record_trace: true,
    };
    let serial = run_scenarios_with(&batch, policy_for, &episode, &EvalConfig { parallelism: 1 });
    let parallel =
        run_scenarios_with(&batch, policy_for, &episode, &EvalConfig { parallelism: 4 });
    assert_eq!(serial.len(), batch.len());
    assert_eq!(
        serial, parallel,
        "fault injection must not leak state across workers"
    );
    for (i, r) in parallel.iter().enumerate() {
        assert_ne!(
            r.outcome,
            icoil_world::Outcome::Success,
            "episode {i}: 10 s is too short to park any of these"
        );
        for f in &r.trace {
            assert!(f.action.validate().is_ok());
            assert!(f.pose.is_finite());
        }
    }
}

#[test]
fn phantom_heavy_sensing_keeps_actions_valid() {
    let scenario = ScenarioConfig::new(Difficulty::Hard, 3).build();
    let config = ICoilConfig::default();
    let mut policy = PureCoPolicy::new(&config, &scenario);
    let mut world = World::new(scenario);
    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 10.0,
            record_trace: true,
        },
    );
    for f in &result.trace {
        assert!(f.action.validate().is_ok());
        assert!(f.pose.is_finite());
    }
}
