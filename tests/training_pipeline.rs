//! Integration tests for the demonstration → training → inference
//! pipeline.

use icoil_il::{collect_demonstrations, train, IlModel, TrainConfig};
use icoil_perception::BevConfig;
use icoil_vehicle::ActionCodec;
use icoil_world::{Difficulty, ScenarioConfig};

#[test]
fn collect_train_infer_beats_chance() {
    let codec = ActionCodec::default();
    let bev = BevConfig::default();
    let scenarios = vec![ScenarioConfig::new(Difficulty::Easy, 9100)];
    let dataset = collect_demonstrations(&scenarios, &codec, &bev, 90.0);
    assert!(dataset.len() > 200, "one episode yields hundreds of frames");

    let config = TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    };
    let (_, report) = train(&dataset, &codec, &bev, &config);
    let chance = 1.0 / codec.num_classes() as f64;
    assert!(
        report.final_accuracy() > 4.0 * chance,
        "accuracy {} vs chance {chance}",
        report.final_accuracy()
    );
    assert!(report.final_loss() < report.losses[0], "loss must decrease");
}

#[test]
fn dataset_contains_both_gears() {
    // the paper's dataset has forward-moving and reverse-parking phases
    let codec = ActionCodec::default();
    let bev = BevConfig::default();
    let scenarios = vec![ScenarioConfig::new(Difficulty::Easy, 9200)];
    let dataset = collect_demonstrations(&scenarios, &codec, &bev, 90.0);
    let counts = dataset.class_counts(codec.num_classes());
    let reverse: usize = counts[..codec.steer_bins()].iter().sum();
    let forward: usize = counts[2 * codec.steer_bins()..].iter().sum();
    assert!(reverse > 0, "reverse-parking samples present");
    assert!(forward > 0, "forward-moving samples present");
}

#[test]
fn model_artifact_roundtrip_preserves_behavior() {
    let bev = BevConfig::default();
    let mut model = IlModel::untrained(ActionCodec::default(), bev, 5);
    let image = icoil_perception::BevImage {
        size: bev.size,
        range: bev.range,
        data: vec![0.25; icoil_perception::BevImage::CHANNELS * bev.size * bev.size],
    };
    let before = model.infer(&image);
    let mut restored = IlModel::from_json(&model.to_json()).expect("valid JSON");
    let after = restored.infer(&image);
    assert_eq!(before, after);
}
