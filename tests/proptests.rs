//! Cross-crate property tests on randomized scenarios.

use icoil_perception::{BevConfig, Perception};
use icoil_world::episode::Observation;
use icoil_world::{Difficulty, ScenarioConfig, World};
use proptest::prelude::*;

fn arb_difficulty() -> impl Strategy<Value = Difficulty> {
    prop::sample::select(vec![Difficulty::Easy, Difficulty::Normal, Difficulty::Hard])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scenarios_spawn_collision_free(d in arb_difficulty(), seed in 0u64..5000) {
        let scenario = ScenarioConfig::new(d, seed).build();
        let world = World::new(scenario);
        prop_assert!(!world.in_collision(), "seed {seed} spawns in collision");
        prop_assert!(!world.at_goal(), "seed {seed} spawns at the goal");
        prop_assert!(world.clearance() > 0.0);
    }

    #[test]
    fn scenario_builds_are_pure(d in arb_difficulty(), seed in 0u64..5000) {
        let a = ScenarioConfig::new(d, seed).build();
        let b = ScenarioConfig::new(d, seed).build();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sensing_is_pure_per_frame(seed in 0u64..1000) {
        let scenario = ScenarioConfig::new(Difficulty::Hard, seed).build();
        let world = World::new(scenario);
        let mut p1 = Perception::new(BevConfig::default(), world.scenario());
        let mut p2 = Perception::new(BevConfig::default(), world.scenario());
        let o = Observation::new(&world);
        prop_assert_eq!(p1.observe(&o), p2.observe(&o));
    }

    #[test]
    fn bev_pixels_bounded(seed in 0u64..1000, d in arb_difficulty()) {
        let scenario = ScenarioConfig::new(d, seed).build();
        let world = World::new(scenario);
        let mut p = Perception::new(BevConfig::default(), world.scenario());
        let sensing = p.observe(&Observation::new(&world));
        let s = sensing.bev.size;
        // occupancy and goal channels live in [0, 1]
        for v in &sensing.bev.data[..2 * s * s] {
            prop_assert!((0.0..=1.0).contains(v));
        }
        // speed plane in [-1, 1]
        for v in &sensing.bev.data[2 * s * s..] {
            prop_assert!((-1.0..=1.0).contains(v));
        }
    }

    #[test]
    fn stepping_never_breaks_invariants(seed in 0u64..300, throttle in 0.0f64..1.0, steer in -1.0f64..1.0) {
        let scenario = ScenarioConfig::new(Difficulty::Easy, seed).build();
        let mut world = World::new(scenario);
        let action = icoil_vehicle::Action { throttle, brake: 0.0, steer, reverse: false };
        for _ in 0..100 {
            let state = world.step(&action);
            prop_assert!(state.is_finite());
            prop_assert!(state.velocity.abs() <= 2.5 + 1e-9);
            if world.in_collision() {
                break;
            }
        }
    }

    /// The sparse LDLᵀ must agree with dense Cholesky on the *actual* MPC
    /// KKT matrix — the sparsity pattern the backend exists for — across
    /// randomized scenarios, and the auto backend rule must pick sparse
    /// for it.
    #[test]
    fn sparse_ldl_matches_dense_on_actual_mpc_kkt(seed in 0u64..500, d in arb_difficulty()) {
        use icoil_co::{build_mpc_qp, CoConfig, RefState};
        use icoil_solver::{SparseKkt, SparseLdl, SymbolicLdl};

        let scenario = ScenarioConfig::new(d, seed).build();
        let config = CoConfig::default();
        let state = scenario.start_state;
        let reference: Vec<RefState> = (1..=config.horizon)
            .map(|h| RefState {
                x: state.pose.x + 0.4 * h as f64,
                y: state.pose.y + 0.1 * h as f64,
                theta: state.pose.theta,
                v: 1.0,
            })
            .collect();
        let nominal_u = vec![[0.3, 0.05]; config.horizon];
        let qp = build_mpc_qp(
            &state,
            &nominal_u,
            &reference,
            &[],
            &scenario.vehicle_params,
            &config,
        );

        let gram = qp.a().gram();
        let mut kkt = SparseKkt::new(qp.p(), &gram);
        let matrix = kkt.assemble(qp.p(), &gram, 1e-6, 0.1);
        prop_assert!(matrix.rows() >= 30, "MPC KKT is {} x {}", matrix.rows(), matrix.cols());
        prop_assert!(matrix.fill_ratio() <= 0.35, "fill {}", matrix.fill_ratio());

        let sym = SymbolicLdl::analyze(matrix);
        let mut sparse = SparseLdl::factor(sym, matrix).expect("MPC KKT factors");
        let dense = matrix.to_dense().cholesky().expect("MPC KKT is PD");
        let b: Vec<f64> = (0..matrix.rows()).map(|i| (i as f64 * 0.53).sin()).collect();
        let xs = sparse.solve(&b);
        let xd = dense.solve(&b);
        for (a, d) in xs.iter().zip(&xd) {
            prop_assert!((a - d).abs() < 1e-7, "sparse {a} vs dense {d}");
        }
    }
}
