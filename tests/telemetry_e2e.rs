//! End-to-end telemetry contracts across the full stack.
//!
//! * merged batch metrics are bit-identical for every worker count
//!   (the same determinism contract `run_batch_with` gives episode
//!   results);
//! * a traced episode produces NDJSON that re-parses and agrees with
//!   the aggregated counters.

use icoil_core::eval::{drain_episode_metrics, run_batch_telemetry, EvalConfig};
use icoil_core::{ICoilConfig, ICoilPolicy, Method};
use icoil_il::IlModel;
use icoil_telemetry::{Counter, MemorySink, Series};
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{run_episode, EpisodeConfig, Policy};
use icoil_world::{Difficulty, ScenarioConfig, World};

fn untrained(config: &ICoilConfig) -> IlModel {
    IlModel::untrained(ActionCodec::default(), config.bev, 1)
}

#[test]
fn merged_metrics_are_identical_at_any_parallelism() {
    let config = ICoilConfig::default();
    let model = untrained(&config);
    let scenario_configs: Vec<ScenarioConfig> = [
        (Difficulty::Easy, 11),
        (Difficulty::Easy, 3),
        (Difficulty::Easy, 1),
        (Difficulty::Normal, 5),
        (Difficulty::Normal, 7),
        (Difficulty::Easy, 2),
    ]
    .iter()
    .map(|&(d, s)| ScenarioConfig::new(d, s))
    .collect();
    let episode = EpisodeConfig {
        max_time: 3.0,
        record_trace: false,
    };
    for method in [Method::ICoil, Method::Co] {
        let (serial_results, serial_metrics) = run_batch_telemetry(
            method,
            &config,
            &model,
            &scenario_configs,
            &episode,
            &EvalConfig::with_parallelism(1),
        );
        assert_eq!(
            serial_metrics.counter(Counter::Episodes) as usize,
            scenario_configs.len()
        );
        let frames: usize = serial_results.iter().map(|r| r.frames).sum();
        assert_eq!(serial_metrics.counter(Counter::Frames) as usize, frames);
        for workers in [2, 3, 8] {
            let (results, metrics) = run_batch_telemetry(
                method,
                &config,
                &model,
                &scenario_configs,
                &episode,
                &EvalConfig::with_parallelism(workers),
            );
            assert_eq!(serial_results, results, "{method}: results diverged at {workers}");
            assert!(
                serial_metrics.deterministic_eq(&metrics),
                "{method}: merged telemetry diverged at parallelism {workers}"
            );
        }
    }
}

#[test]
fn traced_episode_ndjson_reparses_and_matches_counters() {
    let config = ICoilConfig::default();
    let scenario = ScenarioConfig::new(Difficulty::Easy, 11).build();
    let mut policy = ICoilPolicy::new(&config, untrained(&config), &scenario);
    let mut world = World::new(scenario);
    let (sink, lines) = MemorySink::new();
    policy
        .recorder_mut()
        .expect("iCOIL policy is instrumented")
        .set_sink(Box::new(sink));

    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 3.0,
            record_trace: false,
        },
    );
    let metrics = drain_episode_metrics(&mut policy, &result);

    let lines = lines.lock().expect("sink lines");
    // one line per frame plus the episode summary
    assert_eq!(lines.len(), result.frames + 1);
    let mut frame_events = 0usize;
    let mut solve_events = 0usize;
    for line in lines.iter() {
        let v: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad NDJSON ({e:?}): {line}"));
        match v.get("t").and_then(serde_json::Value::as_str) {
            Some("frame") => {
                frame_events += 1;
                assert!(v.get("mode").and_then(serde_json::Value::as_str).is_some());
                assert!(v.get("total_us").and_then(serde_json::Value::as_f64).is_some());
                if v.get("solve").is_some() {
                    solve_events += 1;
                }
            }
            Some("episode") => {
                assert!(v.get("outcome").and_then(serde_json::Value::as_str).is_some());
            }
            other => panic!("unexpected event tag {other:?}: {line}"),
        }
    }
    assert_eq!(frame_events, result.frames);
    assert_eq!(metrics.counter(Counter::Frames) as usize, frame_events);
    assert_eq!(metrics.counter(Counter::MpcSolves) as usize, solve_events);
    assert_eq!(
        metrics.series(Series::FrameTotal).count() as usize,
        frame_events
    );
}
