//! Integration tests: the global planner against real scenario geometry.

use icoil_planner::{plan, smooth_path, PlannerConfig, PlanningProblem, SmoothConfig};
use icoil_vehicle::VehicleState;
use icoil_world::{Difficulty, ScenarioConfig};

/// Plans on a built scenario and checks the path against the *actual*
/// footprint collision test of the world (not just the planner's own
/// circle model).
fn plan_and_validate(seed: u64) {
    let scenario = ScenarioConfig::new(Difficulty::Easy, seed).build();
    let obstacles = scenario.static_footprints();
    let problem = PlanningProblem {
        start: scenario.start_state.pose,
        goal: scenario.map.goal_pose(),
        bounds: scenario.map.bounds(),
        obstacles: &obstacles,
        vehicle: &scenario.vehicle_params,
        safety_margin: 0.3,
    };
    let path = plan(&problem, &PlannerConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed}: planning failed: {e}"));
    assert!(path.poses.len() > 10);
    // every pose footprint is inside the lot and collision-free
    for pose in &path.poses {
        let fp = VehicleState::at_rest(*pose).footprint(&scenario.vehicle_params);
        assert!(
            scenario.map.contains_footprint(&fp),
            "seed {seed}: path leaves the lot at {pose}"
        );
        for o in &obstacles {
            assert!(!o.intersects(&fp), "seed {seed}: path collides at {pose}");
        }
    }
    // the endgame reaches the bay
    let last = path.poses.last().unwrap();
    assert!(last.distance(&scenario.map.goal_pose()) < 0.5, "seed {seed}");
}

#[test]
fn planner_solves_many_scenarios() {
    for seed in [0u64, 3, 7, 12, 19, 25] {
        plan_and_validate(seed);
    }
}

#[test]
fn smoothing_keeps_scenario_paths_safe() {
    let scenario = ScenarioConfig::new(Difficulty::Easy, 7).build();
    let obstacles = scenario.static_footprints();
    let problem = PlanningProblem {
        start: scenario.start_state.pose,
        goal: scenario.map.goal_pose(),
        bounds: scenario.map.bounds(),
        obstacles: &obstacles,
        vehicle: &scenario.vehicle_params,
        safety_margin: 0.3,
    };
    let raw = plan(&problem, &PlannerConfig::default()).expect("feasible");
    let smoothed = smooth_path(&raw, &obstacles, &SmoothConfig::default());
    assert_eq!(smoothed.poses.len(), raw.poses.len());
    // smoothing must not shove the path into obstacles
    for pose in &smoothed.poses {
        let fp = VehicleState::at_rest(*pose)
            .footprint(&scenario.vehicle_params);
        for o in &obstacles {
            assert!(!o.intersects(&fp), "smoothed path collides at {pose}");
        }
    }
    // and it should not be longer than the raw path by more than a hair
    assert!(smoothed.length() <= raw.length() * 1.02);
}

#[test]
fn reeds_shepp_words_integrate_into_world_poses() {
    // RS endgames sampled into world coordinates stay in the lot for a
    // representative bay approach
    let scenario = ScenarioConfig::new(Difficulty::Easy, 3).build();
    let start = icoil_geom::Pose2::new(22.0, 10.0, 0.0);
    let goal = scenario.map.goal_pose();
    let rs = icoil_planner::reeds_shepp::shortest_path(
        start,
        goal,
        scenario.vehicle_params.min_turning_radius(),
    );
    let samples = rs.sample(start, 0.25);
    let end = samples.last().unwrap().0;
    assert!(end.distance(&goal) < 1e-6);
    for (pose, _) in &samples {
        assert!(
            scenario.map.bounds().contains(pose.position()),
            "RS sample leaves the lot at {pose}"
        );
    }
}
