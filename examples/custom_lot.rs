//! Use the library pieces directly: build a custom lot, plan a maneuver
//! with hybrid A*, and inspect the Reeds-Shepp endgame.
//!
//! ```text
//! cargo run --release --example custom_lot
//! ```

use icoil_geom::{Aabb, Obb, Pose2, Vec2};
use icoil_planner::{plan, reeds_shepp, PlannerConfig, PlanningProblem};
use icoil_vehicle::VehicleParams;

fn main() {
    // a small private courtyard with two parked cars
    let bounds = Aabb::new(Vec2::ZERO, Vec2::new(18.0, 12.0));
    let obstacles = vec![
        Obb::from_pose(Pose2::new(9.0, 3.0, 0.0), 4.2, 1.8),
        Obb::from_pose(Pose2::new(9.0, 9.0, 0.0), 4.2, 1.8),
    ];
    let vehicle = VehicleParams::default();

    // park nose-out between the two cars (goal heading faces the exit)
    let problem = PlanningProblem {
        start: Pose2::new(2.5, 6.0, 0.0),
        goal: Pose2::new(13.0, 6.0, std::f64::consts::PI),
        bounds,
        obstacles: &obstacles,
        vehicle: &vehicle,
        safety_margin: 0.1,
    };
    let path = plan(&problem, &PlannerConfig::default()).expect("the maneuver is feasible");
    println!(
        "planned {:.1} m with {} gear change(s)",
        path.length(),
        path.direction_switches()
    );
    for (pose, dir) in path.poses.iter().zip(&path.directions).step_by(6) {
        println!(
            "  ({:5.2}, {:5.2})  heading {:+5.2}  {}",
            pose.x,
            pose.y,
            pose.theta,
            if *dir > 0.0 { "forward" } else { "reverse" }
        );
    }

    // the curvature-bounded endgame as a raw Reeds-Shepp word
    let rs = reeds_shepp::shortest_path(
        Pose2::new(0.0, 0.0, 0.0),
        Pose2::new(0.0, 2.2, 0.0),
        vehicle.min_turning_radius(),
    );
    println!(
        "\nparallel-shift Reeds-Shepp word ({} segments, {:.2} m):",
        rs.segments.len(),
        rs.length()
    );
    for seg in &rs.segments {
        println!("  {:?} {:+.2} m", seg.kind, seg.length);
    }
}
