//! Watch the HSA switch working modes during one iCOIL episode.
//!
//! ```text
//! cargo run --release --example mode_switching
//! ```
//!
//! Runs iCOIL with an *untrained* IL model: its near-uniform outputs keep
//! the scenario uncertainty high, so the HSA correctly selects CO
//! everywhere and the episode still parks — the designed failure-
//! containment behaviour of eq. (1). With a trained model (see the
//! benchmark harness) the system instead switches to IL where the DNN is
//! confident.

use icoil_core::{ICoilConfig, ICoilPolicy};
use icoil_il::IlModel;
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{run_episode, EpisodeConfig, ModeTag};
use icoil_world::{Difficulty, ScenarioConfig, World};

fn main() {
    let config = ICoilConfig::default();
    let scenario = ScenarioConfig::new(Difficulty::Normal, 3).build();
    let model = IlModel::untrained(ActionCodec::default(), config.bev, 42);
    let mut policy = ICoilPolicy::new(&config, model, &scenario);
    let mut world = World::new(scenario);

    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 90.0,
            record_trace: true,
        },
    );

    println!("outcome: {} after {:.1} s", result.outcome, result.parking_time);
    println!("frame   time   mode  uncertainty   complexity");
    for f in result.trace.iter().step_by(50) {
        println!(
            "{:5}  {:5.1}s  {:>4}  {:11.3}  {:11.0}",
            f.frame,
            f.time,
            f.mode.map_or("-".into(), |m| m.to_string()),
            f.uncertainty.unwrap_or(f64::NAN),
            f.complexity.unwrap_or(f64::NAN),
        );
    }
    let co = result
        .trace
        .iter()
        .filter(|f| f.mode == Some(ModeTag::Co))
        .count();
    println!(
        "CO-mode fraction: {:.0}% (untrained IL is never trusted)",
        100.0 * co as f64 / result.trace.len() as f64
    );
}
