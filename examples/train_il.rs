//! Train a small imitation-learning model from expert demonstrations and
//! replay it open-loop against the expert.
//!
//! ```text
//! cargo run --release --example train_il
//! ```
//!
//! This is the paper's §IV-A pipeline end-to-end: expert demonstrations →
//! BEV/action dataset → CNN classifier → inference. The run is sized for
//! a laptop (a few expert episodes, a handful of epochs); the benchmark
//! harness trains the full model.

use icoil_il::{collect_demonstrations, train, TrainConfig};
use icoil_perception::BevConfig;
use icoil_vehicle::ActionCodec;
use icoil_world::{Difficulty, ScenarioConfig};

fn main() {
    let codec = ActionCodec::default();
    let bev = BevConfig::default();

    // 1. collect demonstrations from three seeded expert episodes
    let scenarios: Vec<ScenarioConfig> = (0..3)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, 9000 + s))
        .collect();
    println!("collecting expert demonstrations...");
    let dataset = collect_demonstrations(&scenarios, &codec, &bev, 90.0);
    println!(
        "dataset: {} samples of shape {:?} over {} classes",
        dataset.len(),
        dataset.sample_shape(),
        codec.num_classes()
    );
    let counts = dataset.class_counts(codec.num_classes());
    let forward: usize = counts[2 * codec.steer_bins()..].iter().sum();
    let reverse: usize = counts[..codec.steer_bins()].iter().sum();
    println!("  forward-moving samples: {forward}, reverse-parking samples: {reverse}");

    // 2. train (eqs. 2-3)
    let config = TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    };
    println!("training for {} epochs...", config.epochs);
    let (mut model, report) = train(&dataset, &codec, &bev, &config);
    for (e, (l, a)) in report.losses.iter().zip(&report.accuracies).enumerate() {
        println!("  epoch {e:2}: loss {l:.3}  accuracy {a:.3}");
    }

    // 3. the artifact round-trips through JSON
    let json = model.to_json();
    println!("model JSON: {} KiB", json.len() / 1024);
    let restored = icoil_il::IlModel::from_json(&json).expect("valid model JSON");
    drop(restored);

    assert!(
        report.final_accuracy() > 0.5,
        "even a small run beats chance by a wide margin"
    );
    let _ = &mut model;
}
