//! Quickstart: park a car with the optimization-only (CO) stack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the MoCAM-style lot with three static obstacles, runs the CO
//! policy (hybrid A* + MPC) from a random spawn pose, and prints the
//! episode outcome.

use icoil_core::{ICoilConfig, PureCoPolicy};
use icoil_world::episode::{run_episode, EpisodeConfig};
use icoil_world::{Difficulty, ScenarioConfig, World};

fn main() {
    // 1. describe the task: easy level (static obstacles only), seed 7
    let scenario = ScenarioConfig::new(Difficulty::Easy, 7).build();
    println!(
        "spawn at {}, goal at {}",
        scenario.start_state.pose,
        scenario.map.goal_pose()
    );

    // 2. build the world and the policy
    let config = ICoilConfig::default();
    let mut policy = PureCoPolicy::new(&config, &scenario);
    let mut world = World::new(scenario);

    // 3. run one episode
    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 60.0,
            record_trace: true,
        },
    );

    println!(
        "outcome: {} after {:.1} s ({} frames, {:.1} m driven)",
        result.outcome, result.parking_time, result.frames, result.path_length
    );
    // print a sparse trajectory
    for f in result.trace.iter().step_by(100) {
        println!(
            "  t={:5.1}s  pos=({:5.1}, {:5.1})  heading={:+.2}  v={:+.2}",
            f.time, f.pose.x, f.pose.y, f.pose.theta, f.velocity
        );
    }
    assert!(result.is_success(), "the CO stack parks on the easy level");
}
