#!/usr/bin/env bash
# The repo's tier-1 gate plus lints, in one command:
#
#   scripts/check.sh
#
# Fails on the first broken step. Clippy runs with warnings denied so the
# tree stays lint-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
echo "all checks passed"
