#!/usr/bin/env bash
# The repo's tier-1 gate plus lints, in one command:
#
#   scripts/check.sh
#
# Fails on the first broken step. Clippy runs with warnings denied so the
# tree stays lint-clean. The conformance smoke fuzzes a small batch of
# procedurally generated scenarios through the differential harness
# (crates/conformance) — including the dense-vs-sparse KKT backend check —
# and the backend_e2e suite drives full episodes with each factorization
# backend forced. The telemetry smoke runs one traced episode, re-parses
# the NDJSON trace against the aggregated counters, and validates the
# BENCH_perf.json / BENCH_serve.json schemas. The serve smoke steps 8
# concurrent sessions 50 frames through the in-process serving engine and
# demands bit-identical trajectories between a 1-worker and a 4-worker CO
# lane with zero sheds. Override the fuzz case count with
# ICOIL_FUZZ_CASES, e.g. `ICOIL_FUZZ_CASES=200 scripts/check.sh` for the
# full local sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test --release -q --test backend_e2e
cargo clippy --all-targets -- -D warnings
cargo run --release -q -p icoil-bench --bin telemetry_smoke
cargo run --release -q -p icoil-bench --bin serve_smoke
ICOIL_FUZZ_CASES="${ICOIL_FUZZ_CASES:-25}" \
    cargo run --release -q -p icoil-bench --bin conformance -- --smoke --out target/conformance-smoke.json
echo "all checks passed"
