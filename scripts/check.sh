#!/usr/bin/env bash
# The repo's tier-1 gate plus lints, in one command:
#
#   scripts/check.sh
#
# Fails on the first broken step. Clippy runs with warnings denied so the
# tree stays lint-clean. The conformance smoke fuzzes a small batch of
# procedurally generated scenarios through the differential harness
# (crates/conformance) — including the dense-vs-sparse KKT backend check —
# and the backend_e2e suite drives full episodes with each factorization
# backend forced. The telemetry smoke runs one traced episode, re-parses
# the NDJSON trace against the aggregated counters, and validates the
# BENCH_perf.json / BENCH_serve.json schemas. The serve smoke steps 8
# concurrent sessions 50 frames through the in-process serving engine and
# demands bit-identical trajectories across worker counts (1 vs 4), CO
# batch widths (1 vs 8) and engine shard counts (1 vs 4), plus a
# kill-snapshot-restore cycle (every session evicted at frame 20, the
# server torn down, every snapshot restored into a fresh server at a
# different shard count) with zero sheds — and runs again with
# ICOIL_FORCE_SCALAR=1 so the scalar kernel fallback is held to the same
# contract, and a third time with ICOIL_IL_PRECISION=int8 so the
# quantized IL lane meets the same determinism bar. The solver/nn test
# suites also run once under ICOIL_FORCE_SCALAR=1: the SIMD kernels'
# conformance tests then compare scalar against scalar (trivially green)
# while everything else proves the escape hatch leaves the numerics
# bit-identical (the nn run includes the quantization proptests, so the
# int8 quantizer/accumulator contracts are proved on both backends). The
# conformance smoke (which includes the simd_scalar_kernels,
# batched_single_qp, quantized_il and family_determinism differential
# checks) fuzzes procedurally generated scenarios through the full
# harness, cycling every map family; a per-family pass then pins each
# family for at least 5 cases so no family can hide behind the cycling.
# The scenarios bin drives two full-stack episodes per family and emits
# the BENCH_scenarios.json the telemetry smoke schema-checks. The adapt
# smoke runs the online-adaptation flywheel end to end — seed demos,
# serve a generation, retrain, hot-swap, serve the next — asserting
# weight-version pinning per response, bit-identical client mirrors and
# checksum-clean artifact round trips, then repeats under
# ICOIL_FORCE_SCALAR=1 so retraining on the scalar kernels meets the
# same contract. Override the fuzz case count with ICOIL_FUZZ_CASES,
# e.g. `ICOIL_FUZZ_CASES=200 scripts/check.sh` for the full local sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
ICOIL_FORCE_SCALAR=1 cargo test -q -p icoil-solver -p icoil-nn -p icoil-co
cargo test --release -q --test backend_e2e
cargo clippy --all-targets -- -D warnings
ICOIL_EPISODES=2 \
    cargo run --release -q -p icoil-bench --bin scenarios -- --untrained --out target/BENCH_scenarios_smoke.json
cargo run --release -q -p icoil-bench --bin telemetry_smoke
cargo run --release -q -p icoil-bench --bin serve_smoke
ICOIL_FORCE_SCALAR=1 cargo run --release -q -p icoil-bench --bin serve_smoke
ICOIL_IL_PRECISION=int8 cargo run --release -q -p icoil-bench --bin serve_smoke
cargo run --release -q -p icoil-bench --bin adapt_smoke
ICOIL_FORCE_SCALAR=1 cargo run --release -q -p icoil-bench --bin adapt_smoke
ICOIL_FUZZ_CASES="${ICOIL_FUZZ_CASES:-25}" \
    cargo run --release -q -p icoil-bench --bin conformance -- --smoke --out target/conformance-smoke.json
for family in reverse_in parallel_curb angled_echelon pillared_garage dead_end_stub crowded_lot; do
    ICOIL_FUZZ_CASES="${ICOIL_FAMILY_FUZZ_CASES:-5}" \
        cargo run --release -q -p icoil-bench --bin conformance -- \
        --smoke --family "$family" --out "target/conformance-$family.json"
done
echo "all checks passed"
