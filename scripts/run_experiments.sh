#!/usr/bin/env bash
# Regenerates every table and figure of the paper and records the outputs
# under results/. Sized for a single-core machine; scale the knobs up for
# a longer, tighter-confidence run.
set -uo pipefail

# A global ICOIL_EPISODES overrides every per-section size; otherwise each
# section keeps its own default.
EPISODES_TABLE="${ICOIL_EPISODES:-${EPISODES_TABLE:-12}}"
EPISODES_SWEEP="${ICOIL_EPISODES:-${EPISODES_SWEEP:-4}}"
EPISODES_ABLATION="${ICOIL_EPISODES:-${EPISODES_ABLATION:-6}}"

# Multi-episode binaries fan episodes across this many worker threads;
# per-seed results are bit-identical at any setting.
export ICOIL_PARALLELISM="${ICOIL_PARALLELISM:-$(nproc 2>/dev/null || echo 1)}"
echo "episodes: table=$EPISODES_TABLE sweep=$EPISODES_SWEEP ablation=$EPISODES_ABLATION; workers=$ICOIL_PARALLELISM"

mkdir -p results
run() {
    local name="$1"; shift
    echo "=== $name ==="
    "$@" | tee "results/$name.out"
}

# main experiments
ICOIL_EPISODES=$EPISODES_TABLE  run table2 cargo run --release -q -p icoil-bench --bin table2
run fig5 cargo run --release -q -p icoil-bench --bin fig5
ICOIL_EPISODES=$EPISODES_SWEEP  run fig6 cargo run --release -q -p icoil-bench --bin fig6
ICOIL_EPISODES=$EPISODES_SWEEP  run fig7 cargo run --release -q -p icoil-bench --bin fig7
ICOIL_EPISODES=$EPISODES_SWEEP  run fig8 cargo run --release -q -p icoil-bench --bin fig8
ICOIL_EPISODES=$EPISODES_SWEEP  run fig9 cargo run --release -q -p icoil-bench --bin fig9
run freq cargo run --release -q -p icoil-bench --bin freq
ICOIL_EPISODES=$EPISODES_SWEEP  run perf cargo run --release -q -p icoil-bench --bin perf
run fig3 cargo run --release -q -p icoil-bench --bin fig3

# ablations (small training knobs: these train their own models)
ICOIL_EPISODES=$EPISODES_ABLATION run ablate_hsa    cargo run --release -q -p icoil-bench --bin ablate_hsa
ICOIL_EPISODES=$EPISODES_ABLATION run ablate_guard  cargo run --release -q -p icoil-bench --bin ablate_guard
ICOIL_EPISODES=$EPISODES_ABLATION run ablate_window cargo run --release -q -p icoil-bench --bin ablate_window
ICOIL_EPISODES=$EPISODES_ABLATION run ablate_horizon cargo run --release -q -p icoil-bench --bin ablate_horizon
ICOIL_TRAIN_EPISODES=4 ICOIL_TRAIN_EPOCHS=8 run ablate_actions cargo run --release -q -p icoil-bench --bin ablate_actions
ICOIL_EPISODES=$EPISODES_ABLATION ICOIL_TRAIN_EPISODES=4 ICOIL_TRAIN_EPOCHS=8 \
    run ablate_dagger cargo run --release -q -p icoil-bench --bin ablate_dagger

echo "all outputs in results/"
