//! Online DAgger-style adaptation for the iCOIL serving stack.
//!
//! The serving fleet is its own teacher: every frame the HSA arbiter
//! routes to constrained optimization already carries an expert action
//! for exactly the state distribution the IL policy visits — the
//! textbook DAgger correction, harvested for free from production
//! traffic. This crate closes that loop:
//!
//! * [`aggregate`] — the label aggregator capturing CO-mode and shed
//!   frames (BEV input, expert action, scenario family) from running
//!   engines;
//! * [`dataset`] — the versioned, checksummed on-disk dataset with
//!   deterministic per-family reservoir caps, so rare hard-family
//!   labels are never crowded out by easy-family traffic;
//! * [`retrain`] — the incremental retrainer: generation *g + 1* warm
//!   starts from generation *g* and continues on the grown aggregate,
//!   emitting versioned [`WeightArtifact`]s;
//! * [`store`] — the atomic versioned [`WeightStore`] engines hot-swap
//!   from: sessions pin the generation they started with for their
//!   whole episode, so mid-fleet publishes never change a trajectory
//!   mid-flight;
//! * [`safety`] — the per-frame [`SafetyProjector`] routing IL-mode
//!   actions through a small constraint QP, so a stale or mid-update
//!   policy can never emit an infeasible action.
//!
//! The [`container`] module provides the shared `ICDS`/`ICWT` binary
//! envelope (24-byte header, FNV-1a checksum) both artifact kinds use.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod aggregate;
pub mod container;
pub mod dataset;
pub mod retrain;
pub mod safety;
pub mod store;

pub use aggregate::LabelAggregator;
pub use container::{decode_container, encode_container, ContainerError};
pub use dataset::{AdaptDataset, DemoRecord, DATASET_MAGIC, DATASET_VERSION, NUM_FAMILIES};
pub use retrain::{retrain, WeightArtifact, WEIGHTS_MAGIC, WEIGHTS_VERSION};
pub use safety::{Projection, SafetyConfig, SafetyProjector};
pub use store::{fingerprint, WeightGeneration, WeightStore};
