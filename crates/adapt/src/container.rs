//! Versioned, checksummed binary container shared by the adaptation
//! artifacts (datasets and weight generations).
//!
//! The layout mirrors the serving stack's `ICSN` session snapshots —
//! the serde [`Value`] tree encoded directly to bytes (floats as raw
//! IEEE-754 bit patterns, integers little-endian, length-prefixed
//! strings and sequences) behind a 24-byte header:
//!
//! ```text
//! magic   [u8; 4]          4 bytes   (artifact kind, e.g. "ICDS")
//! version u32 LE           4 bytes
//! length  u64 LE           8 bytes   (payload byte count)
//! checksum u64 LE          8 bytes   (FNV-1a over the payload)
//! payload                  `length` bytes
//! ```
//!
//! The FNV-1a step `h' = (h ^ b) * prime` is a bijection of the running
//! hash for every input byte (xor with a constant is invertible, and
//! the odd prime has a multiplicative inverse mod 2^64), so **any**
//! single-bit payload flip changes the checksum and is rejected; flips
//! inside the header map to `BadMagic` / `UnsupportedVersion` /
//! `Truncated` / `Corrupted` instead. Truncation at any byte is caught
//! by the length field or the header-size check. Every malformed input
//! is a typed [`ContainerError`], never a panic.

use serde::{Deserialize, Serialize, Value};

/// Header size in bytes (magic + version + length + checksum).
const HEADER: usize = 24;
/// Maximum Seq/Map nesting accepted while decoding — far above any
/// legitimate artifact and low enough that hostile deeply-nested input
/// errors out instead of exhausting the stack.
const MAX_DEPTH: usize = 64;

/// Why an adaptation artifact failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The container version differs from what this build understands.
    UnsupportedVersion(u32),
    /// The buffer ends before the declared payload does.
    Truncated,
    /// The payload is internally inconsistent (checksum mismatch, bad
    /// tag, invalid UTF-8, trailing bytes, or excessive nesting).
    Corrupted(String),
    /// The payload decoded to a well-formed tree of the wrong shape for
    /// the requested type.
    Decode(String),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not an adaptation artifact (bad magic)"),
            ContainerError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            ContainerError::Truncated => write!(f, "truncated container"),
            ContainerError::Corrupted(msg) => write!(f, "corrupted container: {msg}"),
            ContainerError::Decode(msg) => write!(f, "container decode: {msg}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Encodes any serializable value under the given magic and version.
pub fn encode_container<T: Serialize>(magic: [u8; 4], version: u32, value: &T) -> Vec<u8> {
    let mut payload = Vec::with_capacity(256);
    encode_value(&value.to_value(), &mut payload);
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes an artifact produced by [`encode_container`] with the same
/// magic and version.
///
/// # Errors
///
/// Returns a [`ContainerError`] for any malformed input; never panics.
pub fn decode_container<T: Deserialize>(
    magic: [u8; 4],
    version: u32,
    bytes: &[u8],
) -> Result<T, ContainerError> {
    if bytes.len() < HEADER {
        return if bytes.len() >= 4 && bytes[..4] != magic {
            Err(ContainerError::BadMagic)
        } else {
            Err(ContainerError::Truncated)
        };
    }
    if bytes[..4] != magic {
        return Err(ContainerError::BadMagic);
    }
    let got_version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if got_version != version {
        return Err(ContainerError::UnsupportedVersion(got_version));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let len = usize::try_from(len)
        .map_err(|_| ContainerError::Corrupted("payload length overflow".into()))?;
    let payload = bytes
        .get(HEADER..HEADER + len)
        .ok_or(ContainerError::Truncated)?;
    if bytes.len() != HEADER + len {
        return Err(ContainerError::Corrupted("trailing bytes".into()));
    }
    if fnv1a(payload) != checksum {
        return Err(ContainerError::Corrupted("checksum mismatch".into()));
    }
    let mut cursor = Cursor { buf: payload, pos: 0 };
    let value = decode_value(&mut cursor, 0)?;
    if cursor.pos != payload.len() {
        return Err(ContainerError::Corrupted("payload trailing bytes".into()));
    }
    T::from_value(&value).map_err(|e| ContainerError::Decode(e.to_string()))
}

/// FNV-1a 64-bit hash — also used to fingerprint published weight
/// generations.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// Payload tag bytes, one per Value variant.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_F32: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::I64(n) => {
            out.push(TAG_I64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::U64(n) => {
            out.push(TAG_U64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::F32(x) => {
            out.push(TAG_F32);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for (key, val) in entries {
                out.extend_from_slice(&(key.len() as u64).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ContainerError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ContainerError::Truncated)?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ContainerError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, ContainerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn len(&mut self) -> Result<usize, ContainerError> {
        let n = self.u64()?;
        // a declared length beyond the remaining bytes can't be honest;
        // rejecting it here also stops huge preallocations
        let n = usize::try_from(n).map_err(|_| ContainerError::Truncated)?;
        if n > self.buf.len() - self.pos {
            return Err(ContainerError::Truncated);
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ContainerError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ContainerError::Corrupted("invalid UTF-8".into()))
    }
}

fn decode_value(c: &mut Cursor<'_>, depth: usize) -> Result<Value, ContainerError> {
    if depth > MAX_DEPTH {
        return Err(ContainerError::Corrupted("nesting too deep".into()));
    }
    match c.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => match c.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            b => Err(ContainerError::Corrupted(format!("bad bool byte {b}"))),
        },
        TAG_I64 => Ok(Value::I64(c.u64()? as i64)),
        TAG_U64 => Ok(Value::U64(c.u64()?)),
        TAG_F64 => Ok(Value::F64(f64::from_bits(c.u64()?))),
        TAG_F32 => Ok(Value::F32(f32::from_bits(u32::from_le_bytes(
            c.take(4)?.try_into().expect("4 bytes"),
        )))),
        TAG_STR => Ok(Value::Str(c.string()?)),
        TAG_SEQ => {
            let n = c.len()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(c, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let n = c.len()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let key = c.string()?;
                entries.push((key, decode_value(c, depth + 1)?));
            }
            Ok(Value::Map(entries))
        }
        tag => Err(ContainerError::Corrupted(format!("unknown tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"TEST";

    #[test]
    fn roundtrip_preserves_float_bits() {
        let values: Vec<f32> = vec![
            0.0,
            -0.0,
            1.5,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE / 2.0, // subnormal
        ];
        let bytes = encode_container(MAGIC, 1, &values);
        let back: Vec<f32> = decode_container(MAGIC, 1, &bytes).expect("decode");
        assert_eq!(values.len(), back.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn header_violations_are_typed_errors() {
        let bytes = encode_container(MAGIC, 1, &vec![1.0f64, 2.0]);
        assert_eq!(
            decode_container::<Vec<f64>>(MAGIC, 1, &[]),
            Err(ContainerError::Truncated)
        );
        assert_eq!(
            decode_container::<Vec<f64>>(MAGIC, 1, b"XXXX123456789012345678901234"),
            Err(ContainerError::BadMagic)
        );
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(
            decode_container::<Vec<f64>>(MAGIC, 1, &wrong_version),
            Err(ContainerError::UnsupportedVersion(99))
        );
        let truncated = &bytes[..bytes.len() - 1];
        assert_eq!(
            decode_container::<Vec<f64>>(MAGIC, 1, truncated),
            Err(ContainerError::Truncated)
        );
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            decode_container::<Vec<f64>>(MAGIC, 1, &corrupt),
            Err(ContainerError::Corrupted(_))
        ));
    }

    #[test]
    fn magics_do_not_cross_decode() {
        let bytes = encode_container(MAGIC, 1, &7u64);
        assert_eq!(
            decode_container::<u64>(*b"ICDS", 1, &bytes),
            Err(ContainerError::BadMagic)
        );
    }

    #[test]
    fn wrong_shape_is_a_decode_error() {
        let bytes = encode_container(MAGIC, 1, &42u64);
        assert!(matches!(
            decode_container::<Vec<f64>>(MAGIC, 1, &bytes),
            Err(ContainerError::Decode(_))
        ));
    }
}
