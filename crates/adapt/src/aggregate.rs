//! The label aggregator: turns served CO work into training labels.
//!
//! Whenever the arbiter routes a frame to constrained optimization the
//! engine already paid for an expert solve — the resulting action is a
//! free DAgger-style label for exactly the state distribution the IL
//! policy visits. Shed frames (CO admission or deadline sheds) are the
//! most valuable of all: they mark states where the *serving system*
//! failed the driver, so a relabeled expert action there directly
//! shrinks the shed rate of the next generation.
//!
//! The aggregator pairs an [`ActionCodec`] with an [`AdaptDataset`]
//! and keeps CO/shed provenance counts for telemetry.

use crate::dataset::AdaptDataset;
use icoil_perception::BevImage;
use icoil_vehicle::{Action, ActionCodec};
use icoil_world::MapFamilyKind;

/// Accumulates (BEV, expert action) pairs from running engines.
#[derive(Debug, Clone)]
pub struct LabelAggregator {
    codec: ActionCodec,
    dataset: AdaptDataset,
    co_frames: u64,
    shed_frames: u64,
}

impl LabelAggregator {
    /// Wraps a dataset with the action codec used to discretize labels.
    pub fn new(codec: ActionCodec, dataset: AdaptDataset) -> Self {
        LabelAggregator {
            codec,
            dataset,
            co_frames: 0,
            shed_frames: 0,
        }
    }

    /// Records a frame the arbiter sent to CO and that CO solved.
    ///
    /// Returns whether the frame was retained by its family reservoir.
    pub fn record_co_frame(&mut self, family: MapFamilyKind, bev: &BevImage, expert: &Action) -> bool {
        self.co_frames += 1;
        let label = self.codec.encode(expert);
        self.dataset.push(family, &bev.data, label)
    }

    /// Records a frame the server shed (degraded brake served instead)
    /// that was later relabeled offline by the expert.
    ///
    /// Returns whether the frame was retained by its family reservoir.
    pub fn record_shed_frame(&mut self, family: MapFamilyKind, bev: &BevImage, expert: &Action) -> bool {
        self.shed_frames += 1;
        let label = self.codec.encode(expert);
        self.dataset.push(family, &bev.data, label)
    }

    /// CO-solved frames offered so far.
    pub fn co_frames(&self) -> u64 {
        self.co_frames
    }

    /// Shed-then-relabeled frames offered so far.
    pub fn shed_frames(&self) -> u64 {
        self.shed_frames
    }

    /// The action codec labels are encoded with.
    pub fn codec(&self) -> &ActionCodec {
        &self.codec
    }

    /// Read access to the underlying dataset.
    pub fn dataset(&self) -> &AdaptDataset {
        &self.dataset
    }

    /// Consumes the aggregator, yielding the dataset for retraining.
    pub fn into_dataset(self) -> AdaptDataset {
        self.dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_perception::BevConfig;

    fn bev_image(config: &BevConfig, fill: f32) -> BevImage {
        BevImage {
            size: config.size,
            range: config.range,
            data: vec![fill; 3 * config.size * config.size],
        }
    }

    #[test]
    fn frames_land_in_the_right_family_with_encoded_labels() {
        let bev = BevConfig {
            size: 8,
            range: 8.0,
        };
        let codec = ActionCodec::default();
        let mut agg = LabelAggregator::new(codec, AdaptDataset::for_bev(&bev, 16, 0));
        let img = bev_image(&bev, 0.5);
        let fwd = Action::forward(0.6, 0.3);
        agg.record_co_frame(MapFamilyKind::ALL[1], &img, &fwd);
        agg.record_shed_frame(MapFamilyKind::ALL[4], &img, &fwd);
        assert_eq!(agg.co_frames(), 1);
        assert_eq!(agg.shed_frames(), 1);
        let counts = agg.dataset().counts();
        assert_eq!(counts[1], 1);
        assert_eq!(counts[4], 1);
        let expected = codec.encode(&fwd);
        let t = agg.into_dataset().to_training_set();
        assert_eq!(t.labels(), &[expected, expected]);
    }
}
