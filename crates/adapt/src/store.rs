//! The atomic versioned weight store serving engines hot-swap from.
//!
//! Publishing a generation appends to an immutable `Arc`'d table and
//! swaps the table pointer under a short lock; readers clone the `Arc`
//! and never block each other. Versions are never mutated or removed
//! once published, which is what lets a session **pin** the generation
//! it started with for its whole episode: mid-episode publishes change
//! only which version *new* sessions get, never the weights behind an
//! existing pin. Snapshots carry the pinned version, so a restored
//! session replays bit-identically against the same store contents.

use crate::container::fnv1a;
use icoil_il::IlModel;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// One published, immutable weight generation.
#[derive(Debug)]
pub struct WeightGeneration {
    /// Generation number (0 = the model the store was created with).
    pub version: u32,
    /// Demonstration frames behind this generation (0 for the seed).
    pub examples: u64,
    /// FNV-1a fingerprint of the serialized weights — cheap identity
    /// check across processes without shipping the model.
    pub checksum: u64,
    /// The weights themselves.
    pub model: IlModel,
}

/// The generation table. Clone the `Arc` freely; all clones see the
/// same published versions.
#[derive(Debug)]
pub struct WeightStore {
    table: Mutex<Arc<Vec<Arc<WeightGeneration>>>>,
    published: AtomicU32,
}

impl WeightStore {
    /// Creates a store whose generation 0 is `model`.
    pub fn new(model: IlModel) -> Self {
        let gen0 = Arc::new(WeightGeneration {
            version: 0,
            examples: 0,
            checksum: fingerprint(&model),
            model,
        });
        WeightStore {
            table: Mutex::new(Arc::new(vec![gen0])),
            published: AtomicU32::new(0),
        }
    }

    /// Publishes a new generation; returns its version number.
    ///
    /// New sessions created after this call pin the returned version;
    /// sessions already running keep their pinned generation.
    pub fn publish(&self, model: IlModel, examples: u64) -> u32 {
        let mut table = self.table.lock().expect("weight table poisoned");
        let version = table.len() as u32;
        let generation = Arc::new(WeightGeneration {
            version,
            examples,
            checksum: fingerprint(&model),
            model,
        });
        let mut next: Vec<Arc<WeightGeneration>> = table.as_ref().clone();
        next.push(generation);
        *table = Arc::new(next);
        // release-order the version bump behind the table swap so a
        // reader that observes the new `published` can always `get` it
        self.published.store(version, Ordering::Release);
        version
    }

    /// The most recently published version number.
    pub fn published(&self) -> u32 {
        self.published.load(Ordering::Acquire)
    }

    /// Fetches a published generation; `None` for an unknown version.
    pub fn get(&self, version: u32) -> Option<Arc<WeightGeneration>> {
        let table = self.table.lock().expect("weight table poisoned");
        table.get(version as usize).cloned()
    }

    /// The most recently published generation.
    pub fn latest(&self) -> Arc<WeightGeneration> {
        self.get(self.published()).expect("published version exists")
    }

    /// Number of published generations (≥ 1).
    pub fn generation_count(&self) -> usize {
        self.table.lock().expect("weight table poisoned").len()
    }
}

/// FNV-1a over the canonical JSON serialization of the weights —
/// exposed so artifacts and stores agree on a generation's identity.
pub fn fingerprint(model: &IlModel) -> u64 {
    fnv1a(model.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_perception::BevConfig;
    use icoil_vehicle::ActionCodec;

    fn model(seed: u64) -> IlModel {
        let bev = BevConfig {
            size: 8,
            range: 8.0,
        };
        IlModel::untrained(ActionCodec::default(), bev, seed)
    }

    #[test]
    fn publish_bumps_version_and_pins_survive() {
        let store = WeightStore::new(model(1));
        assert_eq!(store.published(), 0);
        assert_eq!(store.generation_count(), 1);
        let pinned = store.get(0).unwrap();
        let v1 = store.publish(model(2), 100);
        assert_eq!(v1, 1);
        assert_eq!(store.published(), 1);
        // the pinned generation is untouched by the publish
        assert_eq!(pinned.checksum, store.get(0).unwrap().checksum);
        assert_ne!(store.get(0).unwrap().checksum, store.get(1).unwrap().checksum);
        assert_eq!(store.latest().version, 1);
        assert_eq!(store.latest().examples, 100);
    }

    #[test]
    fn unknown_versions_are_none() {
        let store = WeightStore::new(model(1));
        assert!(store.get(7).is_none());
    }

    #[test]
    fn concurrent_readers_see_consistent_tables() {
        let store = Arc::new(WeightStore::new(model(1)));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let v = s.publish(model(t * 1000 + i), i);
                    // everything at or below our publish must resolve
                    for ver in 0..=v {
                        assert!(s.get(ver).is_some());
                    }
                    assert!(s.published() >= v || s.get(s.published()).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.generation_count(), 1 + 4 * 50);
    }
}
