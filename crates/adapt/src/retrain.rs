//! Incremental retraining: generation *g* → generation *g + 1*.
//!
//! The retrainer never trains from scratch. It clones the previous
//! generation's weights and continues optimization on the current
//! aggregate dataset via [`icoil_il::train_incremental`], so the policy
//! accumulates competence across generations instead of relearning the
//! easy families each round. A retraining pass is a pure function of
//! `(previous weights, dataset, config)` — same inputs, bit-identical
//! output weights — which is what makes the serving-side weight pinning
//! and conformance replay meaningful.

use crate::container::{decode_container, encode_container, ContainerError};
use crate::dataset::AdaptDataset;
use icoil_il::{train_incremental, IlModel, TrainConfig, TrainReport};
use serde::{Deserialize, Serialize};

/// Magic bytes of the weight-artifact container.
pub const WEIGHTS_MAGIC: [u8; 4] = *b"ICWT";
/// Current weight-artifact container version.
pub const WEIGHTS_VERSION: u32 = 1;

/// Continues training `prev` on the dataset, returning the next
/// generation's model plus its training curves.
///
/// `prev` is untouched; the returned model starts from its weights.
///
/// # Panics
///
/// Panics for an empty dataset or a sample shape that does not match
/// the model's BEV geometry (same contract as the underlying trainer).
pub fn retrain(
    prev: &IlModel,
    dataset: &AdaptDataset,
    config: &TrainConfig,
) -> (IlModel, TrainReport) {
    let mut model = prev.clone();
    let report = train_incremental(&mut model, &dataset.to_training_set(), config);
    (model, report)
}

/// A versioned, self-describing weight artifact — what the retrainer
/// emits and what the weight store publishes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightArtifact {
    /// Generation number (0 = the seed model).
    pub version: u32,
    /// The generation this one warm-started from, if any.
    pub parent: Option<u32>,
    /// Training seed used for this generation.
    pub seed: u64,
    /// Demonstration frames the training set held when this generation
    /// was produced.
    pub examples: u64,
    /// The trained model.
    pub model: IlModel,
}

impl WeightArtifact {
    /// Encodes into the `ICWT` container.
    pub fn encode(&self) -> Vec<u8> {
        encode_container(WEIGHTS_MAGIC, WEIGHTS_VERSION, self)
    }

    /// Decodes an `ICWT` container produced by [`WeightArtifact::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`ContainerError`] for any malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, ContainerError> {
        decode_container(WEIGHTS_MAGIC, WEIGHTS_VERSION, bytes)
    }

    /// Writes the encoded artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Reads an artifact saved by [`WeightArtifact::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O errors verbatim and decode failures as
    /// `InvalidData`.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        WeightArtifact::decode(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_perception::BevConfig;
    use icoil_vehicle::{Action, ActionCodec};
    use icoil_world::MapFamilyKind;

    fn tiny_dataset(bev: &BevConfig, codec: &ActionCodec, n: usize) -> AdaptDataset {
        let mut d = AdaptDataset::for_bev(bev, 64, 0);
        let s = bev.size;
        for i in 0..n {
            let mut img = vec![0.0f32; 3 * s * s];
            let left = i % 2 == 0;
            let rows = if left { 0..s / 2 } else { s / 2..s };
            for r in rows {
                for c in s / 2..s {
                    img[r * s + c] = 1.0;
                }
            }
            let steer = if left { -1.0 } else { 1.0 };
            let label = codec.encode(&Action::forward(0.6, steer));
            d.push(MapFamilyKind::ALL[i % MapFamilyKind::ALL.len()], &img, label);
        }
        d
    }

    #[test]
    fn retrain_is_deterministic_and_leaves_prev_untouched() {
        let bev = BevConfig {
            size: 16,
            range: 8.0,
        };
        let codec = ActionCodec::default();
        let d = tiny_dataset(&bev, &codec, 24);
        let prev = IlModel::untrained(codec, bev, 11);
        let before = prev.to_json();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 1e-3,
            seed: 5,
            label_smoothing: 0.1,
        };
        let (m1, r1) = retrain(&prev, &d, &cfg);
        let (m2, r2) = retrain(&prev, &d, &cfg);
        assert_eq!(m1.to_json(), m2.to_json());
        assert_eq!(r1, r2);
        assert_eq!(prev.to_json(), before, "retrain must not mutate its input");
        assert_ne!(m1.to_json(), before, "training must change the weights");
    }

    #[test]
    fn weight_artifact_roundtrips() {
        let bev = BevConfig {
            size: 8,
            range: 8.0,
        };
        let codec = ActionCodec::default();
        let artifact = WeightArtifact {
            version: 3,
            parent: Some(2),
            seed: 42,
            examples: 1234,
            model: IlModel::untrained(codec, bev, 7),
        };
        let bytes = artifact.encode();
        assert_eq!(&bytes[..4], b"ICWT");
        let back = WeightArtifact::decode(&bytes).unwrap();
        assert_eq!(back.version, 3);
        assert_eq!(back.parent, Some(2));
        assert_eq!(back.seed, 42);
        assert_eq!(back.examples, 1234);
        assert_eq!(back.model.to_json(), artifact.model.to_json());
    }

    #[test]
    fn weights_do_not_decode_as_datasets() {
        let bev = BevConfig {
            size: 8,
            range: 8.0,
        };
        let artifact = WeightArtifact {
            version: 0,
            parent: None,
            seed: 0,
            examples: 0,
            model: IlModel::untrained(ActionCodec::default(), bev, 1),
        };
        assert!(matches!(
            AdaptDataset::decode(&artifact.encode()),
            Err(ContainerError::BadMagic)
        ));
    }
}
