//! The per-frame safety projection shielding IL-mode actions.
//!
//! Hot-swapping weights mid-fleet means an engine can serve a policy
//! generation that has never seen the scene in front of it. The
//! projector guarantees that no IL action — stale, mid-update, or just
//! wrong — is ever applied infeasibly: each IL-mode action is routed
//! through a tiny per-frame constraint QP over the longitudinal
//! command, with one half-space row per nearby obstacle derived from
//! the ego's clearance along its heading. Feasible actions pass through
//! **bitwise unchanged** (the projector is idempotent); infeasible ones
//! are clipped toward zero along the same gear — the projection never
//! flips a gear the policy chose — and a geometrically hopeless frame
//! degenerates to a full brake, which is always safe.
//!
//! The QP reuses the workspace solver's sparse backend, the same code
//! path the CO planner trusts, so the shield adds no new numerics.

use icoil_geom::{Obb, Vec2};
use icoil_solver::{solve_qp, Backend, Mat, QpProblem, QpSettings};
use icoil_vehicle::{Action, VehicleParams, VehicleState};
use serde::{Deserialize, Serialize};

/// Safety-projection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyConfig {
    /// Master switch; disabled by default so existing deployments keep
    /// bit-identical trajectories until they opt in.
    pub enabled: bool,
    /// Clearance kept beyond the ego's bounding circle (meters).
    pub margin: f64,
    /// Look-ahead horizon the command is held for (seconds).
    pub horizon: f64,
    /// Longitudinal acceleration per unit command (m/s²) — how
    /// aggressively a unit throttle moves the ego within the horizon.
    pub accel_gain: f64,
    /// At most this many nearest obstacle rows enter the QP.
    pub max_rows: usize,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig {
            enabled: false,
            margin: 0.35,
            horizon: 0.6,
            accel_gain: 2.5,
            max_rows: 4,
        }
    }
}

/// Outcome of projecting one action.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// The action to apply (the input, bitwise, when it was feasible).
    pub action: Action,
    /// Whether the action was modified.
    pub clipped: bool,
    /// `|projected − requested|` longitudinal command change.
    pub clip_magnitude: f64,
    /// ADMM iterations spent by the QP (0 on the fast paths).
    pub iterations: usize,
}

/// Projects IL-mode actions onto the feasible command set.
#[derive(Debug, Clone)]
pub struct SafetyProjector {
    config: SafetyConfig,
    settings: QpSettings,
}

/// One active obstacle half-space `a · lon ≤ b`.
struct Row {
    a: f64,
    b: f64,
    clearance: f64,
}

impl SafetyProjector {
    /// A projector with the given parameters and default QP settings.
    pub fn new(config: SafetyConfig) -> Self {
        SafetyProjector {
            config,
            settings: QpSettings::default(),
        }
    }

    /// The projector's parameters.
    pub fn config(&self) -> &SafetyConfig {
        &self.config
    }

    /// Projects `action` for the ego at `ego` among `boxes`.
    ///
    /// Pure function of its arguments: same state, same boxes, same
    /// action → same result, and projecting a projected action returns
    /// it bitwise unchanged.
    pub fn project(
        &self,
        ego: &VehicleState,
        params: &VehicleParams,
        boxes: &[Obb],
        action: Action,
    ) -> Projection {
        // Braking/coasting commands are always safe — and this early
        // return is what makes a projected full-brake idempotent.
        let lon0 = if action.brake >= action.throttle {
            0.0
        } else if action.reverse {
            -action.throttle
        } else {
            action.throttle
        };
        if lon0 == 0.0 {
            return Projection {
                action,
                clipped: false,
                clip_magnitude: 0.0,
                iterations: 0,
            };
        }

        let heading = Vec2::new(ego.pose.theta.cos(), ego.pose.theta.sin());
        // Body-center circle: tight enough not to brake inside a bay,
        // conservative enough to cover both axles.
        let center = Vec2::new(ego.pose.x, ego.pose.y)
            + heading * (0.5 * params.length - params.rear_overhang);
        let ego_radius = 0.5 * params.length.hypot(params.width);

        let mut rows: Vec<Row> = Vec::new();
        let mut contact = false;
        for obb in boxes {
            let local = (center - obb.center).rotated(-obb.theta);
            let clamped = Vec2::new(
                local.x.clamp(-obb.half_length, obb.half_length),
                local.y.clamp(-obb.half_width, obb.half_width),
            );
            let closest = obb.center + clamped.rotated(obb.theta);
            let delta = closest - center;
            let dist = delta.norm();
            if dist < 1e-9 {
                // body center inside the box — no direction to reason
                // about; only a full stop is defensible
                contact = true;
                continue;
            }
            let n = delta / dist;
            let clearance = dist - ego_radius;
            let align = n.dot(heading);
            if align.abs() < 1e-6 {
                continue; // purely lateral — longitudinal command can't close it
            }
            // Displacement toward the obstacle over the horizon under
            // command `lon`: align · (v·h + ½·g·h²·lon) ≤ clearance − margin.
            let h = self.config.horizon;
            let a = align * 0.5 * self.config.accel_gain * h * h;
            let b = (clearance - self.config.margin) - align * ego.velocity * h;
            if b >= a.abs() {
                continue; // satisfied by every command in [-1, 1]
            }
            rows.push(Row { a, b, clearance });
        }
        rows.sort_by(|p, q| p.clearance.total_cmp(&q.clearance));
        rows.truncate(self.config.max_rows);

        // The rows are one-dimensional, so the feasible set is an exact
        // interval; shrinking it (instead of testing rows directly)
        // keeps the feasibility test and the clip consistent to the ulp.
        let mut lo = lon0.min(0.0);
        let mut hi = lon0.max(0.0);
        for row in &rows {
            if row.a > 0.0 {
                hi = hi.min(row.b / row.a);
            } else {
                lo = lo.max(row.b / row.a);
            }
        }

        if !contact && lon0 >= lo && lon0 <= hi {
            return Projection {
                action,
                clipped: false,
                clip_magnitude: 0.0,
                iterations: 0,
            };
        }

        let (lon, iterations) = if contact || lo > hi {
            (0.0, 0)
        } else {
            let iterations = self.solve(lon0, action.steer, lo, hi, &rows);
            // The QP confirms the projection numerically; the final
            // command is the exact interval clamp so idempotence holds
            // bitwise, not just to solver tolerance.
            (lon0.clamp(lo, hi), iterations)
        };

        let projected = if lon == 0.0 {
            Action {
                throttle: 0.0,
                brake: 1.0,
                steer: action.steer,
                reverse: action.reverse,
            }
        } else {
            Action {
                throttle: lon.abs(),
                brake: 0.0,
                steer: action.steer,
                reverse: action.reverse,
            }
        };
        let clipped = projected != action;
        Projection {
            clip_magnitude: (lon - lon0).abs(),
            iterations,
            action: projected,
            clipped,
        }
    }

    /// The 2-variable projection QP: minimize ‖u − u₀‖² over
    /// `[lon, steer]` subject to the command box and obstacle rows, on
    /// the sparse backend.
    fn solve(&self, lon0: f64, steer0: f64, lo: f64, hi: f64, rows: &[Row]) -> usize {
        let mut a_rows: Vec<Vec<f64>> = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut l = vec![lo, -1.0];
        let mut u = vec![hi, 1.0];
        for row in rows {
            a_rows.push(vec![row.a, 0.0]);
            l.push(f64::NEG_INFINITY);
            u.push(row.b);
        }
        let refs: Vec<&[f64]> = a_rows.iter().map(|r| r.as_slice()).collect();
        let problem = QpProblem::new(
            Mat::identity(2),
            vec![-lon0, -steer0],
            Mat::from_rows(&refs),
            l,
            u,
        )
        .expect("projection QP dimensions are consistent")
        .with_backend(Backend::Sparse);
        solve_qp(&problem, &self.settings).iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::Pose2;

    fn enabled() -> SafetyConfig {
        SafetyConfig {
            enabled: true,
            ..SafetyConfig::default()
        }
    }

    fn ego(x: f64, velocity: f64) -> VehicleState {
        VehicleState {
            pose: Pose2 { x, y: 0.0, theta: 0.0 },
            velocity,
        }
    }

    fn wall_ahead(x: f64) -> Obb {
        Obb {
            center: Vec2::new(x, 0.0),
            half_length: 0.2,
            half_width: 5.0,
            theta: 0.0,
        }
    }

    #[test]
    fn open_space_is_a_bitwise_passthrough() {
        let p = SafetyProjector::new(enabled());
        let params = VehicleParams::default();
        let act = Action::forward(0.6, 0.25);
        let out = p.project(&ego(0.0, 1.0), &params, &[], act);
        assert!(!out.clipped);
        assert_eq!(out.action, act);
        assert_eq!(out.clip_magnitude, 0.0);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn imminent_wall_clips_or_brakes() {
        let p = SafetyProjector::new(enabled());
        let params = VehicleParams::default();
        // wall just past the nose, closing fast
        let wall = wall_ahead(0.5 * params.length + 1.0);
        let act = Action::forward(1.0, 0.0);
        let out = p.project(&ego(0.0, 2.0), &params, &[wall], act);
        assert!(out.clipped);
        assert!(out.action.throttle < 1.0);
        assert!(out.clip_magnitude > 0.0);
        // and the hopeless version degrades to a full brake
        let near = wall_ahead(0.5 * params.length + 0.1);
        let out = p.project(&ego(0.0, 3.0), &params, &[near], act);
        assert_eq!(out.action.brake, 1.0);
        assert_eq!(out.action.throttle, 0.0);
        assert_eq!(out.action.steer, act.steer);
    }

    #[test]
    fn projection_is_idempotent_bitwise() {
        let p = SafetyProjector::new(enabled());
        let params = VehicleParams::default();
        let scenes: Vec<(VehicleState, Vec<Obb>)> = vec![
            (ego(0.0, 2.0), vec![wall_ahead(3.0)]),
            (ego(0.0, 0.5), vec![wall_ahead(1.5)]),
            (ego(0.0, -1.0), vec![wall_ahead(2.0)]),
            (ego(0.0, 1.0), vec![]),
        ];
        let actions = [
            Action::forward(1.0, 0.0),
            Action::forward(0.6, -0.5),
            Action {
                throttle: 0.6,
                brake: 0.0,
                steer: 0.3,
                reverse: true,
            },
            Action {
                throttle: 0.0,
                brake: 1.0,
                steer: 0.0,
                reverse: false,
            },
        ];
        for (state, boxes) in &scenes {
            for act in actions {
                let once = p.project(state, &params, boxes, act);
                let twice = p.project(state, &params, boxes, once.action);
                assert!(!twice.clipped, "{act:?} re-clipped to {:?}", twice.action);
                assert_eq!(once.action, twice.action);
            }
        }
    }

    #[test]
    fn gear_is_never_flipped() {
        let p = SafetyProjector::new(enabled());
        let params = VehicleParams::default();
        // obstacle behind while reversing toward it
        let wall = Obb {
            center: Vec2::new(-3.0, 0.0),
            half_length: 0.2,
            half_width: 5.0,
            theta: 0.0,
        };
        let act = Action {
            throttle: 1.0,
            brake: 0.0,
            steer: 0.0,
            reverse: true,
        };
        let out = p.project(&ego(0.0, -2.0), &params, &[wall], act);
        assert!(out.action.reverse, "projection must preserve the gear");
        assert!(out.action.throttle <= 1.0);
    }

    #[test]
    fn lateral_walls_do_not_brake_the_bay_approach() {
        let p = SafetyProjector::new(enabled());
        let params = VehicleParams::default();
        // parallel walls either side, as inside a parking bay
        let side = |y: f64| Obb {
            center: Vec2::new(0.0, y),
            half_length: 10.0,
            half_width: 0.2,
            theta: 0.0,
        };
        let act = Action::forward(0.6, 0.0);
        let out = p.project(
            &ego(0.0, 1.0),
            &params,
            &[side(2.5), side(-2.5)],
            act,
        );
        assert!(!out.clipped, "side walls must not clip forward motion");
    }

    #[test]
    fn disabled_config_is_default() {
        assert!(!SafetyConfig::default().enabled);
    }
}
