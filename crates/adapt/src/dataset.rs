//! The versioned on-disk demonstration dataset with per-family
//! reservoir caps.
//!
//! Every CO-mode or shed frame a running engine serves is a free expert
//! label: the BEV input the policy saw plus the constrained-optimization
//! action that was (or should have been) applied. The aggregate stream
//! is unbounded and skewed — easy families dominate because they admit
//! more CO work — so the dataset keeps one bounded **reservoir per map
//! family**. Reservoir sampling gives every frame of a family's stream
//! an equal probability of surviving, and the per-family split keeps
//! rare hard-family labels from being crowded out.
//!
//! Determinism: each reservoir carries its own splitmix64 stream seeded
//! from `(dataset seed, family index)`, and the RNG state is serialized
//! with the dataset, so feeding the same frames in the same order —
//! even across save/load boundaries — always retains the same subset.

use crate::container::{decode_container, encode_container, ContainerError};
use icoil_world::MapFamilyKind;
use serde::{Deserialize, Serialize};

/// Magic bytes of the dataset container.
pub const DATASET_MAGIC: [u8; 4] = *b"ICDS";
/// Current dataset container version.
pub const DATASET_VERSION: u32 = 1;

/// Number of map families (the length of [`MapFamilyKind::ALL`]).
pub const NUM_FAMILIES: usize = MapFamilyKind::ALL.len();

/// One harvested demonstration frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemoRecord {
    /// Which map family produced the frame.
    pub family: MapFamilyKind,
    /// The flattened BEV input the policy saw.
    pub sample: Vec<f32>,
    /// The expert action class (`ActionCodec::encode` of the CO action).
    pub label: usize,
}

/// One family's bounded reservoir.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FamilyReservoir {
    /// Frames offered to this reservoir so far (kept or not).
    seen: u64,
    /// splitmix64 state — serialized so a reloaded dataset continues
    /// the same replacement stream.
    rng: u64,
    /// Retained records, at most `cap_per_family`.
    records: Vec<DemoRecord>,
}

impl FamilyReservoir {
    fn new(seed: u64) -> Self {
        FamilyReservoir {
            seen: 0,
            rng: seed,
            records: Vec::new(),
        }
    }

    /// Classic reservoir step: the `n`-th offered frame survives with
    /// probability `cap / n`.
    fn offer(&mut self, record: DemoRecord, cap: usize) -> bool {
        self.seen += 1;
        if self.records.len() < cap {
            self.records.push(record);
            return true;
        }
        let j = (splitmix64(&mut self.rng) % self.seen) as usize;
        if j < cap {
            self.records[j] = record;
            true
        } else {
            false
        }
    }
}

/// splitmix64 — tiny, seedable, and identical on every platform.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The versioned adaptation dataset: one reservoir per map family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptDataset {
    sample_shape: Vec<usize>,
    cap_per_family: usize,
    seed: u64,
    families: Vec<FamilyReservoir>,
}

impl AdaptDataset {
    /// Creates an empty dataset of samples shaped `sample_shape`, with
    /// at most `cap_per_family` retained records per map family.
    ///
    /// # Panics
    ///
    /// Panics for a zero cap or an empty sample shape.
    pub fn new(sample_shape: Vec<usize>, cap_per_family: usize, seed: u64) -> Self {
        assert!(cap_per_family > 0, "reservoir cap must be positive");
        assert!(!sample_shape.is_empty(), "sample shape must be non-empty");
        let families = (0..NUM_FAMILIES)
            .map(|idx| {
                // decorrelate the per-family streams without touching
                // the dataset-level seed semantics
                let s = seed.wrapping_add((idx as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
                FamilyReservoir::new(s)
            })
            .collect();
        AdaptDataset {
            sample_shape,
            cap_per_family,
            seed,
            families,
        }
    }

    /// Convenience constructor for the BEV geometry the IL model uses
    /// (`[3, size, size]`).
    pub fn for_bev(bev: &icoil_perception::BevConfig, cap_per_family: usize, seed: u64) -> Self {
        AdaptDataset::new(vec![3, bev.size, bev.size], cap_per_family, seed)
    }

    /// Offers one frame to its family's reservoir; returns whether it
    /// was retained.
    ///
    /// # Panics
    ///
    /// Panics when the sample length does not match the dataset shape.
    pub fn push(&mut self, family: MapFamilyKind, sample: &[f32], label: usize) -> bool {
        let expected: usize = self.sample_shape.iter().product();
        assert_eq!(
            sample.len(),
            expected,
            "sample has {} elements but the dataset stores {expected}-element samples",
            sample.len()
        );
        let record = DemoRecord {
            family,
            sample: sample.to_vec(),
            label,
        };
        self.families[family.index()].offer(record, self.cap_per_family)
    }

    /// Retained record counts per family, in [`MapFamilyKind::ALL`] order.
    pub fn counts(&self) -> [usize; NUM_FAMILIES] {
        let mut out = [0usize; NUM_FAMILIES];
        for (slot, fam) in out.iter_mut().zip(&self.families) {
            *slot = fam.records.len();
        }
        out
    }

    /// Total frames ever offered (kept or not), across all families.
    pub fn seen(&self) -> u64 {
        self.families.iter().map(|f| f.seen).sum()
    }

    /// Total retained records across all families.
    pub fn len(&self) -> usize {
        self.families.iter().map(|f| f.records.len()).sum()
    }

    /// Returns `true` when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.families.iter().all(|f| f.records.is_empty())
    }

    /// The shape of one sample.
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// The per-family reservoir cap.
    pub fn cap_per_family(&self) -> usize {
        self.cap_per_family
    }

    /// The dataset-level seed the reservoir streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Flattens the reservoirs (families in [`MapFamilyKind::ALL`]
    /// order, records in retention order) into a trainer-ready dataset.
    pub fn to_training_set(&self) -> icoil_nn::Dataset {
        let mut out = icoil_nn::Dataset::new(self.sample_shape.clone());
        for fam in &self.families {
            for rec in &fam.records {
                out.push(&rec.sample, rec.label).expect("shape checked on push");
            }
        }
        out
    }

    /// Encodes into the `ICDS` container.
    pub fn encode(&self) -> Vec<u8> {
        encode_container(DATASET_MAGIC, DATASET_VERSION, self)
    }

    /// Decodes an `ICDS` container produced by [`AdaptDataset::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`ContainerError`] for any malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, ContainerError> {
        let d: AdaptDataset = decode_container(DATASET_MAGIC, DATASET_VERSION, bytes)?;
        if d.families.len() != NUM_FAMILIES {
            return Err(ContainerError::Decode(format!(
                "expected {NUM_FAMILIES} family reservoirs, found {}",
                d.families.len()
            )));
        }
        Ok(d)
    }

    /// Writes the encoded dataset to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Reads a dataset saved by [`AdaptDataset::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O errors verbatim and decode failures as
    /// `InvalidData`.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        AdaptDataset::decode(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(v: f32) -> Vec<f32> {
        vec![v, v + 1.0, v + 2.0, v + 3.0]
    }

    fn filled(cap: usize, seed: u64, frames: usize) -> AdaptDataset {
        let mut d = AdaptDataset::new(vec![2, 2], cap, seed);
        for i in 0..frames {
            let fam = MapFamilyKind::ALL[i % NUM_FAMILIES];
            d.push(fam, &sample(i as f32), i % 21);
        }
        d
    }

    #[test]
    fn caps_hold_per_family() {
        let d = filled(5, 1, 600);
        assert_eq!(d.counts(), [5; NUM_FAMILIES]);
        assert_eq!(d.len(), 5 * NUM_FAMILIES);
        assert_eq!(d.seen(), 600);
    }

    #[test]
    fn below_cap_keeps_everything_in_order() {
        let mut d = AdaptDataset::new(vec![2, 2], 10, 3);
        for i in 0..4 {
            assert!(d.push(MapFamilyKind::ALL[0], &sample(i as f32), i));
        }
        let t = d.to_training_set();
        assert_eq!(t.labels(), &[0, 1, 2, 3]);
    }

    #[test]
    fn reservoir_is_seed_deterministic() {
        let a = filled(3, 9, 300);
        let b = filled(3, 9, 300);
        assert_eq!(a, b);
        let c = filled(3, 10, 300);
        assert_ne!(a, c, "different seeds should retain different subsets");
    }

    #[test]
    fn determinism_survives_save_load_boundary() {
        // straight-through vs. save/load at the midpoint must agree,
        // because the RNG state travels with the dataset
        let straight = filled(3, 4, 200);
        let mut half = filled(3, 4, 100);
        half = AdaptDataset::decode(&half.encode()).unwrap();
        for i in 100..200 {
            let fam = MapFamilyKind::ALL[i % NUM_FAMILIES];
            half.push(fam, &sample(i as f32), i % 21);
        }
        assert_eq!(straight, half);
    }

    #[test]
    fn training_set_orders_families_stably() {
        let mut d = AdaptDataset::new(vec![1], 4, 0);
        // push out of family order
        d.push(MapFamilyKind::ALL[3], &[3.0], 3);
        d.push(MapFamilyKind::ALL[0], &[0.0], 0);
        d.push(MapFamilyKind::ALL[3], &[3.5], 4);
        let t = d.to_training_set();
        assert_eq!(t.labels(), &[0, 3, 4]);
    }

    #[test]
    fn container_roundtrip() {
        let d = filled(4, 2, 100);
        let bytes = d.encode();
        assert_eq!(&bytes[..4], b"ICDS");
        assert_eq!(AdaptDataset::decode(&bytes).unwrap(), d);
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn shape_mismatch_panics() {
        let mut d = AdaptDataset::new(vec![2, 2], 4, 0);
        d.push(MapFamilyKind::ALL[0], &[1.0], 0);
    }
}
