//! Property tests for the versioned `ICDS` dataset container:
//!
//! * **round trip** — arbitrarily filled datasets (any family mix, any
//!   reservoir cap, any push order) decode back equal, and raw f32 bit
//!   patterns (NaNs and subnormals included) re-encode to identical
//!   bytes;
//! * **robustness** — any single-bit flip anywhere in the container
//!   (header and payload alike) and any truncation decode to a typed
//!   [`ContainerError`], classified by the field the damage landed in;
//!   random byte soup never panics;
//! * **versioning** — a container written under any other format
//!   version is refused with `UnsupportedVersion` carrying that
//!   version, and weight-artifact bytes are refused as `BadMagic`;
//! * **reservoir determinism** — the retained subset is a pure function
//!   of (seed, push sequence), including across an encode/decode
//!   boundary mid-stream, because the sampler state travels with the
//!   dataset.

use icoil_adapt::{
    encode_container, AdaptDataset, ContainerError, DATASET_MAGIC, DATASET_VERSION, NUM_FAMILIES,
    WEIGHTS_MAGIC, WEIGHTS_VERSION,
};
use icoil_world::MapFamilyKind;
use proptest::collection::vec;
use proptest::prelude::*;

const SHAPE: [usize; 2] = [2, 3];
const ELEMENTS: usize = 6;

/// One scripted push: (family selector, label selector, value seed).
type Push = (usize, usize, i32);

/// Replays a push script into a fresh dataset. Samples are finite and
/// distinct per script entry, so derived `PartialEq` compares exactly.
fn build(cap: usize, seed: u64, script: &[Push]) -> AdaptDataset {
    let mut d = AdaptDataset::new(SHAPE.to_vec(), cap, seed);
    for &(fam, label, v) in script {
        let family = MapFamilyKind::ALL[fam % NUM_FAMILIES];
        let base = f64::from(v) * 1e-3;
        let sample: Vec<f32> = (0..ELEMENTS).map(|i| (base + i as f64) as f32).collect();
        d.push(family, &sample, label % 21);
    }
    d
}

fn script_strategy() -> impl Strategy<Value = Vec<Push>> {
    vec(
        (0usize..NUM_FAMILIES, 0usize..21, -1_000_000i32..1_000_000),
        0..80,
    )
}

proptest! {
    #[test]
    fn filled_datasets_round_trip_equal(
        cap in 1usize..6,
        seed in 0u64..=u64::MAX,
        script in script_strategy(),
    ) {
        let d = build(cap, seed, &script);
        let decoded = AdaptDataset::decode(&d.encode()).expect("round trip");
        prop_assert_eq!(&decoded, &d);
        // metadata the trainer relies on survives too
        prop_assert_eq!(decoded.seen(), script.len() as u64);
        prop_assert_eq!(decoded.cap_per_family(), cap);
        prop_assert_eq!(decoded.sample_shape(), &SHAPE[..]);
    }

    #[test]
    fn raw_bit_patterns_re_encode_identically(
        bits in vec(0u64..=u64::MAX, 1..12),
    ) {
        // NaN payloads and subnormals break tree equality, so the
        // NaN-proof property is byte-level idempotence. Signaling NaNs
        // are excluded: the f32↔f64 hop inside the codec quiets them in
        // hardware, which is IEEE-sanctioned and irrelevant to real BEV
        // samples — quiet NaNs, infinities, -0.0 and subnormals all
        // survive bitwise and stay in the strategy.
        fn quiet(bits: u32) -> f32 {
            let nan = bits & 0x7F80_0000 == 0x7F80_0000 && bits & 0x007F_FFFF != 0;
            f32::from_bits(if nan { bits | 0x0040_0000 } else { bits })
        }
        let mut d = AdaptDataset::new(vec![2], 2, 7);
        for (i, b) in bits.iter().enumerate() {
            let sample = [quiet(*b as u32), quiet((*b >> 32) as u32)];
            d.push(MapFamilyKind::ALL[i % NUM_FAMILIES], &sample, i % 21);
        }
        let encoded = d.encode();
        let decoded = AdaptDataset::decode(&encoded).expect("round trip");
        prop_assert_eq!(decoded.encode(), encoded);
    }

    #[test]
    fn every_single_bit_flip_is_detected_and_classified(
        cap in 1usize..4,
        seed in 0u64..=u64::MAX,
        script in script_strategy(),
        pos_sel in 0usize..1_000_000,
        bit in 0usize..8,
    ) {
        let mut bytes = build(cap, seed, &script).encode();
        let pos = pos_sel % bytes.len();
        bytes[pos] ^= 1 << bit;
        let err = AdaptDataset::decode(&bytes).expect_err("a flipped container decoded");
        // the 24-byte header is magic / version / length / checksum;
        // each field's damage maps to its own typed error, and any
        // payload flip lands on the FNV-1a checksum (the per-byte step
        // is a bijection of the running hash, so no flip cancels out)
        match pos {
            0..=3 => prop_assert_eq!(err, ContainerError::BadMagic),
            4..=7 => prop_assert!(matches!(err, ContainerError::UnsupportedVersion(_))),
            8..=15 => prop_assert!(matches!(
                err,
                ContainerError::Truncated | ContainerError::Corrupted(_)
            )),
            _ => prop_assert!(matches!(err, ContainerError::Corrupted(_))),
        }
    }

    #[test]
    fn every_truncation_is_detected(
        cap in 1usize..4,
        seed in 0u64..=u64::MAX,
        script in script_strategy(),
        keep_sel in 0usize..1_000_000,
    ) {
        let bytes = build(cap, seed, &script).encode();
        let keep = keep_sel % bytes.len(); // strictly shorter than full
        let err = AdaptDataset::decode(&bytes[..keep]).expect_err("a truncated container decoded");
        prop_assert!(matches!(
            err,
            ContainerError::Truncated | ContainerError::BadMagic
        ));
    }

    #[test]
    fn foreign_versions_are_refused_with_the_typed_error(
        cap in 1usize..4,
        script in script_strategy(),
        raw_version in 0u32..=u32::MAX,
    ) {
        let version = if raw_version == DATASET_VERSION {
            raw_version ^ 1
        } else {
            raw_version
        };
        let d = build(cap, 3, &script);
        let bytes = encode_container(DATASET_MAGIC, version, &d);
        prop_assert_eq!(
            AdaptDataset::decode(&bytes),
            Err(ContainerError::UnsupportedVersion(version))
        );
        // and a weight artifact is a different kind entirely
        let weights = encode_container(WEIGHTS_MAGIC, WEIGHTS_VERSION, &d);
        prop_assert_eq!(
            AdaptDataset::decode(&weights),
            Err(ContainerError::BadMagic)
        );
    }

    #[test]
    fn reservoir_retention_is_a_pure_function_of_seed_and_stream(
        cap in 1usize..4,
        seed in 0u64..=u64::MAX,
        script in vec(
            (0usize..NUM_FAMILIES, 0usize..21, -1_000_000i32..1_000_000),
            1..120,
        ),
        split_sel in 0usize..1_000_000,
    ) {
        let straight = build(cap, seed, &script);
        prop_assert_eq!(&build(cap, seed, &script), &straight);

        // the sampler state travels with the container: pushing through
        // an encode/decode boundary retains the same subset
        let split = split_sel % script.len();
        let mut resumed = AdaptDataset::decode(&build(cap, seed, &script[..split]).encode())
            .expect("mid-stream round trip");
        for &(fam, label, v) in &script[split..] {
            let family = MapFamilyKind::ALL[fam % NUM_FAMILIES];
            let base = f64::from(v) * 1e-3;
            let sample: Vec<f32> = (0..ELEMENTS).map(|i| (base + i as f64) as f32).collect();
            resumed.push(family, &sample, label % 21);
        }
        prop_assert_eq!(&resumed, &straight);

        // caps hold no matter the stream
        for (count, offered) in straight.counts().iter().zip(
            MapFamilyKind::ALL
                .iter()
                .map(|k| script.iter().filter(|&&(f, _, _)| f % NUM_FAMILIES == k.index()).count()),
        ) {
            prop_assert!(*count <= cap);
            prop_assert!(*count <= offered);
            prop_assert_eq!(*count, offered.min(cap));
        }
    }

    #[test]
    fn random_byte_soup_never_panics(noise in vec(0usize..256, 0..96)) {
        let noise: Vec<u8> = noise.into_iter().map(|b| b as u8).collect();
        // typed error or (astronomically unlikely) a valid container —
        // the property is the absence of panics and of unchecked
        // allocations driven by hostile length fields
        let _ = AdaptDataset::decode(&noise);
    }
}
