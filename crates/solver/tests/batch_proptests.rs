//! Property-based tests for the block-diagonal batched QP solve: a
//! batch of same-pattern problems must be bit-identical to solving each
//! sequentially, and any structural mismatch must be rejected up front
//! (naming the first offending block) before any workspace is touched.

use icoil_solver::{
    solve_qp_batch, solve_qp_warm, Mat, QpBatchError, QpBatchJob, QpProblem, QpSettings,
    QpWorkspace,
};
use proptest::prelude::*;

/// One family member: a strictly convex diagonal QP over shared
/// curvature `pd` with per-member linear term and box bounds.
fn member(pd: &[f64], q: Vec<f64>, l: Vec<f64>, u: Vec<f64>) -> QpProblem {
    let n = pd.len();
    QpProblem::new(Mat::diag(pd), q, Mat::identity(n), l, u).expect("consistent box QP")
}

/// A same-pattern family: shared diagonal curvature, per-member `q` and
/// box bounds (lower always below upper).
fn arb_family() -> impl Strategy<Value = Vec<QpProblem>> {
    (2usize..6, 1usize..6).prop_flat_map(|(n, width)| {
        (
            prop::collection::vec(0.5f64..5.0, n),
            prop::collection::vec(
                (
                    prop::collection::vec(-3.0f64..3.0, n),
                    prop::collection::vec(-2.0f64..0.0, n),
                    prop::collection::vec(0.1f64..2.0, n),
                ),
                width,
            ),
        )
            .prop_map(|(pd, members)| {
                members
                    .into_iter()
                    .map(|(q, l, span)| {
                        let u: Vec<f64> = l.iter().zip(&span).map(|(lo, s)| lo + s).collect();
                        member(&pd, q, l, u)
                    })
                    .collect()
            })
    })
}

proptest! {
    #[test]
    fn batched_solve_is_bit_identical_to_sequential(family in arb_family()) {
        let settings = QpSettings::default();
        let mut seq_ws: Vec<QpWorkspace> =
            (0..family.len()).map(|_| QpWorkspace::new()).collect();
        let mut bat_ws: Vec<QpWorkspace> =
            (0..family.len()).map(|_| QpWorkspace::new()).collect();
        let sequential: Vec<_> = family
            .iter()
            .zip(seq_ws.iter_mut())
            .map(|(p, ws)| solve_qp_warm(p, &settings, None, ws))
            .collect();
        let jobs: Vec<QpBatchJob<'_>> = family
            .iter()
            .zip(bat_ws.iter_mut())
            .map(|(p, ws)| QpBatchJob {
                problem: p,
                warm: None,
                workspace: ws,
            })
            .collect();
        let batched = solve_qp_batch(jobs, &settings).expect("same-pattern family");
        prop_assert_eq!(sequential, batched);
    }

    #[test]
    fn structural_mismatch_is_rejected_naming_the_first_bad_block(
        family in arb_family().prop_filter("need a batchmate", |f| f.len() >= 2),
        bad in 1usize..6,
        kind in 0usize..3,
    ) {
        let bad = bad.min(family.len() - 1);
        let n = family[0].num_vars();
        let mut problems = family;
        // three ways to break structural compatibility: variable count,
        // constraint count, and constraint-matrix sparsity pattern
        problems[bad] = match kind {
            0 => {
                let pd = vec![1.0; n + 1];
                member(&pd, vec![0.0; n + 1], vec![-1.0; n + 1], vec![1.0; n + 1])
            }
            1 => {
                // one extra constraint row duplicating row 0
                let mut adata = Mat::identity(n).data().to_vec();
                let mut row0 = vec![0.0; n];
                row0[0] = 1.0;
                adata.extend_from_slice(&row0);
                QpProblem::new(
                    Mat::diag(&vec![1.0; n]),
                    vec![0.0; n],
                    Mat::from_vec(n + 1, n, adata),
                    vec![-1.0; n + 1],
                    vec![1.0; n + 1],
                )
                .expect("consistent QP")
            }
            _ => {
                // same dims, but A grows an off-diagonal entry
                let mut a = Mat::identity(n);
                *a.at_mut(0, n - 1) = 0.3;
                QpProblem::new(
                    Mat::diag(&vec![1.0; n]),
                    vec![0.0; n],
                    a,
                    vec![-1.0; n],
                    vec![1.0; n],
                )
                .expect("consistent QP")
            }
        };
        let settings = QpSettings::default();
        let mut workspaces: Vec<QpWorkspace> =
            (0..problems.len()).map(|_| QpWorkspace::new()).collect();
        let jobs: Vec<QpBatchJob<'_>> = problems
            .iter()
            .zip(workspaces.iter_mut())
            .map(|(p, ws)| QpBatchJob {
                problem: p,
                warm: None,
                workspace: ws,
            })
            .collect();
        let err = solve_qp_batch(jobs, &settings).expect_err("mismatch must reject");
        prop_assert_eq!(err, QpBatchError::PatternMismatch { block: bad });
        // rejection left every workspace untouched: each still serves a
        // fresh sequential solve of its own (valid) problem
        for (p, ws) in problems.iter().zip(workspaces.iter_mut()) {
            let sol = solve_qp_warm(p, &settings, None, ws);
            prop_assert!(sol.x.iter().all(|v| v.is_finite()));
        }
    }
}
