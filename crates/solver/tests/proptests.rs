//! Property-based tests for the solver crate: every solved QP must
//! satisfy feasibility and first-order (KKT) conditions.

use icoil_solver::{solve_qp, Mat, QpProblem, QpSettings, QpStatus};
use proptest::prelude::*;

/// Random strictly-convex diagonal QP with box constraints — the solution
/// is known in closed form: clamp(-q_i / p_i, l_i, u_i).
fn arb_box_qp() -> impl Strategy<Value = (QpProblem, Vec<f64>)> {
    (2usize..8).prop_flat_map(|n| {
        (
            prop::collection::vec(0.5f64..5.0, n),
            prop::collection::vec(-3.0f64..3.0, n),
            prop::collection::vec(-2.0f64..0.0, n),
            prop::collection::vec(0.0f64..2.0, n),
        )
            .prop_map(|(pd, q, l, u)| {
                let expected: Vec<f64> = pd
                    .iter()
                    .zip(&q)
                    .zip(l.iter().zip(&u))
                    .map(|((p, qi), (lo, hi))| (-qi / p).clamp(*lo, *hi))
                    .collect();
                let n = pd.len();
                let qp = QpProblem::new(Mat::diag(&pd), q, Mat::identity(n), l, u).unwrap();
                (qp, expected)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diagonal_box_qp_matches_closed_form((qp, expected) in arb_box_qp()) {
        let sol = solve_qp(&qp, &QpSettings::default());
        prop_assert_eq!(sol.status, QpStatus::Solved);
        for (got, want) in sol.x.iter().zip(&expected) {
            prop_assert!((got - want).abs() < 1e-3, "got {} want {}", got, want);
        }
    }

    #[test]
    fn solutions_are_feasible_and_stationary(
        n in 2usize..6,
        seed in 0u64..500,
    ) {
        // random PSD P = GᵀG + I, random A, sorted bounds
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let g = Mat::from_vec(n, n, (0..n * n).map(|_| next()).collect());
        let mut p = g.gram();
        p.add_scaled(&Mat::identity(n), 1.0);
        let q: Vec<f64> = (0..n).map(|_| next()).collect();
        let m = n + 1;
        let a = Mat::from_vec(m, n, (0..m * n).map(|_| next()).collect());
        // Bounds straddle a known point so the feasible set is non-empty
        // (independent random slabs can otherwise have empty intersection).
        let x0: Vec<f64> = (0..n).map(|_| next()).collect();
        let ax0 = a.mul_vec(&x0);
        let (l, u): (Vec<f64>, Vec<f64>) = ax0
            .iter()
            .map(|&c| {
                let below = 0.1 + next().abs();
                let above = 0.1 + next().abs();
                (c - below, c + above)
            })
            .unzip();
        let qp = QpProblem::new(p, q, a, l, u).unwrap();
        let sol = solve_qp(&qp, &QpSettings::default());
        // feasibility
        prop_assert!(qp.max_violation(&sol.x) < 1e-3, "violation {}", qp.max_violation(&sol.x));
        // stationarity: Px + q + Aᵀy ≈ 0
        prop_assert!(sol.dual_residual < 1e-3, "dual residual {}", sol.dual_residual);
    }

    #[test]
    fn objective_no_worse_than_origin_when_origin_feasible(
        (qp, _) in arb_box_qp(),
    ) {
        // origin is feasible for these box QPs (l ≤ 0 ≤ u)
        let sol = solve_qp(&qp, &QpSettings::default());
        let zero = vec![0.0; qp.num_vars()];
        prop_assert!(qp.objective(&sol.x) <= qp.objective(&zero) + 1e-6);
    }
}
