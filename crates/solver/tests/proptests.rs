//! Property-based tests for the solver crate: every solved QP must
//! satisfy feasibility and first-order (KKT) conditions, and the sparse
//! LDLᵀ factorization must agree with the dense Cholesky reference on
//! whatever sparsity pattern it is handed.

use icoil_solver::{
    solve_qp, Mat, QpProblem, QpSettings, QpStatus, SparseLdl, SparseMatrix, SymbolicLdl,
    TripletBuilder,
};
use proptest::prelude::*;

/// Random strictly-convex diagonal QP with box constraints — the solution
/// is known in closed form: clamp(-q_i / p_i, l_i, u_i).
fn arb_box_qp() -> impl Strategy<Value = (QpProblem, Vec<f64>)> {
    (2usize..8).prop_flat_map(|n| {
        (
            prop::collection::vec(0.5f64..5.0, n),
            prop::collection::vec(-3.0f64..3.0, n),
            prop::collection::vec(-2.0f64..0.0, n),
            prop::collection::vec(0.0f64..2.0, n),
        )
            .prop_map(|(pd, q, l, u)| {
                let expected: Vec<f64> = pd
                    .iter()
                    .zip(&q)
                    .zip(l.iter().zip(&u))
                    .map(|((p, qi), (lo, hi))| (-qi / p).clamp(*lo, *hi))
                    .collect();
                let n = pd.len();
                let qp = QpProblem::new(Mat::diag(&pd), q, Mat::identity(n), l, u).unwrap();
                (qp, expected)
            })
    })
}

/// Random symmetric positive definite matrix with a random sparsity
/// pattern: a handful of off-diagonal entries plus a diagonal made
/// dominant enough to guarantee positive definiteness.
fn arb_sparse_spd() -> impl Strategy<Value = SparseMatrix> {
    (3usize..12).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..3 * n),
            prop::collection::vec(0.1f64..2.0, n),
        )
            .prop_map(|(n, offdiag, diag)| {
                let mut b = TripletBuilder::new(n, n);
                let mut row_sums = vec![0.0; n];
                for (i, j, v) in offdiag {
                    if i == j {
                        continue;
                    }
                    // symmetrize so the matrix stays factorizable as LDLᵀ
                    b.push(i, j, v);
                    b.push(j, i, v);
                    row_sums[i] += v.abs();
                    row_sums[j] += v.abs();
                }
                for (i, d) in diag.iter().enumerate() {
                    // strict diagonal dominance ⇒ positive definite
                    b.push(i, i, row_sums[i] + d);
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diagonal_box_qp_matches_closed_form((qp, expected) in arb_box_qp()) {
        let sol = solve_qp(&qp, &QpSettings::default());
        prop_assert_eq!(sol.status, QpStatus::Solved);
        for (got, want) in sol.x.iter().zip(&expected) {
            prop_assert!((got - want).abs() < 1e-3, "got {} want {}", got, want);
        }
    }

    #[test]
    fn solutions_are_feasible_and_stationary(
        n in 2usize..6,
        seed in 0u64..500,
    ) {
        // random PSD P = GᵀG + I, random A, sorted bounds
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let g = Mat::from_vec(n, n, (0..n * n).map(|_| next()).collect());
        let mut p = g.gram();
        p.add_scaled(&Mat::identity(n), 1.0);
        let q: Vec<f64> = (0..n).map(|_| next()).collect();
        let m = n + 1;
        let a = Mat::from_vec(m, n, (0..m * n).map(|_| next()).collect());
        // Bounds straddle a known point so the feasible set is non-empty
        // (independent random slabs can otherwise have empty intersection).
        let x0: Vec<f64> = (0..n).map(|_| next()).collect();
        let ax0 = a.mul_vec(&x0);
        let (l, u): (Vec<f64>, Vec<f64>) = ax0
            .iter()
            .map(|&c| {
                let below = 0.1 + next().abs();
                let above = 0.1 + next().abs();
                (c - below, c + above)
            })
            .unzip();
        let qp = QpProblem::new(p, q, a, l, u).unwrap();
        let sol = solve_qp(&qp, &QpSettings::default());
        // feasibility
        prop_assert!(qp.max_violation(&sol.x) < 1e-3, "violation {}", qp.max_violation(&sol.x));
        // stationarity: Px + q + Aᵀy ≈ 0
        prop_assert!(sol.dual_residual < 1e-3, "dual residual {}", sol.dual_residual);
    }

    #[test]
    fn objective_no_worse_than_origin_when_origin_feasible(
        (qp, _) in arb_box_qp(),
    ) {
        // origin is feasible for these box QPs (l ≤ 0 ≤ u)
        let sol = solve_qp(&qp, &QpSettings::default());
        let zero = vec![0.0; qp.num_vars()];
        prop_assert!(qp.objective(&sol.x) <= qp.objective(&zero) + 1e-6);
    }

    #[test]
    fn sparse_ldl_solves_match_dense_cholesky(
        k in arb_sparse_spd(),
        rhs_seed in 0u64..1000,
    ) {
        let n = k.rows();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                let s = rhs_seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect();
        let sym = SymbolicLdl::analyze(&k);
        let mut sparse = SparseLdl::factor(sym, &k).expect("SPD factors");
        prop_assert!(sparse.is_positive_definite());
        let xs = sparse.solve(&b);
        let dense = k.to_dense().cholesky().expect("SPD factors densely");
        let xd = dense.solve(&b);
        for (a, d) in xs.iter().zip(&xd) {
            prop_assert!((a - d).abs() < 1e-8, "sparse {a} vs dense {d}");
        }
        // permutation round-trip: applying K to the solution recovers b
        let kb = k.mul_vec(&xs);
        for (got, want) in kb.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-7, "K·x = {got} vs b = {want}");
        }
    }

    #[test]
    fn sparse_ldl_factors_quasidefinite_kkt_forms(
        k in arb_sparse_spd(),
        m_extra in 1usize..5,
    ) {
        // Assemble the quasidefinite saddle form [[K, Bᵀ], [B, −I]] the
        // OSQP KKT family produces, with a random coupling block B.
        let n = k.rows();
        let total = n + m_extra;
        let mut b = TripletBuilder::new(total, total);
        for j in 0..n {
            for idx in k.col_ptr()[j]..k.col_ptr()[j + 1] {
                b.push(k.row_ind()[idx], j, k.values()[idx]);
            }
        }
        for r in 0..m_extra {
            let i = n + r;
            let j = r % n;
            b.push(i, j, 0.5);
            b.push(j, i, 0.5);
            b.push(i, i, -1.0);
        }
        let kkt = b.build();
        let sym = SymbolicLdl::analyze(&kkt);
        let mut f = SparseLdl::factor(sym, &kkt).expect("quasidefinite factors");
        prop_assert!(!f.is_positive_definite());
        let rhs: Vec<f64> = (0..total).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = f.solve(&rhs);
        let back = kkt.mul_vec(&x);
        for (got, want) in back.iter().zip(&rhs) {
            prop_assert!((got - want).abs() < 1e-7, "K·x = {got} vs b = {want}");
        }
    }

    #[test]
    fn symbolic_reuse_is_bitwise_identical_to_fresh_factorization(
        k in arb_sparse_spd(),
        scale in 0.5f64..2.0,
    ) {
        // refactor with rescaled values over the cached symbolic analysis
        let sym = SymbolicLdl::analyze(&k);
        let mut reused = SparseLdl::factor(sym.clone(), &k).expect("SPD factors");
        let mut scaled = k.clone();
        for v in scaled.values_mut() {
            *v *= scale;
        }
        reused.refactor(&scaled).expect("same pattern refactors");
        let fresh = SparseLdl::factor(SymbolicLdl::analyze(&scaled), &scaled)
            .expect("scaled SPD factors");
        prop_assert_eq!(reused.diag().to_vec(), fresh.diag().to_vec());
        let rhs: Vec<f64> = (0..k.rows()).map(|i| (i as f64 * 0.71).cos()).collect();
        let mut fresh = fresh;
        prop_assert_eq!(reused.solve(&rhs), fresh.solve(&rhs));
    }
}
