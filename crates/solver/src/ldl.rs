//! Sparse LDLᵀ factorization with a cached symbolic phase.
//!
//! The ADMM inner loop factors the same KKT matrix pattern over and over:
//! every ρ-adaptation, every SCP pass, and every warm/cold re-solve of an
//! MPC frame changes only the *values* of `K = P + σI + ρAᵀA`, never its
//! block-banded structure. The expensive, pattern-only work — the
//! fill-reducing permutation, the elimination tree, and the column counts
//! of the factor `L` — is therefore split into [`SymbolicLdl`] and
//! computed **once per sparsity pattern**; [`SparseLdl::refactor`] then
//! runs only the `O(|L|)` numeric sweep, and
//! [`solve_into`](SparseLdl::solve_into) does allocation-free
//! forward/backward substitution.
//!
//! The numeric phase is the up-looking algorithm of QDLDL (the solver
//! inside OSQP): row `k` of `L` is obtained from a sparse triangular
//! solve whose nonzero pattern is read off the elimination tree, so the
//! factorization touches only structural entries. `D` is diagonal (not
//! necessarily positive): symmetric *quasidefinite* matrices factor
//! without pivoting, which is what makes the scheme safe for KKT systems.

use crate::sparse::SparseMatrix;
use std::sync::Arc;

/// Error from the numeric factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdlError {
    /// Column at which a zero pivot was met.
    pub column: usize,
}

impl std::fmt::Display for LdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zero pivot in LDLᵀ at column {}", self.column)
    }
}

impl std::error::Error for LdlError {}

/// Pattern-only analysis of a symmetric sparse matrix, reusable across
/// any number of numeric factorizations with the same structure.
///
/// Holds the fill-reducing permutation (exact minimum degree — cheap and
/// deterministic at MPC sizes), the permuted upper-triangular pattern
/// with a scatter map from the original matrix, the elimination tree,
/// and the column pointers of `L`.
#[derive(Debug)]
pub struct SymbolicLdl {
    n: usize,
    /// `perm[new] = old`: position `new` of the permuted matrix takes
    /// row/column `old` of the original.
    perm: Vec<usize>,
    /// `iperm[old] = new` (inverse of `perm`).
    iperm: Vec<usize>,
    /// Permuted upper-triangular pattern (CSC, rows sorted, diagonal
    /// included).
    up_col_ptr: Vec<usize>,
    up_row_ind: Vec<usize>,
    /// For each stored entry of the permuted upper pattern, the value
    /// index in the *original* full CSC matrix it is copied from.
    up_src: Vec<usize>,
    /// Elimination-tree parent per column (`usize::MAX` = root).
    etree: Vec<usize>,
    /// Column pointers of `L` (strictly-below-diagonal entries).
    l_col_ptr: Vec<usize>,
    /// The original full pattern this analysis was computed for, kept so
    /// caches can validate reuse ([`SymbolicLdl::matches`]).
    src_col_ptr: Vec<usize>,
    src_row_ind: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl SymbolicLdl {
    /// Analyzes the pattern of a square symmetric matrix stored as full
    /// CSC (both triangles). Values are ignored; explicit zeros count as
    /// structural entries.
    ///
    /// # Panics
    ///
    /// Panics when `k` is not square.
    pub fn analyze(k: &SparseMatrix) -> Arc<SymbolicLdl> {
        let n = k.cols();
        assert_eq!(k.rows(), n, "LDLᵀ needs a square matrix");
        let perm = min_degree_order(k);
        let mut iperm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old] = new;
        }

        // permuted upper-triangular pattern: entry (old_r, old_c) lands at
        // (iperm[old_r], iperm[old_c]); keep new_r <= new_c.
        let col_ptr = k.col_ptr();
        let row_ind = k.row_ind();
        let mut entries: Vec<(usize, usize, usize)> = Vec::new(); // (new_c, new_r, src_idx)
        for old_c in 0..n {
            let (lo, hi) = (col_ptr[old_c], col_ptr[old_c + 1]);
            for (idx, &old_r) in (lo..hi).zip(&row_ind[lo..hi]) {
                let (new_r, new_c) = (iperm[old_r], iperm[old_c]);
                if new_r <= new_c {
                    entries.push((new_c, new_r, idx));
                }
            }
        }
        entries.sort_unstable();
        let mut up_col_ptr = vec![0usize; n + 1];
        let mut up_row_ind = Vec::with_capacity(entries.len());
        let mut up_src = Vec::with_capacity(entries.len());
        for (c, r, src) in entries {
            up_row_ind.push(r);
            up_src.push(src);
            up_col_ptr[c + 1] = up_row_ind.len();
        }
        for c in 0..n {
            if up_col_ptr[c + 1] < up_col_ptr[c] {
                up_col_ptr[c + 1] = up_col_ptr[c];
            }
        }

        // elimination tree + column counts of L (QDLDL_etree): walking
        // each above-diagonal entry up the partially-built tree marks
        // exactly the columns of L that gain an entry in row c.
        let mut etree = vec![NONE; n];
        let mut l_nz = vec![0usize; n];
        let mut work = vec![NONE; n];
        for c in 0..n {
            work[c] = c;
            for &row in &up_row_ind[up_col_ptr[c]..up_col_ptr[c + 1]] {
                let mut i = row;
                if i == c {
                    continue;
                }
                while work[i] != c {
                    if etree[i] == NONE {
                        etree[i] = c;
                    }
                    l_nz[i] += 1;
                    work[i] = c;
                    i = etree[i];
                }
            }
        }
        let mut l_col_ptr = vec![0usize; n + 1];
        for i in 0..n {
            l_col_ptr[i + 1] = l_col_ptr[i] + l_nz[i];
        }

        Arc::new(SymbolicLdl {
            n,
            perm,
            iperm,
            up_col_ptr,
            up_row_ind,
            up_src,
            etree,
            l_col_ptr,
            src_col_ptr: col_ptr.to_vec(),
            src_row_ind: row_ind.to_vec(),
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of strictly-below-diagonal entries of `L` (the fill).
    pub fn l_nnz(&self) -> usize {
        self.l_col_ptr[self.n]
    }

    /// The fill-reducing permutation (`perm[new] = old`).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The inverse permutation (`iperm[old] = new`).
    pub fn iperm(&self) -> &[usize] {
        &self.iperm
    }

    /// Whether this analysis applies to `k` (identical full pattern).
    pub fn matches(&self, k: &SparseMatrix) -> bool {
        k.rows() == self.n
            && k.cols() == self.n
            && k.col_ptr() == self.src_col_ptr.as_slice()
            && k.row_ind() == self.src_row_ind.as_slice()
    }
}

/// Exact minimum-degree ordering on the adjacency graph of a symmetric
/// pattern: repeatedly eliminate the minimum-degree node (ties broken by
/// index, keeping the order deterministic) and connect its neighbours
/// into a clique. Quadratic in the worst case, which is irrelevant at
/// MPC sizes (n ≲ a few hundred) and avoids the bookkeeping subtleties
/// of approximate variants.
fn min_degree_order(k: &SparseMatrix) -> Vec<usize> {
    let n = k.cols();
    let col_ptr = k.col_ptr();
    let row_ind = k.row_ind();
    // adjacency sets as sorted vecs, diagonal excluded
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..n {
        for &r in &row_ind[col_ptr[c]..col_ptr[c + 1]] {
            if r != c {
                adj[c].push(r);
            }
        }
    }
    for a in adj.iter_mut() {
        a.sort_unstable();
        a.dedup();
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&i| !eliminated[i])
            .min_by_key(|&i| (adj[i].len(), i))
            .expect("an uneliminated node remains");
        eliminated[v] = true;
        order.push(v);
        let neighbours: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        // neighbours of the pivot become a clique
        for &u in &neighbours {
            let au = &mut adj[u];
            au.retain(|&w| w != v && !eliminated[w]);
            for &w in &neighbours {
                if w != u && !au.contains(&w) {
                    au.push(w);
                }
            }
        }
    }
    order
}

/// Numeric-phase scratch shared by [`SparseLdl`] and [`BatchLdl`]:
/// refactors and solves allocate nothing once the scratch exists.
#[derive(Debug, Clone)]
struct LdlScratch {
    y_vals: Vec<f64>,
    y_mark: Vec<usize>,
    y_idx: Vec<usize>,
    elim: Vec<usize>,
    l_next: Vec<usize>,
    /// Solve scratch (permuted right-hand side).
    rhs: Vec<f64>,
}

impl LdlScratch {
    fn new(n: usize) -> Self {
        LdlScratch {
            y_vals: vec![0.0; n],
            y_mark: vec![NONE; n],
            y_idx: vec![0; n],
            elim: vec![0; n],
            l_next: vec![0; n],
            rhs: vec![0.0; n],
        }
    }
}

/// The up-looking numeric factorization, shared verbatim by
/// [`SparseLdl::refactor`] and [`BatchLdl::refactor_block`] so a batched
/// block factors bit-identically to a standalone one. The inner column
/// scatter runs through [`crate::simd`] (bitwise-preserving kernels).
fn refactor_core(
    sym: &SymbolicLdl,
    kv: &[f64],
    l_row_ind: &mut [usize],
    l_values: &mut [f64],
    d: &mut [f64],
    dinv: &mut [f64],
    s: &mut LdlScratch,
) -> Result<(), LdlError> {
    let n = sym.n;
    s.l_next.copy_from_slice(&sym.l_col_ptr[..n]);
    // up-looking factorization, one (permuted) row k at a time
    for row in 0..n {
        d[row] = 0.0;
        s.y_mark[row] = row; // paths stop before the current row
        let mut nnz_y = 0usize;
        for idx in sym.up_col_ptr[row]..sym.up_col_ptr[row + 1] {
            let i = sym.up_row_ind[idx];
            let v = kv[sym.up_src[idx]];
            if i == row {
                d[row] = v;
                continue;
            }
            s.y_vals[i] = v;
            // walk the elimination tree, recording the new part of
            // the path; reversing it onto the stack yields a
            // topological (ascending-dependency) processing order
            let mut next = i;
            let mut nnz_e = 0usize;
            while s.y_mark[next] != row {
                s.y_mark[next] = row;
                s.elim[nnz_e] = next;
                nnz_e += 1;
                next = sym.etree[next];
                debug_assert!(next != NONE, "etree path must reach the current row");
            }
            while nnz_e > 0 {
                nnz_e -= 1;
                s.y_idx[nnz_y] = s.elim[nnz_e];
                nnz_y += 1;
            }
        }
        // sparse triangular solve against the already-computed columns
        for i in (0..nnz_y).rev() {
            let c = s.y_idx[i];
            let yc = s.y_vals[c];
            s.y_vals[c] = 0.0;
            // unmark (QDLDL resets its markers here too): a mark equal to
            // `row` must not survive into the next factorization over this
            // scratch, or a column whose path is touched by exactly one
            // row would be skipped on every refactor after the first
            s.y_mark[c] = NONE;
            let (lo, hi) = (sym.l_col_ptr[c], s.l_next[c]);
            crate::simd::scatter_sub(&mut s.y_vals, &l_row_ind[lo..hi], &l_values[lo..hi], yc);
            let slot = s.l_next[c];
            s.l_next[c] += 1;
            let lkc = yc * dinv[c];
            l_row_ind[slot] = row;
            l_values[slot] = lkc;
            d[row] -= yc * lkc;
        }
        if d[row] == 0.0 {
            return Err(LdlError { column: sym.perm[row] });
        }
        dinv[row] = 1.0 / d[row];
    }
    Ok(())
}

/// The permuted forward/diagonal/backward solve, shared by
/// [`SparseLdl::solve_into`] and [`BatchLdl::solve_block_into`]. Sweeps
/// run through the bitwise-preserving [`crate::simd`] kernels.
fn solve_core(
    sym: &SymbolicLdl,
    l_row_ind: &[usize],
    l_values: &[f64],
    dinv: &[f64],
    b: &[f64],
    out: &mut [f64],
    w: &mut [f64],
) {
    let n = sym.n;
    assert_eq!(b.len(), n, "dimension mismatch");
    assert_eq!(out.len(), n, "output dimension mismatch");
    for (new, &old) in sym.perm.iter().enumerate() {
        w[new] = b[old];
    }
    // forward: L w = w (unit diagonal); column rows are strictly below
    // the diagonal, so the scatter never aliases w[j]
    for j in 0..n {
        let wj = w[j];
        if wj != 0.0 {
            let (lo, hi) = (sym.l_col_ptr[j], sym.l_col_ptr[j + 1]);
            crate::simd::scatter_sub(w, &l_row_ind[lo..hi], &l_values[lo..hi], wj);
        }
    }
    // diagonal
    crate::simd::mul_in_place(w, dinv);
    // backward: Lᵀ x = w
    for j in (0..n).rev() {
        let (lo, hi) = (sym.l_col_ptr[j], sym.l_col_ptr[j + 1]);
        let acc = crate::simd::gather_sub_reduce(w[j], &l_row_ind[lo..hi], &l_values[lo..hi], w);
        w[j] = acc;
    }
    for (new, &old) in sym.perm.iter().enumerate() {
        out[old] = w[new];
    }
}

/// A numeric LDLᵀ factor bound to a shared [`SymbolicLdl`] analysis.
///
/// `L` is unit lower triangular (unit diagonal implicit) in CSC, `D`
/// diagonal. [`refactor`](SparseLdl::refactor) overwrites the numeric
/// data in place for new matrix values with the same pattern;
/// [`solve_into`](SparseLdl::solve_into) performs the permuted
/// forward/diagonal/backward sweeps without allocating.
#[derive(Debug, Clone)]
pub struct SparseLdl {
    sym: Arc<SymbolicLdl>,
    l_row_ind: Vec<usize>,
    l_values: Vec<f64>,
    d: Vec<f64>,
    dinv: Vec<f64>,
    scratch: LdlScratch,
}

impl SparseLdl {
    /// Factors `k` using a previously computed symbolic analysis.
    ///
    /// # Errors
    ///
    /// Returns [`LdlError`] on a zero pivot (structurally or numerically
    /// singular matrix).
    ///
    /// # Panics
    ///
    /// Panics when `sym` was analyzed for a different pattern.
    pub fn factor(sym: Arc<SymbolicLdl>, k: &SparseMatrix) -> Result<SparseLdl, LdlError> {
        let n = sym.n;
        let l_nnz = sym.l_nnz();
        let mut f = SparseLdl {
            l_row_ind: vec![0; l_nnz],
            l_values: vec![0.0; l_nnz],
            d: vec![0.0; n],
            dinv: vec![0.0; n],
            scratch: LdlScratch::new(n),
            sym,
        };
        f.refactor(k)?;
        Ok(f)
    }

    /// The symbolic analysis this factor is bound to.
    pub fn symbolic(&self) -> &Arc<SymbolicLdl> {
        &self.sym
    }

    /// The diagonal `D` of the factorization (permuted order).
    pub fn diag(&self) -> &[f64] {
        &self.d
    }

    /// Whether every pivot is strictly positive (the matrix is positive
    /// definite, not merely quasidefinite).
    pub fn is_positive_definite(&self) -> bool {
        self.d.iter().all(|&v| v > 0.0)
    }

    /// Recomputes the numeric factor for new values of the same pattern.
    /// Pattern-only state (permutation, elimination tree, `L` structure)
    /// is reused verbatim; nothing is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`LdlError`] on a zero pivot; the factor contents are then
    /// unspecified and must not be used for solves.
    ///
    /// # Panics
    ///
    /// Panics when `k`'s pattern differs from the analyzed one.
    pub fn refactor(&mut self, k: &SparseMatrix) -> Result<(), LdlError> {
        assert!(self.sym.matches(k), "matrix pattern differs from the symbolic analysis");
        refactor_core(
            &self.sym,
            k.values(),
            &mut self.l_row_ind,
            &mut self.l_values,
            &mut self.d,
            &mut self.dinv,
            &mut self.scratch,
        )
    }

    /// Solves `K·x = b`, allocating the result vector.
    ///
    /// # Panics
    ///
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve(&mut self, b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.sym.n];
        self.solve_into(b, &mut out);
        out
    }

    /// Allocation-free solve `out = K⁻¹·b` via the permuted sweeps
    /// `L·w = Pb`, `w ← D⁻¹w`, `Lᵀ·(Px) = w`.
    ///
    /// (`&mut self` only for the internal permuted-RHS scratch; the
    /// factor itself is not modified.)
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_into(&mut self, b: &[f64], out: &mut [f64]) {
        solve_core(
            &self.sym,
            &self.l_row_ind,
            &self.l_values,
            &self.dinv,
            b,
            out,
            &mut self.scratch.rhs,
        );
    }
}

/// `K` same-pattern LDLᵀ factors sharing **one** symbolic analysis,
/// **one** `L` row-index array (the pattern fully determines it) and
/// contiguous per-block numeric storage — the factorization backend of
/// the batched block-diagonal QP solve.
///
/// Conceptually this is the LDLᵀ of the `K·n × K·n` block-diagonal
/// matrix `diag(K₁, …, K_K)`: the blocks never couple, so the factor is
/// `diag(L₁, …, L_K)` with each `Lᵢ` bit-identical to a standalone
/// [`SparseLdl`] of `Kᵢ` (both run [`refactor_core`] over the same
/// analysis). Memory layout: `l_values` is `K × l_nnz` with block `b` at
/// `[b·l_nnz, (b+1)·l_nnz)`, `d`/`dinv` are `K × n` likewise — one
/// numeric refactor pass walks the blocks in order over contiguous
/// memory instead of `K` scattered allocations.
#[derive(Debug, Clone)]
pub struct BatchLdl {
    sym: Arc<SymbolicLdl>,
    blocks: usize,
    l_row_ind: Vec<usize>,
    l_values: Vec<f64>,
    d: Vec<f64>,
    dinv: Vec<f64>,
    scratch: LdlScratch,
}

impl BatchLdl {
    /// Storage for `blocks` same-pattern factors over `sym`. Nothing is
    /// factored yet; call [`BatchLdl::refactor_block`] (or
    /// [`BatchLdl::refactor_all`]) before solving.
    ///
    /// # Panics
    ///
    /// Panics for zero blocks.
    pub fn new(sym: Arc<SymbolicLdl>, blocks: usize) -> Self {
        assert!(blocks > 0, "BatchLdl needs at least one block");
        let n = sym.n;
        let l_nnz = sym.l_nnz();
        BatchLdl {
            blocks,
            l_row_ind: vec![0; l_nnz],
            l_values: vec![0.0; blocks * l_nnz],
            d: vec![0.0; blocks * n],
            dinv: vec![0.0; blocks * n],
            scratch: LdlScratch::new(n),
            sym,
        }
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The shared symbolic analysis.
    pub fn symbolic(&self) -> &Arc<SymbolicLdl> {
        &self.sym
    }

    /// Refactors block `b` for new values `k` — bit-identical to
    /// [`SparseLdl::refactor`] on the same input (same [`refactor_core`],
    /// different storage offset). Blocks refactor independently, which
    /// the batched ADMM needs: per-block ρ-adaptations fire at different
    /// iterations.
    ///
    /// # Errors
    ///
    /// Returns [`LdlError`] on a zero pivot; that block's contents are
    /// then unspecified.
    ///
    /// # Panics
    ///
    /// Panics when `b` is out of range or `k`'s pattern differs from the
    /// shared analysis.
    pub fn refactor_block(&mut self, b: usize, k: &SparseMatrix) -> Result<(), LdlError> {
        assert!(b < self.blocks, "block index out of range");
        assert!(self.sym.matches(k), "matrix pattern differs from the symbolic analysis");
        let n = self.sym.n;
        let l_nnz = self.sym.l_nnz();
        refactor_core(
            &self.sym,
            k.values(),
            &mut self.l_row_ind,
            &mut self.l_values[b * l_nnz..(b + 1) * l_nnz],
            &mut self.d[b * n..(b + 1) * n],
            &mut self.dinv[b * n..(b + 1) * n],
            &mut self.scratch,
        )
    }

    /// One numeric pass over all blocks in storage order: the batched
    /// equivalent of `K` separate [`SparseLdl::refactor`] calls.
    ///
    /// # Errors
    ///
    /// Stops at the first failing block, returning its index and error.
    ///
    /// # Panics
    ///
    /// Panics when `kkts.len()` differs from the block count or a
    /// pattern mismatches.
    pub fn refactor_all(&mut self, kkts: &[&SparseMatrix]) -> Result<(), (usize, LdlError)> {
        assert_eq!(kkts.len(), self.blocks, "one KKT matrix per block");
        for (b, k) in kkts.iter().enumerate() {
            self.refactor_block(b, k).map_err(|e| (b, e))?;
        }
        Ok(())
    }

    /// Whether block `b`'s pivots are all strictly positive.
    ///
    /// # Panics
    ///
    /// Panics when `b` is out of range.
    pub fn is_positive_definite(&self, b: usize) -> bool {
        assert!(b < self.blocks, "block index out of range");
        let n = self.sym.n;
        self.d[b * n..(b + 1) * n].iter().all(|&v| v > 0.0)
    }

    /// Block `b`'s diagonal `D` (permuted order).
    ///
    /// # Panics
    ///
    /// Panics when `b` is out of range.
    pub fn diag_block(&self, b: usize) -> &[f64] {
        assert!(b < self.blocks, "block index out of range");
        let n = self.sym.n;
        &self.d[b * n..(b + 1) * n]
    }

    /// Allocation-free solve with block `b`'s factor — bit-identical to
    /// [`SparseLdl::solve_into`] on the standalone factor.
    ///
    /// # Panics
    ///
    /// Panics when `b` is out of range or on dimension mismatch.
    pub fn solve_block_into(&mut self, b: usize, rhs: &[f64], out: &mut [f64]) {
        assert!(b < self.blocks, "block index out of range");
        let n = self.sym.n;
        let l_nnz = self.sym.l_nnz();
        solve_core(
            &self.sym,
            &self.l_row_ind,
            &self.l_values[b * l_nnz..(b + 1) * l_nnz],
            &self.dinv[b * n..(b + 1) * n],
            rhs,
            out,
            &mut self.scratch.rhs,
        );
    }

    /// Copies block `b` out into a standalone [`SparseLdl`] (sharing the
    /// symbolic `Arc`), so per-problem factor caches can keep a block's
    /// factor after the batch is dropped.
    ///
    /// # Panics
    ///
    /// Panics when `b` is out of range.
    pub fn extract_block(&self, b: usize) -> SparseLdl {
        assert!(b < self.blocks, "block index out of range");
        let n = self.sym.n;
        let l_nnz = self.sym.l_nnz();
        SparseLdl {
            sym: self.sym.clone(),
            l_row_ind: self.l_row_ind.clone(),
            l_values: self.l_values[b * l_nnz..(b + 1) * l_nnz].to_vec(),
            d: self.d[b * n..(b + 1) * n].to_vec(),
            dinv: self.dinv[b * n..(b + 1) * n].to_vec(),
            scratch: LdlScratch::new(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    }

    /// Random sparse SPD matrix `AᵀA + αI` with a banded-ish pattern.
    fn random_spd(n: usize, seed: u64) -> SparseMatrix {
        let mut s = seed;
        let mut b = TripletBuilder::new(n, n);
        for c in 0..n {
            for _ in 0..3 {
                let r = ((lcg(&mut s) + 0.5) * n as f64) as usize % n;
                b.push(r, c, lcg(&mut s));
            }
        }
        let a = b.build();
        let mut g = a.gram();
        // add αI on the full pattern (gram may miss diagonal entries for
        // empty columns, so go through a fresh builder)
        let mut out = TripletBuilder::new(n, n);
        let (cp, ri, vs) = (g.col_ptr().to_vec(), g.row_ind().to_vec(), g.values().to_vec());
        for c in 0..n {
            for k in cp[c]..cp[c + 1] {
                out.push(ri[k], c, vs[k]);
            }
            out.push(c, c, 1.0 + lcg(&mut s).abs());
        }
        g = out.build();
        g
    }

    #[test]
    fn factor_solve_matches_dense_cholesky() {
        for seed in 0..6u64 {
            let n = 10 + (seed as usize % 4) * 7;
            let k = random_spd(n, seed * 31 + 1);
            let sym = SymbolicLdl::analyze(&k);
            let mut f = SparseLdl::factor(sym, &k).expect("SPD factors");
            assert!(f.is_positive_definite());
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let x = f.solve(&b);
            let dense = k.to_dense().cholesky().expect("dense SPD");
            let xd = dense.solve(&b);
            for (a, c) in x.iter().zip(&xd) {
                assert!((a - c).abs() < 1e-8, "{a} vs {c}");
            }
        }
    }

    #[test]
    fn quasidefinite_factors_without_pivoting() {
        // K = [[P, Aᵀ], [A, -I]] with P SPD — symmetric quasidefinite:
        // LDLᵀ exists for any symmetric permutation, D has mixed signs.
        let mut b = TripletBuilder::new(5, 5);
        b.push(0, 0, 4.0);
        b.push(1, 1, 3.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        // A block (rows 2..5 of cols 0..2 and symmetric)
        let a_entries = [(2, 0, 1.0), (2, 1, 2.0), (3, 0, -1.0), (4, 1, 0.5)];
        for &(r, c, v) in &a_entries {
            b.push(r, c, v);
            b.push(c, r, v);
        }
        for i in 2..5 {
            b.push(i, i, -1.0);
        }
        let k = b.build();
        let sym = SymbolicLdl::analyze(&k);
        let mut f = SparseLdl::factor(sym, &k).expect("quasidefinite factors");
        assert!(!f.is_positive_definite());
        assert!(f.diag().iter().any(|&d| d < 0.0));
        let rhs = [1.0, -2.0, 0.5, 3.0, -1.0];
        let x = f.solve(&rhs);
        let back = k.to_dense().mul_vec(&x);
        for (u, v) in back.iter().zip(&rhs) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn refactor_reuses_symbolic_and_matches_fresh() {
        let k1 = random_spd(20, 77);
        let sym = SymbolicLdl::analyze(&k1);
        let mut f = SparseLdl::factor(sym.clone(), &k1).unwrap();
        // scale the values (same pattern), refactor in place
        let mut k2 = k1.clone();
        for v in k2.values_mut() {
            *v *= 3.0;
        }
        f.refactor(&k2).unwrap();
        let mut fresh = SparseLdl::factor(SymbolicLdl::analyze(&k2), &k2).unwrap();
        // bitwise-identical numeric data: the symbolic phase fully
        // determines the computation order
        assert_eq!(f.l_values, fresh.l_values);
        assert_eq!(f.d, fresh.d);
        let b: Vec<f64> = (0..20).map(|i| i as f64 - 10.0).collect();
        assert_eq!(f.solve(&b), fresh.solve(&b));
    }

    #[test]
    fn permutation_round_trips() {
        let k = random_spd(15, 5);
        let sym = SymbolicLdl::analyze(&k);
        let (perm, iperm) = (sym.perm(), sym.iperm());
        let mut seen = [false; 15];
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(iperm[old], new);
            assert!(!seen[old]);
            seen[old] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn singular_matrix_reports_zero_pivot() {
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        b.push(2, 2, 0.0); // structurally present, numerically zero
        let k = b.build();
        let sym = SymbolicLdl::analyze(&k);
        assert!(SparseLdl::factor(sym, &k).is_err());
    }

    #[test]
    fn refactor_is_correct_when_columns_have_singleton_paths() {
        // Regression: the arrowhead's leaf columns are each touched by
        // exactly one (permuted) row — the hub's. Without the QDLDL-style
        // marker reset, their `y_mark` stamps survive the first numeric
        // pass and the second refactor skips every leaf, silently keeping
        // the previous factor's values.
        let n = 12;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i > 0 {
                b.push(0, i, 1.0);
                b.push(i, 0, 1.0);
            }
        }
        let k1 = b.build();
        let sym = SymbolicLdl::analyze(&k1);
        let mut f = SparseLdl::factor(sym, &k1).unwrap();
        let mut k2 = k1.clone();
        for v in k2.values_mut() {
            *v *= 2.0;
        }
        f.refactor(&k2).unwrap();
        let mut fresh = SparseLdl::factor(SymbolicLdl::analyze(&k2), &k2).unwrap();
        assert_eq!(f.l_values, fresh.l_values);
        assert_eq!(f.d, fresh.d);
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        assert_eq!(f.solve(&rhs), fresh.solve(&rhs));
    }

    #[test]
    fn batch_blocks_match_standalone_factors_bitwise() {
        // each block of a BatchLdl must be bit-identical to a standalone
        // SparseLdl of the same matrix — including after refactoring the
        // blocks in an interleaved order through the shared scratch
        let k0 = random_spd(20, 3);
        let sym = SymbolicLdl::analyze(&k0);
        let variants: Vec<SparseMatrix> = (0..4)
            .map(|j| {
                let mut k = k0.clone();
                for (i, v) in k.values_mut().iter_mut().enumerate() {
                    *v *= 1.0 + 0.1 * ((i + j) % 5) as f64;
                }
                k
            })
            .collect();
        let mut batch = BatchLdl::new(sym.clone(), variants.len());
        assert_eq!(batch.blocks(), 4);
        let refs: Vec<&SparseMatrix> = variants.iter().collect();
        batch.refactor_all(&refs).unwrap();
        // interleaved per-block refactors (as the batched ADMM's per-block
        // ρ-adaptations produce) must not disturb other blocks
        batch.refactor_block(2, &variants[2]).unwrap();
        batch.refactor_block(0, &variants[0]).unwrap();
        let rhs: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut out = vec![0.0; 20];
        for (b, k) in variants.iter().enumerate() {
            let mut solo = SparseLdl::factor(sym.clone(), k).unwrap();
            let mut extracted = batch.extract_block(b);
            assert_eq!(extracted.l_values, solo.l_values, "block {b} L");
            assert_eq!(extracted.d, solo.d, "block {b} D");
            assert_eq!(batch.diag_block(b), solo.diag(), "block {b} diag");
            assert_eq!(batch.is_positive_definite(b), solo.is_positive_definite());
            batch.solve_block_into(b, &rhs, &mut out);
            assert_eq!(out, solo.solve(&rhs), "block {b} solve");
            assert_eq!(extracted.solve(&rhs), out, "block {b} extracted solve");
        }
    }

    #[test]
    fn batch_zero_pivot_reports_failing_block() {
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        b.push(2, 2, 0.0);
        let singular = b.build();
        let mut g = TripletBuilder::new(3, 3);
        g.push(0, 0, 1.0);
        g.push(1, 1, 1.0);
        g.push(2, 2, 1.0);
        let good = g.build();
        // same pattern is required, so analyze the shared pattern from
        // the structurally-identical good matrix
        let sym = SymbolicLdl::analyze(&good);
        let mut batch = BatchLdl::new(sym, 2);
        let err = batch.refactor_all(&[&good, &singular]).unwrap_err();
        assert_eq!(err.0, 1, "second block is the singular one");
    }

    #[test]
    fn min_degree_reduces_fill_on_arrow_matrix() {
        // arrowhead: dense first row/column + diagonal. Natural order
        // fills in completely; eliminating the hub last keeps L sparse.
        let n = 12;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i > 0 {
                b.push(0, i, 1.0);
                b.push(i, 0, 1.0);
            }
        }
        let k = b.build();
        let sym = SymbolicLdl::analyze(&k);
        // perfect elimination: only the hub column carries entries
        assert_eq!(sym.l_nnz(), n - 1, "min-degree must avoid arrowhead fill");
        let mut f = SparseLdl::factor(sym, &k).unwrap();
        let b_vec: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let x = f.solve(&b_vec);
        let back = k.to_dense().mul_vec(&x);
        for (u, v) in back.iter().zip(&b_vec) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}
