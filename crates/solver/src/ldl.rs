//! Sparse LDLᵀ factorization with a cached symbolic phase.
//!
//! The ADMM inner loop factors the same KKT matrix pattern over and over:
//! every ρ-adaptation, every SCP pass, and every warm/cold re-solve of an
//! MPC frame changes only the *values* of `K = P + σI + ρAᵀA`, never its
//! block-banded structure. The expensive, pattern-only work — the
//! fill-reducing permutation, the elimination tree, and the column counts
//! of the factor `L` — is therefore split into [`SymbolicLdl`] and
//! computed **once per sparsity pattern**; [`SparseLdl::refactor`] then
//! runs only the `O(|L|)` numeric sweep, and
//! [`solve_into`](SparseLdl::solve_into) does allocation-free
//! forward/backward substitution.
//!
//! The numeric phase is the up-looking algorithm of QDLDL (the solver
//! inside OSQP): row `k` of `L` is obtained from a sparse triangular
//! solve whose nonzero pattern is read off the elimination tree, so the
//! factorization touches only structural entries. `D` is diagonal (not
//! necessarily positive): symmetric *quasidefinite* matrices factor
//! without pivoting, which is what makes the scheme safe for KKT systems.

use crate::sparse::SparseMatrix;
use std::sync::Arc;

/// Error from the numeric factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdlError {
    /// Column at which a zero pivot was met.
    pub column: usize,
}

impl std::fmt::Display for LdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zero pivot in LDLᵀ at column {}", self.column)
    }
}

impl std::error::Error for LdlError {}

/// Pattern-only analysis of a symmetric sparse matrix, reusable across
/// any number of numeric factorizations with the same structure.
///
/// Holds the fill-reducing permutation (exact minimum degree — cheap and
/// deterministic at MPC sizes), the permuted upper-triangular pattern
/// with a scatter map from the original matrix, the elimination tree,
/// and the column pointers of `L`.
#[derive(Debug)]
pub struct SymbolicLdl {
    n: usize,
    /// `perm[new] = old`: position `new` of the permuted matrix takes
    /// row/column `old` of the original.
    perm: Vec<usize>,
    /// `iperm[old] = new` (inverse of `perm`).
    iperm: Vec<usize>,
    /// Permuted upper-triangular pattern (CSC, rows sorted, diagonal
    /// included).
    up_col_ptr: Vec<usize>,
    up_row_ind: Vec<usize>,
    /// For each stored entry of the permuted upper pattern, the value
    /// index in the *original* full CSC matrix it is copied from.
    up_src: Vec<usize>,
    /// Elimination-tree parent per column (`usize::MAX` = root).
    etree: Vec<usize>,
    /// Column pointers of `L` (strictly-below-diagonal entries).
    l_col_ptr: Vec<usize>,
    /// The original full pattern this analysis was computed for, kept so
    /// caches can validate reuse ([`SymbolicLdl::matches`]).
    src_col_ptr: Vec<usize>,
    src_row_ind: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl SymbolicLdl {
    /// Analyzes the pattern of a square symmetric matrix stored as full
    /// CSC (both triangles). Values are ignored; explicit zeros count as
    /// structural entries.
    ///
    /// # Panics
    ///
    /// Panics when `k` is not square.
    pub fn analyze(k: &SparseMatrix) -> Arc<SymbolicLdl> {
        let n = k.cols();
        assert_eq!(k.rows(), n, "LDLᵀ needs a square matrix");
        let perm = min_degree_order(k);
        let mut iperm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old] = new;
        }

        // permuted upper-triangular pattern: entry (old_r, old_c) lands at
        // (iperm[old_r], iperm[old_c]); keep new_r <= new_c.
        let col_ptr = k.col_ptr();
        let row_ind = k.row_ind();
        let mut entries: Vec<(usize, usize, usize)> = Vec::new(); // (new_c, new_r, src_idx)
        for old_c in 0..n {
            let (lo, hi) = (col_ptr[old_c], col_ptr[old_c + 1]);
            for (idx, &old_r) in (lo..hi).zip(&row_ind[lo..hi]) {
                let (new_r, new_c) = (iperm[old_r], iperm[old_c]);
                if new_r <= new_c {
                    entries.push((new_c, new_r, idx));
                }
            }
        }
        entries.sort_unstable();
        let mut up_col_ptr = vec![0usize; n + 1];
        let mut up_row_ind = Vec::with_capacity(entries.len());
        let mut up_src = Vec::with_capacity(entries.len());
        for (c, r, src) in entries {
            up_row_ind.push(r);
            up_src.push(src);
            up_col_ptr[c + 1] = up_row_ind.len();
        }
        for c in 0..n {
            if up_col_ptr[c + 1] < up_col_ptr[c] {
                up_col_ptr[c + 1] = up_col_ptr[c];
            }
        }

        // elimination tree + column counts of L (QDLDL_etree): walking
        // each above-diagonal entry up the partially-built tree marks
        // exactly the columns of L that gain an entry in row c.
        let mut etree = vec![NONE; n];
        let mut l_nz = vec![0usize; n];
        let mut work = vec![NONE; n];
        for c in 0..n {
            work[c] = c;
            for &row in &up_row_ind[up_col_ptr[c]..up_col_ptr[c + 1]] {
                let mut i = row;
                if i == c {
                    continue;
                }
                while work[i] != c {
                    if etree[i] == NONE {
                        etree[i] = c;
                    }
                    l_nz[i] += 1;
                    work[i] = c;
                    i = etree[i];
                }
            }
        }
        let mut l_col_ptr = vec![0usize; n + 1];
        for i in 0..n {
            l_col_ptr[i + 1] = l_col_ptr[i] + l_nz[i];
        }

        Arc::new(SymbolicLdl {
            n,
            perm,
            iperm,
            up_col_ptr,
            up_row_ind,
            up_src,
            etree,
            l_col_ptr,
            src_col_ptr: col_ptr.to_vec(),
            src_row_ind: row_ind.to_vec(),
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of strictly-below-diagonal entries of `L` (the fill).
    pub fn l_nnz(&self) -> usize {
        self.l_col_ptr[self.n]
    }

    /// The fill-reducing permutation (`perm[new] = old`).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The inverse permutation (`iperm[old] = new`).
    pub fn iperm(&self) -> &[usize] {
        &self.iperm
    }

    /// Whether this analysis applies to `k` (identical full pattern).
    pub fn matches(&self, k: &SparseMatrix) -> bool {
        k.rows() == self.n
            && k.cols() == self.n
            && k.col_ptr() == self.src_col_ptr.as_slice()
            && k.row_ind() == self.src_row_ind.as_slice()
    }
}

/// Exact minimum-degree ordering on the adjacency graph of a symmetric
/// pattern: repeatedly eliminate the minimum-degree node (ties broken by
/// index, keeping the order deterministic) and connect its neighbours
/// into a clique. Quadratic in the worst case, which is irrelevant at
/// MPC sizes (n ≲ a few hundred) and avoids the bookkeeping subtleties
/// of approximate variants.
fn min_degree_order(k: &SparseMatrix) -> Vec<usize> {
    let n = k.cols();
    let col_ptr = k.col_ptr();
    let row_ind = k.row_ind();
    // adjacency sets as sorted vecs, diagonal excluded
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..n {
        for &r in &row_ind[col_ptr[c]..col_ptr[c + 1]] {
            if r != c {
                adj[c].push(r);
            }
        }
    }
    for a in adj.iter_mut() {
        a.sort_unstable();
        a.dedup();
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&i| !eliminated[i])
            .min_by_key(|&i| (adj[i].len(), i))
            .expect("an uneliminated node remains");
        eliminated[v] = true;
        order.push(v);
        let neighbours: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        // neighbours of the pivot become a clique
        for &u in &neighbours {
            let au = &mut adj[u];
            au.retain(|&w| w != v && !eliminated[w]);
            for &w in &neighbours {
                if w != u && !au.contains(&w) {
                    au.push(w);
                }
            }
        }
    }
    order
}

/// A numeric LDLᵀ factor bound to a shared [`SymbolicLdl`] analysis.
///
/// `L` is unit lower triangular (unit diagonal implicit) in CSC, `D`
/// diagonal. [`refactor`](SparseLdl::refactor) overwrites the numeric
/// data in place for new matrix values with the same pattern;
/// [`solve_into`](SparseLdl::solve_into) performs the permuted
/// forward/diagonal/backward sweeps without allocating.
#[derive(Debug, Clone)]
pub struct SparseLdl {
    sym: Arc<SymbolicLdl>,
    l_row_ind: Vec<usize>,
    l_values: Vec<f64>,
    d: Vec<f64>,
    dinv: Vec<f64>,
    // numeric-phase scratch, persisted so refactors allocate nothing
    y_vals: Vec<f64>,
    y_mark: Vec<usize>,
    y_idx: Vec<usize>,
    elim: Vec<usize>,
    l_next: Vec<usize>,
    // solve scratch (permuted right-hand side)
    rhs: Vec<f64>,
}

impl SparseLdl {
    /// Factors `k` using a previously computed symbolic analysis.
    ///
    /// # Errors
    ///
    /// Returns [`LdlError`] on a zero pivot (structurally or numerically
    /// singular matrix).
    ///
    /// # Panics
    ///
    /// Panics when `sym` was analyzed for a different pattern.
    pub fn factor(sym: Arc<SymbolicLdl>, k: &SparseMatrix) -> Result<SparseLdl, LdlError> {
        let n = sym.n;
        let l_nnz = sym.l_nnz();
        let mut f = SparseLdl {
            l_row_ind: vec![0; l_nnz],
            l_values: vec![0.0; l_nnz],
            d: vec![0.0; n],
            dinv: vec![0.0; n],
            y_vals: vec![0.0; n],
            y_mark: vec![NONE; n],
            y_idx: vec![0; n],
            elim: vec![0; n],
            l_next: vec![0; n],
            rhs: vec![0.0; n],
            sym,
        };
        f.refactor(k)?;
        Ok(f)
    }

    /// The symbolic analysis this factor is bound to.
    pub fn symbolic(&self) -> &Arc<SymbolicLdl> {
        &self.sym
    }

    /// The diagonal `D` of the factorization (permuted order).
    pub fn diag(&self) -> &[f64] {
        &self.d
    }

    /// Whether every pivot is strictly positive (the matrix is positive
    /// definite, not merely quasidefinite).
    pub fn is_positive_definite(&self) -> bool {
        self.d.iter().all(|&v| v > 0.0)
    }

    /// Recomputes the numeric factor for new values of the same pattern.
    /// Pattern-only state (permutation, elimination tree, `L` structure)
    /// is reused verbatim; nothing is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`LdlError`] on a zero pivot; the factor contents are then
    /// unspecified and must not be used for solves.
    ///
    /// # Panics
    ///
    /// Panics when `k`'s pattern differs from the analyzed one.
    pub fn refactor(&mut self, k: &SparseMatrix) -> Result<(), LdlError> {
        assert!(self.sym.matches(k), "matrix pattern differs from the symbolic analysis");
        let sym = &self.sym;
        let n = sym.n;
        let kv = k.values();
        self.l_next.copy_from_slice(&sym.l_col_ptr[..n]);
        // up-looking factorization, one (permuted) row k at a time
        for row in 0..n {
            self.d[row] = 0.0;
            self.y_mark[row] = row; // paths stop before the current row
            let mut nnz_y = 0usize;
            for idx in sym.up_col_ptr[row]..sym.up_col_ptr[row + 1] {
                let i = sym.up_row_ind[idx];
                let v = kv[sym.up_src[idx]];
                if i == row {
                    self.d[row] = v;
                    continue;
                }
                self.y_vals[i] = v;
                // walk the elimination tree, recording the new part of
                // the path; reversing it onto the stack yields a
                // topological (ascending-dependency) processing order
                let mut next = i;
                let mut nnz_e = 0usize;
                while self.y_mark[next] != row {
                    self.y_mark[next] = row;
                    self.elim[nnz_e] = next;
                    nnz_e += 1;
                    next = sym.etree[next];
                    debug_assert!(next != NONE, "etree path must reach the current row");
                }
                while nnz_e > 0 {
                    nnz_e -= 1;
                    self.y_idx[nnz_y] = self.elim[nnz_e];
                    nnz_y += 1;
                }
            }
            // sparse triangular solve against the already-computed columns
            for i in (0..nnz_y).rev() {
                let c = self.y_idx[i];
                let yc = self.y_vals[c];
                self.y_vals[c] = 0.0;
                for j in sym.l_col_ptr[c]..self.l_next[c] {
                    self.y_vals[self.l_row_ind[j]] -= self.l_values[j] * yc;
                }
                let slot = self.l_next[c];
                self.l_next[c] += 1;
                let lkc = yc * self.dinv[c];
                self.l_row_ind[slot] = row;
                self.l_values[slot] = lkc;
                self.d[row] -= yc * lkc;
            }
            if self.d[row] == 0.0 {
                return Err(LdlError { column: sym.perm[row] });
            }
            self.dinv[row] = 1.0 / self.d[row];
        }
        Ok(())
    }

    /// Solves `K·x = b`, allocating the result vector.
    ///
    /// # Panics
    ///
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve(&mut self, b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.sym.n];
        self.solve_into(b, &mut out);
        out
    }

    /// Allocation-free solve `out = K⁻¹·b` via the permuted sweeps
    /// `L·w = Pb`, `w ← D⁻¹w`, `Lᵀ·(Px) = w`.
    ///
    /// (`&mut self` only for the internal permuted-RHS scratch; the
    /// factor itself is not modified.)
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_into(&mut self, b: &[f64], out: &mut [f64]) {
        let sym = &self.sym;
        let n = sym.n;
        assert_eq!(b.len(), n, "dimension mismatch");
        assert_eq!(out.len(), n, "output dimension mismatch");
        let w = &mut self.rhs;
        for (new, &old) in sym.perm.iter().enumerate() {
            w[new] = b[old];
        }
        // forward: L w = w (unit diagonal)
        for j in 0..n {
            let wj = w[j];
            if wj != 0.0 {
                for idx in sym.l_col_ptr[j]..sym.l_col_ptr[j + 1] {
                    w[self.l_row_ind[idx]] -= self.l_values[idx] * wj;
                }
            }
        }
        // diagonal
        for (wi, di) in w.iter_mut().zip(&self.dinv) {
            *wi *= di;
        }
        // backward: Lᵀ x = w
        for j in (0..n).rev() {
            let mut acc = w[j];
            for idx in sym.l_col_ptr[j]..sym.l_col_ptr[j + 1] {
                acc -= self.l_values[idx] * w[self.l_row_ind[idx]];
            }
            w[j] = acc;
        }
        for (new, &old) in sym.perm.iter().enumerate() {
            out[old] = w[new];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    }

    /// Random sparse SPD matrix `AᵀA + αI` with a banded-ish pattern.
    fn random_spd(n: usize, seed: u64) -> SparseMatrix {
        let mut s = seed;
        let mut b = TripletBuilder::new(n, n);
        for c in 0..n {
            for _ in 0..3 {
                let r = ((lcg(&mut s) + 0.5) * n as f64) as usize % n;
                b.push(r, c, lcg(&mut s));
            }
        }
        let a = b.build();
        let mut g = a.gram();
        // add αI on the full pattern (gram may miss diagonal entries for
        // empty columns, so go through a fresh builder)
        let mut out = TripletBuilder::new(n, n);
        let (cp, ri, vs) = (g.col_ptr().to_vec(), g.row_ind().to_vec(), g.values().to_vec());
        for c in 0..n {
            for k in cp[c]..cp[c + 1] {
                out.push(ri[k], c, vs[k]);
            }
            out.push(c, c, 1.0 + lcg(&mut s).abs());
        }
        g = out.build();
        g
    }

    #[test]
    fn factor_solve_matches_dense_cholesky() {
        for seed in 0..6u64 {
            let n = 10 + (seed as usize % 4) * 7;
            let k = random_spd(n, seed * 31 + 1);
            let sym = SymbolicLdl::analyze(&k);
            let mut f = SparseLdl::factor(sym, &k).expect("SPD factors");
            assert!(f.is_positive_definite());
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let x = f.solve(&b);
            let dense = k.to_dense().cholesky().expect("dense SPD");
            let xd = dense.solve(&b);
            for (a, c) in x.iter().zip(&xd) {
                assert!((a - c).abs() < 1e-8, "{a} vs {c}");
            }
        }
    }

    #[test]
    fn quasidefinite_factors_without_pivoting() {
        // K = [[P, Aᵀ], [A, -I]] with P SPD — symmetric quasidefinite:
        // LDLᵀ exists for any symmetric permutation, D has mixed signs.
        let mut b = TripletBuilder::new(5, 5);
        b.push(0, 0, 4.0);
        b.push(1, 1, 3.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        // A block (rows 2..5 of cols 0..2 and symmetric)
        let a_entries = [(2, 0, 1.0), (2, 1, 2.0), (3, 0, -1.0), (4, 1, 0.5)];
        for &(r, c, v) in &a_entries {
            b.push(r, c, v);
            b.push(c, r, v);
        }
        for i in 2..5 {
            b.push(i, i, -1.0);
        }
        let k = b.build();
        let sym = SymbolicLdl::analyze(&k);
        let mut f = SparseLdl::factor(sym, &k).expect("quasidefinite factors");
        assert!(!f.is_positive_definite());
        assert!(f.diag().iter().any(|&d| d < 0.0));
        let rhs = [1.0, -2.0, 0.5, 3.0, -1.0];
        let x = f.solve(&rhs);
        let back = k.to_dense().mul_vec(&x);
        for (u, v) in back.iter().zip(&rhs) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn refactor_reuses_symbolic_and_matches_fresh() {
        let k1 = random_spd(20, 77);
        let sym = SymbolicLdl::analyze(&k1);
        let mut f = SparseLdl::factor(sym.clone(), &k1).unwrap();
        // scale the values (same pattern), refactor in place
        let mut k2 = k1.clone();
        for v in k2.values_mut() {
            *v *= 3.0;
        }
        f.refactor(&k2).unwrap();
        let mut fresh = SparseLdl::factor(SymbolicLdl::analyze(&k2), &k2).unwrap();
        // bitwise-identical numeric data: the symbolic phase fully
        // determines the computation order
        assert_eq!(f.l_values, fresh.l_values);
        assert_eq!(f.d, fresh.d);
        let b: Vec<f64> = (0..20).map(|i| i as f64 - 10.0).collect();
        assert_eq!(f.solve(&b), fresh.solve(&b));
    }

    #[test]
    fn permutation_round_trips() {
        let k = random_spd(15, 5);
        let sym = SymbolicLdl::analyze(&k);
        let (perm, iperm) = (sym.perm(), sym.iperm());
        let mut seen = [false; 15];
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(iperm[old], new);
            assert!(!seen[old]);
            seen[old] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn singular_matrix_reports_zero_pivot() {
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        b.push(2, 2, 0.0); // structurally present, numerically zero
        let k = b.build();
        let sym = SymbolicLdl::analyze(&k);
        assert!(SparseLdl::factor(sym, &k).is_err());
    }

    #[test]
    fn min_degree_reduces_fill_on_arrow_matrix() {
        // arrowhead: dense first row/column + diagonal. Natural order
        // fills in completely; eliminating the hub last keeps L sparse.
        let n = 12;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i > 0 {
                b.push(0, i, 1.0);
                b.push(i, 0, 1.0);
            }
        }
        let k = b.build();
        let sym = SymbolicLdl::analyze(&k);
        // perfect elimination: only the hub column carries entries
        assert_eq!(sym.l_nnz(), n - 1, "min-degree must avoid arrowhead fill");
        let mut f = SparseLdl::factor(sym, &k).unwrap();
        let b_vec: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let x = f.solve(&b_vec);
        let back = k.to_dense().mul_vec(&x);
        for (u, v) in back.iter().zip(&b_vec) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}
