//! Compressed-sparse-column (CSC) matrices for the structured-KKT path.
//!
//! MPC QPs assembled in the simultaneous (multiple-shooting) form are
//! overwhelmingly zeros: the KKT matrix `P + σI + ρAᵀA` is block-banded
//! along the horizon. This module provides the storage and the handful of
//! operations the ADMM solver needs to exploit that —
//!
//! * [`TripletBuilder`] — coordinate-form assembly (the natural output of
//!   a constraint emitter), finalized into sorted, deduplicated CSC;
//! * [`SparseMatrix`] — CSC with `O(nnz)` matvecs (`A·x`, `Aᵀ·y`),
//!   transpose, and a sparse Gram product `AᵀA` computed directly on the
//!   fill pattern (never densified);
//! * [`SparseKkt`] — the KKT matrix `P + σI + ρAᵀA` with a **fixed**
//!   fill pattern and precomputed scatter maps, so ρ-adaptations and
//!   value-only updates reassemble in `O(nnz)` without reallocating (and
//!   without invalidating a cached symbolic factorization, which keys on
//!   the pattern).
//!
//! Explicit zeros are kept: emitters push *structural* entries (every
//! coefficient that can be nonzero for some linearization point), which
//! keeps the fill pattern — and therefore the cached symbolic
//! factorization — stable across SCP passes and MPC frames.

use crate::linalg::Mat;
use serde::{Deserialize, Serialize};

/// A sparse `f64` matrix in compressed-sparse-column (CSC) form.
///
/// Row indices are strictly increasing within each column; duplicate
/// coordinates are summed at build time. Explicit zeros are allowed (and
/// deliberately used) to keep fill patterns stable across value updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `cols + 1` offsets into `row_ind`/`values`.
    col_ptr: Vec<usize>,
    /// Row index of each stored entry, sorted within each column.
    row_ind: Vec<usize>,
    /// Stored entry values, aligned with `row_ind`.
    values: Vec<f64>,
}

/// Coordinate-form (triplet) assembly of a [`SparseMatrix`].
///
/// Push entries in any order; duplicates are summed by [`build`]
/// (`TripletBuilder::build`). Pushing an explicit zero keeps the slot in
/// the pattern, which is how emitters pin a stable structure.
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// An empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// An empty builder with room for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Records `self[r][c] += v` (duplicates are summed at build time).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "triplet out of range");
        self.entries.push((r, c, v));
    }

    /// Number of (pre-deduplication) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalizes into CSC: sorts column-major, sums duplicates.
    pub fn build(mut self) -> SparseMatrix {
        self.entries.sort_unstable_by_key(|e| (e.1, e.0));
        let mut col_ptr = vec![0usize; self.cols + 1];
        let mut row_ind = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in self.entries {
            // duplicates are adjacent after the sort → accumulate
            if last == Some((r, c)) {
                *values.last_mut().expect("previous entry exists") += v;
                continue;
            }
            last = Some((r, c));
            row_ind.push(r);
            values.push(v);
            col_ptr[c + 1] = row_ind.len();
        }
        // forward-fill empty columns
        for c in 0..self.cols {
            if col_ptr[c + 1] < col_ptr[c] {
                col_ptr[c + 1] = col_ptr[c];
            }
        }
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            col_ptr,
            row_ind,
            values,
        }
    }
}

impl SparseMatrix {
    /// An empty (all-zero, no stored entries) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix {
            rows,
            cols,
            col_ptr: vec![0; cols + 1],
            row_ind: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The identity pattern with unit values.
    pub fn identity(n: usize) -> Self {
        SparseMatrix {
            rows: n,
            cols: n,
            col_ptr: (0..=n).collect(),
            row_ind: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Converts a dense matrix, keeping exactly its nonzero entries.
    pub fn from_dense(m: &Mat) -> Self {
        let mut b = TripletBuilder::new(m.rows(), m.cols());
        for c in 0..m.cols() {
            for r in 0..m.rows() {
                let v = m.at(r, c);
                if v != 0.0 {
                    b.push(r, c, v);
                }
            }
        }
        b.build()
    }

    /// Densifies (mainly for the dense factorization backend and tests).
    pub fn to_dense(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                *out.at_mut(self.row_ind[k], c) = self.values[k];
            }
        }
        out
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (explicit zeros included).
    pub fn nnz(&self) -> usize {
        self.row_ind.len()
    }

    /// Stored entries over total entries, in `[0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Column pointer array (length `cols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array (length `nnz`).
    pub fn row_ind(&self) -> &[usize] {
        &self.row_ind
    }

    /// Stored values (length `nnz`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable stored values (the pattern is immutable by design).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Whether `other` has the identical fill pattern (shape + structure).
    pub fn same_pattern(&self, other: &SparseMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.col_ptr == other.col_ptr
            && self.row_ind == other.row_ind
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Allocation-free `out = A·v`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        assert_eq!(out.len(), self.rows, "output dimension mismatch");
        out.fill(0.0);
        for (c, &vc) in v.iter().enumerate() {
            if vc == 0.0 {
                continue;
            }
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                out[self.row_ind[k]] += self.values[k] * vc;
            }
        }
    }

    /// Transposed matrix–vector product `Aᵀ·v`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != rows`.
    pub fn t_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.t_mul_vec_into(v, &mut out);
        out
    }

    /// Allocation-free `out = Aᵀ·v`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn t_mul_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        assert_eq!(out.len(), self.cols, "output dimension mismatch");
        for (c, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                acc += self.values[k] * v[self.row_ind[k]];
            }
            *o = acc;
        }
    }

    /// The transposed matrix (CSC of `Aᵀ`, equivalently CSR of `A`).
    pub fn transpose(&self) -> SparseMatrix {
        let mut col_ptr = vec![0usize; self.rows + 1];
        for &r in &self.row_ind {
            col_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut next = col_ptr.clone();
        let mut row_ind = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for c in 0..self.cols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                let r = self.row_ind[k];
                let slot = next[r];
                next[r] += 1;
                row_ind[slot] = c;
                values[slot] = self.values[k];
            }
        }
        SparseMatrix {
            rows: self.cols,
            cols: self.rows,
            col_ptr,
            row_ind,
            values,
        }
    }

    /// The Gram matrix `AᵀA` as a sparse matrix, computed column by
    /// column with a scatter workspace (Gustavson) — the dense `m·n²`
    /// product is never formed. The result pattern is exactly the
    /// structural fill of `AᵀA` (symmetric, explicit zeros possible).
    pub fn gram(&self) -> SparseMatrix {
        self.gram_impl(None)
    }

    /// The weighted Gram matrix `AᵀWA` with `W = diag(weights)` (one
    /// weight per *row* of `A`) — the KKT contribution of a per-constraint
    /// ADMM penalty vector. The structural pattern is identical to
    /// [`SparseMatrix::gram`]: weights scale values, never the fill.
    ///
    /// # Panics
    ///
    /// Panics when `weights.len() != rows`.
    pub fn gram_weighted(&self, weights: &[f64]) -> SparseMatrix {
        assert_eq!(weights.len(), self.rows, "one weight per constraint row");
        self.gram_impl(Some(weights))
    }

    fn gram_impl(&self, weights: Option<&[f64]>) -> SparseMatrix {
        let at = self.transpose();
        let n = self.cols;
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_ind: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        // scatter workspace: accumulator + generation marker per row
        let mut acc = vec![0.0f64; n];
        let mut mark = vec![usize::MAX; n];
        let mut touched: Vec<usize> = Vec::with_capacity(n);
        for j in 0..n {
            touched.clear();
            // (AᵀWA)·e_j = Aᵀ·W·(A·e_j); A·e_j is column j of A
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                let r = self.row_ind[k];
                let x = match weights {
                    Some(w) => w[r] * self.values[k],
                    None => self.values[k],
                };
                // row r of A == column r of Aᵀ
                for kk in at.col_ptr[r]..at.col_ptr[r + 1] {
                    let i = at.row_ind[kk];
                    if mark[i] != j {
                        mark[i] = j;
                        acc[i] = 0.0;
                        touched.push(i);
                    }
                    acc[i] += at.values[kk] * x;
                }
            }
            touched.sort_unstable();
            for &i in &touched {
                row_ind.push(i);
                values.push(acc[i]);
            }
            col_ptr[j + 1] = row_ind.len();
        }
        SparseMatrix {
            rows: n,
            cols: n,
            col_ptr,
            row_ind,
            values,
        }
    }

    /// Scales row `i` of every entry by `e[i]` (`A ← diag(e)·A`).
    ///
    /// # Panics
    ///
    /// Panics when `e.len() != rows`.
    pub fn scale_rows(&mut self, e: &[f64]) {
        assert_eq!(e.len(), self.rows, "dimension mismatch");
        for (v, &r) in self.values.iter_mut().zip(&self.row_ind) {
            *v *= e[r];
        }
    }

    /// Scales column `j` of every entry by `d[j]` (`A ← A·diag(d)`).
    ///
    /// # Panics
    ///
    /// Panics when `d.len() != cols`.
    pub fn scale_cols(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.cols, "dimension mismatch");
        for (c, &dc) in d.iter().enumerate() {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                self.values[k] *= dc;
            }
        }
    }

    /// Writes the per-row maximum absolute value into `out` (rows with no
    /// stored entry get 0).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != rows`.
    pub fn row_abs_max_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows, "dimension mismatch");
        out.fill(0.0);
        for (v, &r) in self.values.iter().zip(&self.row_ind) {
            out[r] = out[r].max(v.abs());
        }
    }

    /// Writes the per-column maximum absolute value into `out`.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != cols`.
    pub fn col_abs_max_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.cols, "dimension mismatch");
        for (c, o) in out.iter_mut().enumerate() {
            let mut m = 0.0f64;
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                m = m.max(self.values[k].abs());
            }
            *o = m;
        }
    }
}

/// The ADMM KKT matrix `K = P + σI + ρ·AᵀA` with a fixed fill pattern.
///
/// Construction computes the pattern union (P ∪ diagonal ∪ Gram) once and
/// records, for every stored entry of `P` and of the Gram matrix, its
/// destination slot in `K`. [`assemble`](SparseKkt::assemble) then
/// rebuilds the values in `O(nnz)` for any `(σ, ρ)` — the pattern (and
/// with it any cached symbolic factorization of `K`) is never
/// invalidated by a value-only update.
#[derive(Debug, Clone)]
pub struct SparseKkt {
    kkt: SparseMatrix,
    p_map: Vec<usize>,
    gram_map: Vec<usize>,
    diag_map: Vec<usize>,
}

impl SparseKkt {
    /// Builds the union pattern of `P`, the diagonal, and `gram = AᵀA`.
    ///
    /// # Panics
    ///
    /// Panics when `p` and `gram` are not square matrices of equal size.
    pub fn new(p: &SparseMatrix, gram: &SparseMatrix) -> Self {
        let n = p.cols();
        assert!(p.rows() == n && gram.rows() == n && gram.cols() == n, "KKT terms must be n × n");
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_ind: Vec<usize> = Vec::new();
        let mut p_map = vec![0usize; p.nnz()];
        let mut gram_map = vec![0usize; gram.nnz()];
        let mut diag_map = vec![0usize; n];
        for j in 0..n {
            // three-way sorted merge of P col j, gram col j, and {j}
            let (mut ip, pe) = (p.col_ptr[j], p.col_ptr[j + 1]);
            let (mut ig, ge) = (gram.col_ptr[j], gram.col_ptr[j + 1]);
            let mut diag_pending = true;
            loop {
                let rp = if ip < pe { p.row_ind[ip] } else { usize::MAX };
                let rg = if ig < ge { gram.row_ind[ig] } else { usize::MAX };
                let rd = if diag_pending { j } else { usize::MAX };
                let r = rp.min(rg).min(rd);
                if r == usize::MAX {
                    break;
                }
                let slot = row_ind.len();
                row_ind.push(r);
                if rp == r {
                    p_map[ip] = slot;
                    ip += 1;
                }
                if rg == r {
                    gram_map[ig] = slot;
                    ig += 1;
                }
                if rd == r {
                    diag_map[j] = slot;
                    diag_pending = false;
                }
            }
            col_ptr[j + 1] = row_ind.len();
        }
        let nnz = row_ind.len();
        SparseKkt {
            kkt: SparseMatrix {
                rows: n,
                cols: n,
                col_ptr,
                row_ind,
                values: vec![0.0; nnz],
            },
            p_map,
            gram_map,
            diag_map,
        }
    }

    /// Recomputes `K = P + σI + ρ·gram` in place and returns it.
    ///
    /// # Panics
    ///
    /// Panics when `p`/`gram` do not have the entry counts this assembly
    /// was built for (the pattern is fixed at construction).
    pub fn assemble(
        &mut self,
        p: &SparseMatrix,
        gram: &SparseMatrix,
        sigma: f64,
        rho: f64,
    ) -> &SparseMatrix {
        assert_eq!(p.nnz(), self.p_map.len(), "P pattern changed under the assembly");
        assert_eq!(gram.nnz(), self.gram_map.len(), "Gram pattern changed under the assembly");
        self.kkt.values.fill(0.0);
        for (&slot, &v) in self.p_map.iter().zip(&p.values) {
            self.kkt.values[slot] += v;
        }
        for (&slot, &v) in self.gram_map.iter().zip(&gram.values) {
            self.kkt.values[slot] += rho * v;
        }
        for &slot in &self.diag_map {
            self.kkt.values[slot] += sigma;
        }
        &self.kkt
    }

    /// The assembled KKT matrix (values from the last `assemble` call).
    pub fn matrix(&self) -> &SparseMatrix {
        &self.kkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    }

    fn random_sparse(rows: usize, cols: usize, per_col: usize, seed: u64) -> SparseMatrix {
        let mut s = seed;
        let mut b = TripletBuilder::new(rows, cols);
        for c in 0..cols {
            for _ in 0..per_col {
                let r = ((lcg(&mut s) + 0.5) * rows as f64) as usize % rows;
                b.push(r, c, lcg(&mut s));
            }
        }
        b.build()
    }

    #[test]
    fn triplets_round_trip_through_dense() {
        let mut b = TripletBuilder::new(3, 4);
        b.push(2, 1, 5.0);
        b.push(0, 0, 1.0);
        b.push(2, 1, -2.0); // duplicate: summed
        b.push(1, 3, 7.0);
        b.push(0, 1, 0.0); // explicit zero kept in the pattern
        let m = b.build();
        assert_eq!(m.nnz(), 4);
        let d = m.to_dense();
        assert_eq!(d.at(2, 1), 3.0);
        assert_eq!(d.at(0, 0), 1.0);
        assert_eq!(d.at(1, 3), 7.0);
        assert_eq!(SparseMatrix::from_dense(&d).to_dense().data(), d.data());
    }

    #[test]
    fn matvecs_match_dense() {
        let a = random_sparse(7, 5, 3, 42);
        let d = a.to_dense();
        let v: Vec<f64> = (0..5).map(|i| (i as f64) - 2.0).collect();
        let w: Vec<f64> = (0..7).map(|i| 0.5 * i as f64 - 1.0).collect();
        let ax = a.mul_vec(&v);
        let dax = d.mul_vec(&v);
        for (x, y) in ax.iter().zip(&dax) {
            assert!((x - y).abs() < 1e-12);
        }
        let aty = a.t_mul_vec(&w);
        let daty = d.t_mul_vec(&w);
        for (x, y) in aty.iter().zip(&daty) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_and_gram_match_dense() {
        let a = random_sparse(9, 6, 4, 7);
        let d = a.to_dense();
        assert_eq!(a.transpose().to_dense().data(), d.transposed().data());
        let g = a.gram().to_dense();
        let dg = d.gram();
        for (x, y) in g.data().iter().zip(dg.data()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn kkt_assembly_matches_dense_formula() {
        let a = random_sparse(8, 5, 3, 99);
        let p = {
            // SPD-ish pattern: diagonal plus a band entry
            let mut b = TripletBuilder::new(5, 5);
            for i in 0..5 {
                b.push(i, i, 2.0 + i as f64);
            }
            b.push(0, 2, 0.5);
            b.push(2, 0, 0.5);
            b.build()
        };
        let gram = a.gram();
        let mut kkt = SparseKkt::new(&p, &gram);
        for &(sigma, rho) in &[(1e-6, 0.1), (0.5, 3.0)] {
            let k = kkt.assemble(&p, &gram, sigma, rho).to_dense();
            let mut want = p.to_dense();
            want.add_scaled(&Mat::identity(5), sigma);
            want.add_scaled(&gram.to_dense(), rho);
            for (x, y) in k.data().iter().zip(want.data()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn scaling_and_norm_helpers_match_dense() {
        let mut a = random_sparse(6, 4, 3, 5);
        let d0 = a.to_dense();
        let mut rmax = vec![0.0; 6];
        let mut cmax = vec![0.0; 4];
        a.row_abs_max_into(&mut rmax);
        a.col_abs_max_into(&mut cmax);
        for (i, &got) in rmax.iter().enumerate() {
            let want = (0..4).map(|j| d0.at(i, j).abs()).fold(0.0, f64::max);
            assert!((got - want).abs() < 1e-15);
        }
        for (j, &got) in cmax.iter().enumerate() {
            let want = (0..6).map(|i| d0.at(i, j).abs()).fold(0.0, f64::max);
            assert!((got - want).abs() < 1e-15);
        }
        let e: Vec<f64> = (0..6).map(|i| 1.0 + 0.1 * i as f64).collect();
        let c: Vec<f64> = (0..4).map(|j| 2.0 - 0.2 * j as f64).collect();
        a.scale_rows(&e);
        a.scale_cols(&c);
        let d1 = a.to_dense();
        for (i, &ei) in e.iter().enumerate() {
            for (j, &cj) in c.iter().enumerate() {
                assert!((d1.at(i, j) - d0.at(i, j) * ei * cj).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fill_ratio_and_empty_columns() {
        let mut b = TripletBuilder::new(4, 4);
        b.push(0, 0, 1.0);
        b.push(3, 3, 1.0);
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        assert!((m.fill_ratio() - 2.0 / 16.0).abs() < 1e-15);
        // columns 1 and 2 are empty; matvec must still be correct
        assert_eq!(m.mul_vec(&[1.0, 5.0, 5.0, 2.0]), vec![1.0, 0.0, 0.0, 2.0]);
    }
}
