//! OSQP-style ADMM solver for box-constrained quadratic programs.
//!
//! Solves `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u` with the operator-splitting
//! scheme of Stellato et al. (OSQP): one factorization of the KKT matrix
//! `P + σI + AᵀRA` up front, then cheap per-iteration triangular solves
//! and projections. Equality constraints are expressed as `l = u` rows
//! and get a ×1000-stiffer entry in the penalty matrix `R = diag(ρ_i)`
//! (OSQP's equality boost): a scalar ρ tuned for inequality rows would
//! leave equalities — the MPC's dynamics rows — enforced so loosely at
//! practical tolerances that collision constraints written on the state
//! variables stop protecting the actual rollout.
//!
//! Problem data is held in CSC sparse form ([`SparseMatrix`]) and the
//! KKT matrix can be factorized by either of two interchangeable
//! [`Backend`]s:
//!
//! * **Dense** — the KKT matrix is densified and factorized with
//!   [`Cholesky`]; right for small or genuinely dense problems.
//! * **Sparse** — a sparse LDLᵀ ([`SparseLdl`]) whose symbolic phase
//!   (fill-reducing ordering + elimination tree) is computed once per
//!   sparsity pattern, cached in the [`QpWorkspace`], and reused across
//!   every ρ-adaptation and re-solve; only the `O(|L|)` numeric
//!   refactorization runs when values change. Right for the block-banded
//!   KKT systems that simultaneous-form MPC produces.
//!
//! `Backend::Auto` (the default) picks per problem from the dimension and
//! the KKT fill ratio; both backends run the identical ADMM iteration, so
//! they agree to factorization rounding (checked differentially by the
//! conformance harness).

use crate::ldl::{SparseLdl, SymbolicLdl};
use crate::linalg::{Cholesky, Mat};
use crate::sparse::{SparseKkt, SparseMatrix};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// KKT factorization backend selection for a [`QpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Backend {
    /// Pick per problem: sparse when the problem is large enough and the
    /// KKT fill ratio low enough to pay off, dense otherwise.
    #[default]
    Auto,
    /// Always densify and use dense Cholesky.
    Dense,
    /// Always use the sparse LDLᵀ with the cached symbolic phase.
    Sparse,
}

/// The `Auto` rule: sparse pays off once the problem is big enough that
/// the O(n³) dense factor dominates and the KKT pattern actually is
/// sparse. Thresholds sized for this codebase's MPC problems (dense
/// factor ≈ n³/3 flops vs sparse ≈ Σ lnz² — at n ≥ 30 and ≤ 35 % fill
/// the sparse path wins on every profile measured).
pub(crate) fn choose_sparse(backend: Backend, n: usize, kkt_fill: f64) -> bool {
    match backend {
        Backend::Dense => false,
        Backend::Sparse => true,
        Backend::Auto => n >= 30 && kkt_fill <= 0.35,
    }
}

/// A quadratic program `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u`.
///
/// `P` and `A` are stored in CSC sparse form regardless of how the
/// problem was constructed; [`QpProblem::new`] accepts dense matrices for
/// convenience (and keeps exactly their nonzero entries), while
/// [`QpProblem::from_sparse`] takes pre-assembled sparse matrices whose
/// *structural* pattern (explicit zeros included) is preserved — which is
/// what keeps the cached symbolic factorization valid across MPC frames.
#[derive(Debug, Clone)]
pub struct QpProblem {
    pub(crate) p: SparseMatrix,
    /// Linear cost vector, length `n`.
    pub q: Vec<f64>,
    pub(crate) a: SparseMatrix,
    /// Constraint lower bounds, length `m` (may contain `-∞`).
    pub l: Vec<f64>,
    /// Constraint upper bounds, length `m` (may contain `+∞`).
    pub u: Vec<f64>,
    pub(crate) backend: Backend,
}

/// Error returned by [`QpProblem::new`] for dimensionally-inconsistent or
/// ill-ordered problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QpError {
    /// `P` is not square or does not match `q`.
    BadCost,
    /// `A`, `l`, `u` dimensions are inconsistent.
    BadConstraints,
    /// Some `l[i] > u[i]`.
    CrossedBounds,
}

impl std::fmt::Display for QpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpError::BadCost => write!(f, "cost dimensions are inconsistent"),
            QpError::BadConstraints => write!(f, "constraint dimensions are inconsistent"),
            QpError::CrossedBounds => write!(f, "some lower bound exceeds its upper bound"),
        }
    }
}

impl std::error::Error for QpError {}

impl QpProblem {
    /// Validates and assembles a QP from dense matrices (nonzero entries
    /// are kept; zeros are dropped from the pattern).
    ///
    /// # Errors
    ///
    /// Returns a [`QpError`] describing the first inconsistency.
    pub fn new(p: Mat, q: Vec<f64>, a: Mat, l: Vec<f64>, u: Vec<f64>) -> Result<Self, QpError> {
        Self::from_sparse(SparseMatrix::from_dense(&p), q, SparseMatrix::from_dense(&a), l, u)
    }

    /// Validates and assembles a QP from sparse matrices, preserving
    /// their structural patterns (explicit zeros included).
    ///
    /// # Errors
    ///
    /// Returns a [`QpError`] describing the first inconsistency.
    pub fn from_sparse(
        p: SparseMatrix,
        q: Vec<f64>,
        a: SparseMatrix,
        l: Vec<f64>,
        u: Vec<f64>,
    ) -> Result<Self, QpError> {
        let n = q.len();
        if p.rows() != n || p.cols() != n {
            return Err(QpError::BadCost);
        }
        let m = a.rows();
        if a.cols() != n || l.len() != m || u.len() != m {
            return Err(QpError::BadConstraints);
        }
        if l.iter().zip(&u).any(|(lo, hi)| lo > hi) {
            return Err(QpError::CrossedBounds);
        }
        Ok(QpProblem {
            p,
            q,
            a,
            l,
            u,
            backend: Backend::Auto,
        })
    }

    /// Overrides the KKT factorization backend (default [`Backend::Auto`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured backend selection.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The quadratic cost matrix `P` (CSC).
    pub fn p(&self) -> &SparseMatrix {
        &self.p
    }

    /// The constraint matrix `A` (CSC).
    pub fn a(&self) -> &SparseMatrix {
        &self.a
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.q.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.l.len()
    }

    /// Objective value `½xᵀPx + qᵀx` at `x`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let px = self.p.mul_vec(x);
        0.5 * dot(x, &px) + dot(&self.q, x)
    }

    /// Worst constraint violation at `x` (zero when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let ax = self.a.mul_vec(x);
        ax.iter()
            .zip(self.l.iter().zip(&self.u))
            .map(|(v, (lo, hi))| (lo - v).max(v - hi).max(0.0))
            .fold(0.0, f64::max)
    }
}

/// ADMM iteration parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpSettings {
    /// Step size ρ (constraint weight).
    pub rho: f64,
    /// Regularization σ added to `P` for factorization robustness.
    pub sigma: f64,
    /// Over-relaxation α in `(0, 2)`.
    pub alpha: f64,
    /// Maximum ADMM iterations.
    pub max_iters: usize,
    /// Absolute primal/dual residual tolerance.
    pub eps_abs: f64,
}

impl Default for QpSettings {
    fn default() -> Self {
        QpSettings {
            rho: 0.1,
            sigma: 1e-6,
            alpha: 1.6,
            max_iters: 4000,
            eps_abs: 1e-6,
        }
    }
}

/// Termination status of [`solve_qp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QpStatus {
    /// Residuals reached the tolerance.
    Solved,
    /// Iteration budget exhausted; `x` is the best iterate.
    MaxIterations,
    /// The solve hit non-recoverable numerics: the KKT matrix could not
    /// be made positive definite within the bounded regularization
    /// budget, or iterates became non-finite (NaN/∞ in the problem
    /// data). `x`/`y` are zeros and the residuals are `∞`; callers must
    /// treat the solution as unusable and degrade (the CO controller
    /// falls back to braking).
    NumericalError,
}

/// Per-solve factorization accounting, accumulated by [`solve_qp`] /
/// [`solve_qp_warm`] and surfaced through telemetry. All integer content,
/// hence deterministic for a deterministic solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QpDiagnostics {
    /// Diagonal regularization bumps escalated while factorizing.
    pub reg_bumps: u32,
    /// Numeric factorizations performed (initial + ρ-adaptations).
    pub factorizations: u32,
    /// Sparse symbolic analyses served from the workspace cache.
    pub symbolic_cache_hits: u32,
    /// Sparse symbolic analyses computed fresh.
    pub symbolic_rebuilds: u32,
    /// Whole-factorization cache reuses (identical scaled data).
    pub factor_cache_hits: u32,
}

impl QpDiagnostics {
    /// Adds another solve's accounting into this one (e.g. across the SCP
    /// passes of an MPC solve).
    pub fn absorb(&mut self, other: &QpDiagnostics) {
        self.reg_bumps += other.reg_bumps;
        self.factorizations += other.factorizations;
        self.symbolic_cache_hits += other.symbolic_cache_hits;
        self.symbolic_rebuilds += other.symbolic_rebuilds;
        self.factor_cache_hits += other.factor_cache_hits;
    }
}

/// Result of [`solve_qp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpSolution {
    /// Primal solution (projected to be feasible for box rows).
    pub x: Vec<f64>,
    /// Dual variables for the constraint rows.
    pub y: Vec<f64>,
    /// Termination status.
    pub status: QpStatus,
    /// Number of ADMM iterations performed.
    pub iterations: usize,
    /// Final primal residual `‖Ax − z‖∞`.
    pub primal_residual: f64,
    /// Final dual residual `‖Px + q + Aᵀy‖∞`.
    pub dual_residual: f64,
    /// Backend actually used for the KKT factorization (resolved — never
    /// [`Backend::Auto`]).
    #[serde(default)]
    pub backend: Backend,
    /// Factorization accounting for this solve.
    #[serde(default)]
    pub diagnostics: QpDiagnostics,
}

/// A primal/dual iterate carried between related solves (OSQP-style warm
/// starting). MPC re-solves nearly-identical problems every frame; starting
/// ADMM from the previous optimum typically cuts iterations severalfold.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QpWarmStart {
    /// Primal iterate from a previous solve (length `n`).
    pub x: Vec<f64>,
    /// Dual iterate from a previous solve (length `m`).
    pub y: Vec<f64>,
}

impl QpWarmStart {
    /// Captures the iterates of a finished solve.
    pub fn from_solution(sol: &QpSolution) -> Self {
        QpWarmStart {
            x: sol.x.clone(),
            y: sol.y.clone(),
        }
    }

    /// Whether this warm start fits a problem with `n` variables and `m`
    /// constraint rows.
    pub fn fits(&self, n: usize, m: usize) -> bool {
        self.x.len() == n && self.y.len() == m
    }
}

/// Reusable setup state cached across solves of structurally-similar
/// problems (same variable/constraint counts).
///
/// Caches, in the spirit of OSQP's setup/update split:
///
/// * the Ruiz scaling vectors `D`, `E` — equilibration is a change of
///   variables, so reusing the previous scaling on slightly-changed data
///   stays exact and skips the iterative scaling passes;
/// * the ρ-weighted Gram matrix `AᵀRA`, the KKT assembly maps and the
///   factorization of `P + σI + AᵀRA`, reused only while the scaled
///   `P`/`A` data, the equality-row pattern and σ are bit-identical;
/// * the **symbolic** sparse analysis (fill-reducing permutation +
///   elimination tree), which keys only on the KKT *pattern* and therefore
///   survives every value change — across ADMM ρ-adaptations, SCP passes,
///   and warm/cold re-solves of a frame only the numeric refactorization
///   runs;
/// * the adapted step size ρ from the previous solve, so later solves
///   start from the rebalanced value instead of re-learning it.
#[derive(Debug, Clone, Default)]
pub struct QpWorkspace {
    pub(crate) scaling: Option<(Vec<f64>, Vec<f64>)>,
    pub(crate) factor: Option<FactorCache>,
    pub(crate) symbolic: Option<Arc<SymbolicLdl>>,
    pub(crate) rho: Option<f64>,
}

/// The serializable slice of a [`QpWorkspace`]: exactly the carried state
/// that *changes solver iterates* and therefore must survive a session
/// checkpoint for bit-identical replay.
///
/// The cached Ruiz scaling is reused verbatim on slightly-changed data
/// (a change of variables, not a convergence tweak) and the adapted ρ
/// seeds the next solve's penalty, so both alter every subsequent
/// iterate. The factorization and symbolic caches are *not* captured:
/// they are recomputed bit-identically from the (scaled) problem data on
/// the first post-restore solve — dropping them costs one refactor, not
/// one ulp.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QpWorkspaceSnapshot {
    /// Cached Ruiz scaling vectors `D` (variables) and `E` (constraints).
    pub scaling: Option<(Vec<f64>, Vec<f64>)>,
    /// Adapted ADMM step size ρ carried from the previous solve.
    pub rho: Option<f64>,
}

/// A factorization bound to one of the two backends; both expose the same
/// allocation-free `solve_into`. One value lives per cache entry (never in
/// an array), so the variant size gap costs nothing and boxing would only
/// add a pointer chase to the hot solve path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Factor {
    Dense(Cholesky),
    Sparse(SparseLdl),
}

impl Factor {
    pub(crate) fn solve_into(&mut self, b: &[f64], out: &mut [f64]) {
        match self {
            Factor::Dense(c) => c.solve_into(b, out),
            Factor::Sparse(f) => f.solve_into(b, out),
        }
    }

    pub(crate) fn is_sparse(&self) -> bool {
        matches!(self, Factor::Sparse(_))
    }
}

#[derive(Debug, Clone)]
pub(crate) struct FactorCache {
    pub(crate) p: SparseMatrix,
    pub(crate) a: SparseMatrix,
    pub(crate) eq: Vec<bool>,
    pub(crate) sigma: f64,
    pub(crate) rho: f64,
    pub(crate) gram: SparseMatrix,
    pub(crate) kkt: SparseKkt,
    pub(crate) factor: Factor,
}

/// Stiffness multiplier applied to the ADMM penalty of equality rows
/// (`l = u`), as in OSQP.
const RHO_EQ_SCALE: f64 = 1e3;
/// Clamp range of every per-constraint penalty ρ_i.
pub(crate) const RHO_MIN: f64 = 1e-6;
/// See [`RHO_MIN`].
pub(crate) const RHO_MAX: f64 = 1e6;

/// Expands the scalar ρ into the per-constraint penalty vector: equality
/// rows get `ρ·RHO_EQ_SCALE`, everything clamped to `[RHO_MIN, RHO_MAX]`.
pub(crate) fn fill_rho_vec(rho: f64, eq: &[bool], out: &mut Vec<f64>) {
    out.clear();
    out.extend(eq.iter().map(|&is_eq| {
        let r = if is_eq { rho * RHO_EQ_SCALE } else { rho };
        r.clamp(RHO_MIN, RHO_MAX)
    }));
}

impl QpWorkspace {
    /// A fresh workspace (first solve runs the full setup).
    pub fn new() -> Self {
        QpWorkspace::default()
    }

    /// Drops all cached state (scaling, factor, symbolic analysis,
    /// adapted ρ).
    pub fn clear(&mut self) {
        self.scaling = None;
        self.factor = None;
        self.symbolic = None;
        self.rho = None;
    }

    /// The adapted ρ carried from the previous solve, if any.
    pub fn carried_rho(&self) -> Option<f64> {
        self.rho
    }

    /// The cached symbolic LDLᵀ analysis, if a sparse-backend solve has
    /// run through this workspace.
    pub fn symbolic(&self) -> Option<&Arc<SymbolicLdl>> {
        self.symbolic.as_ref()
    }

    /// Captures the iterate-affecting carried state (scaling + adapted ρ)
    /// for a session checkpoint. See [`QpWorkspaceSnapshot`].
    pub fn snapshot(&self) -> QpWorkspaceSnapshot {
        QpWorkspaceSnapshot {
            scaling: self.scaling.clone(),
            rho: self.rho,
        }
    }

    /// Rebuilds a workspace from a checkpoint. The factorization and
    /// symbolic caches start empty and are recomputed bit-identically on
    /// the first solve, so a restored workspace replays exactly like the
    /// captured one.
    pub fn from_snapshot(snap: &QpWorkspaceSnapshot) -> Self {
        QpWorkspace {
            scaling: snap.scaling.clone(),
            factor: None,
            symbolic: None,
            rho: snap.rho,
        }
    }
}

/// Solves a QP with ADMM (cold start, no state reuse).
///
/// The problem is first *equilibrated* (modified Ruiz scaling of rows and
/// columns, as in OSQP §5.1): ADMM's convergence rate degrades badly when
/// constraint rows or cost columns span orders of magnitude, which is the
/// normal situation for condensed MPC problems. The returned solution is
/// unscaled back to the original problem's variables and duals.
///
/// Never panics on a well-formed [`QpProblem`]; an indefinite `P` is
/// handled by the σ-regularization (the solution then corresponds to the
/// regularized problem, which is the standard OSQP behaviour). Data the
/// regularization cannot repair — NaN/∞-poisoned or structurally broken
/// matrices — terminates with [`QpStatus::NumericalError`] instead of
/// panicking or looping.
pub fn solve_qp(problem: &QpProblem, settings: &QpSettings) -> QpSolution {
    solve_qp_warm(problem, settings, None, &mut QpWorkspace::new())
}

/// Solves a QP with ADMM, warm-starting from a previous iterate and
/// reusing cached setup work from `workspace` where valid.
///
/// `warm` is ignored unless its dimensions fit the problem. Scaling reuse
/// keys on dimensions; factorization reuse additionally keys on the exact
/// scaled data, σ and ρ (the symbolic sparse analysis keys only on the
/// KKT pattern), so the result always corresponds to the problem actually
/// passed in.
pub fn solve_qp_warm(
    problem: &QpProblem,
    settings: &QpSettings,
    warm: Option<&QpWarmStart>,
    workspace: &mut QpWorkspace,
) -> QpSolution {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    // NaN-poisoned problem data fails fast, before any of it reaches the
    // equilibration or the factorization. This is not redundant with the
    // in-loop iterate check: NaN *bounds* would panic the hot loop's
    // `clamp` (min > max assert) before any residual is ever measured.
    if data_is_poisoned(problem) {
        workspace.clear();
        return numerical_error_solution(n, m, 0, false, QpDiagnostics::default());
    }
    let reuse_scaling = matches!(
        &workspace.scaling,
        Some((d, e)) if d.len() == n && e.len() == m
    );
    if !reuse_scaling {
        workspace.scaling = Some(compute_scaling(problem));
        workspace.factor = None;
        workspace.rho = None;
    }
    let (d, e) = workspace.scaling.as_ref().expect("scaling just ensured");
    let scaled = apply_scaling(problem, d, e);

    // scale the warm start into the equilibrated coordinates:
    // x = D·x̃ → x̃ = D⁻¹x; y = E·ỹ → ỹ = E⁻¹y. A primal of the right
    // length is useful even when the constraint rows changed (the dual
    // then restarts at zero), which is the common MPC re-solve case.
    let start = warm.filter(|w| w.x.len() == n).map(|w| {
        let x: Vec<f64> = w.x.iter().zip(d).map(|(xi, di)| xi / di).collect();
        let y: Vec<f64> = if w.y.len() == m {
            w.y.iter().zip(e).map(|(yi, ei)| yi / ei).collect()
        } else {
            vec![0.0; m]
        };
        let z = scaled.a.mul_vec(&x);
        (x, y, z)
    });

    let mut sol = solve_qp_scaled(&scaled, settings, start, workspace);
    if sol.status == QpStatus::NumericalError {
        // drop every cached artifact — scaling computed from poisoned
        // data would silently condition the next solve — and keep the
        // sentinel zeros/∞-residuals rather than "residuals" recomputed
        // at the all-zeros point
        workspace.clear();
        return sol;
    }
    let (d, e) = workspace.scaling.as_ref().expect("scaling retained");
    // unscale: x = D·x̃, y = E·ỹ
    for (x, di) in sol.x.iter_mut().zip(d) {
        *x *= di;
    }
    for (y, ei) in sol.y.iter_mut().zip(e) {
        *y *= ei;
    }
    // report residuals in original units (approximately): recompute
    sol.primal_residual = problem.max_violation(&sol.x);
    let px = problem.p.mul_vec(&sol.x);
    let aty = problem.a.t_mul_vec(&sol.y);
    sol.dual_residual = (0..problem.num_vars())
        .map(|i| (px[i] + problem.q[i] + aty[i]).abs())
        .fold(0.0, f64::max);
    sol
}

/// Modified Ruiz equilibration passes: returns the column scales `D` and
/// row scales `E` such that `DPD` / `EAD` have near-unit row/column norms.
///
/// Each pass computes all row (then column) norms of the current scaled
/// data before applying the updates, so the result is independent of
/// storage order — both backends see the identical equilibration.
pub(crate) fn compute_scaling(problem: &QpProblem) -> (Vec<f64>, Vec<f64>) {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut d = vec![1.0f64; n];
    let mut e = vec![1.0f64; m];
    let mut p = problem.p.clone();
    let mut a = problem.a.clone();
    let clamp = |v: f64| v.clamp(1e-6, 1e6);
    // The *cumulative* scale per row/column is bounded (OSQP's
    // MIN_SCALING/MAX_SCALING): per-pass clamps alone still compound
    // across passes, and a near-zero constraint row can otherwise pick
    // up a ~1e24 scale. The workspace reuses scaling vectors on
    // changed data of the same shape (an exact change of variables),
    // which is only safe because this bound caps how badly a stale
    // scale can condition new rows.
    let bound = |v: f64| v.clamp(1e-4, 1e4);
    let mut row_norm = vec![0.0f64; m];
    let mut col_a = vec![0.0f64; n];
    let mut col_p = vec![0.0f64; n];
    let mut row_s = vec![1.0f64; m];
    let mut col_s = vec![1.0f64; n];
    for _ in 0..8 {
        // row norms of A
        a.row_abs_max_into(&mut row_norm);
        for i in 0..m {
            row_s[i] = if row_norm[i] > 0.0 {
                let s = bound(e[i] / clamp(row_norm[i]).sqrt()) / e[i];
                e[i] *= s;
                s
            } else {
                1.0
            };
        }
        a.scale_rows(&row_s);
        // column norms over A and P
        a.col_abs_max_into(&mut col_a);
        p.col_abs_max_into(&mut col_p);
        for j in 0..n {
            let c = col_a[j].max(col_p[j]);
            col_s[j] = if c > 0.0 {
                let s = bound(d[j] / clamp(c).sqrt()) / d[j];
                d[j] *= s;
                s
            } else {
                1.0
            };
        }
        a.scale_cols(&col_s);
        // symmetric scaling of P: rows and columns
        p.scale_rows(&col_s);
        p.scale_cols(&col_s);
    }
    (d, e)
}

/// Applies scaling vectors to a problem: the scaled program is
/// `min ½x̃ᵀ(DPD)x̃ + (Dq)ᵀx̃  s.t.  El ≤ (EAD)x̃ ≤ Eu` with `x = Dx̃`.
pub(crate) fn apply_scaling(problem: &QpProblem, d: &[f64], e: &[f64]) -> QpProblem {
    let mut p = problem.p.clone();
    p.scale_rows(d);
    p.scale_cols(d);
    let mut a = problem.a.clone();
    a.scale_rows(e);
    a.scale_cols(d);
    let q: Vec<f64> = problem.q.iter().zip(d).map(|(qi, di)| qi * di).collect();
    let l: Vec<f64> = problem.l.iter().zip(e).map(|(li, ei)| li * ei).collect();
    let u: Vec<f64> = problem.u.iter().zip(e).map(|(ui, ei)| ui * ei).collect();
    QpProblem {
        p,
        q,
        a,
        l,
        u,
        backend: problem.backend,
    }
}

/// All per-problem mutable state of one ADMM solve: iterates, the
/// per-constraint penalty, residuals, and the hot-loop scratch.
///
/// Extracted from [`solve_qp_scaled`] so the batched solver
/// ([`crate::batch`]) advances each block with *literally the same*
/// per-iteration code — bitwise equality between a batched block and a
/// sequential solve holds by construction, not by tolerance.
pub(crate) struct AdmmState {
    pub(crate) x: Vec<f64>,
    pub(crate) y: Vec<f64>,
    pub(crate) z: Vec<f64>,
    pub(crate) rho: f64,
    pub(crate) rho_v: Vec<f64>,
    pub(crate) eq: Vec<bool>,
    pub(crate) primal_res: f64,
    pub(crate) dual_res: f64,
    // hot-loop scratch, allocated once per solve — the per-iteration
    // body is allocation-free
    rhs: Vec<f64>,
    x_tilde: Vec<f64>,
    tmp_m: Vec<f64>,
    z_tilde: Vec<f64>,
    px: Vec<f64>,
    aty: Vec<f64>,
}

impl AdmmState {
    /// State for one (already scaled) problem, starting from `start`
    /// (cold zeros otherwise) with the resolved initial ρ.
    pub(crate) fn new(
        problem: &QpProblem,
        rho: f64,
        eq: Vec<bool>,
        start: Option<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    ) -> AdmmState {
        let n = problem.num_vars();
        let m = problem.num_constraints();
        let (x, y, z) = start.unwrap_or_else(|| (vec![0.0; n], vec![0.0; m], vec![0.0; m]));
        let mut st = AdmmState {
            x,
            y,
            z,
            rho,
            rho_v: Vec::with_capacity(m),
            eq,
            primal_res: f64::INFINITY,
            dual_res: f64::INFINITY,
            rhs: vec![0.0; n],
            x_tilde: vec![0.0; n],
            tmp_m: vec![0.0; m],
            z_tilde: vec![0.0; m],
            px: vec![0.0; n],
            aty: vec![0.0; n],
        };
        fill_rho_vec(st.rho, &st.eq, &mut st.rho_v);
        st
    }

    /// Installs a rebalanced ρ and refreshes the per-constraint vector.
    pub(crate) fn set_rho(&mut self, rho: f64) {
        self.rho = rho;
        fill_rho_vec(self.rho, &self.eq, &mut self.rho_v);
    }

    /// One ADMM iteration: x̃-update, over-relaxation, projection and
    /// dual update. `solve` applies the current KKT factor
    /// (`out = M⁻¹·rhs`); everything else is element-wise and runs
    /// through the bitwise-preserving [`crate::simd`] kernels (the
    /// clamp-projection stays scalar: its branch structure does not
    /// vectorize without changing NaN semantics).
    pub(crate) fn iterate(
        &mut self,
        problem: &QpProblem,
        settings: &QpSettings,
        solve: &mut dyn FnMut(&[f64], &mut [f64]),
    ) {
        let m = problem.num_constraints();
        // x̃-update: (P + σI + AᵀRA) x̃ = σx − q + Aᵀ(Rz − y)
        crate::simd::mul_sub(&mut self.tmp_m, &self.rho_v, &self.z, &self.y);
        problem.a.t_mul_vec_into(&self.tmp_m, &mut self.rhs);
        crate::simd::add_scaled_sub(&mut self.rhs, settings.sigma, &self.x, &problem.q);
        solve(&self.rhs, &mut self.x_tilde);
        problem.a.mul_vec_into(&self.x_tilde, &mut self.z_tilde);

        // over-relaxation on both x and z (OSQP alg. 1)
        let alpha = settings.alpha;
        crate::simd::relax(&mut self.x, alpha, &self.x_tilde);
        for i in 0..m {
            let relaxed = alpha * self.z_tilde[i] + (1.0 - alpha) * self.z[i];
            let zi = (relaxed + self.y[i] / self.rho_v[i]).clamp(problem.l[i], problem.u[i]);
            self.y[i] += self.rho_v[i] * (relaxed - zi);
            self.z[i] = zi;
        }
    }

    /// Residual measurement at the current iterate (the every-10-iters
    /// block of the hot loop). The max-folds stay scalar on purpose:
    /// `f64::max` *skips* NaN where the AVX2 max does not, and
    /// [`AdmmState::poisoned`] relies on exactly that behaviour.
    pub(crate) fn measure_residuals(&mut self, problem: &QpProblem) {
        problem.a.mul_vec_into(&self.x, &mut self.tmp_m);
        self.primal_res = self
            .tmp_m
            .iter()
            .zip(&self.z)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        problem.p.mul_vec_into(&self.x, &mut self.px);
        problem.a.t_mul_vec_into(&self.y, &mut self.aty);
        self.dual_res = (0..problem.num_vars())
            .map(|i| (self.px[i] + problem.q[i] + self.aty[i]).abs())
            .fold(0.0, f64::max);
    }

    /// NaN/∞-poisoned iterates (a NaN in the problem data, a NaN cost
    /// matrix whose dense Cholesky spuriously "succeeded" — NaN
    /// comparisons are all false) must not be consumed by anything
    /// downstream. The residual folds skip NaN (a poisoned residual
    /// reads 0.0), so the iterate itself is checked too.
    pub(crate) fn poisoned(&self) -> bool {
        !self.primal_res.is_finite()
            || !self.dual_res.is_finite()
            || self.x.iter().any(|v| !v.is_finite())
    }

    /// Whether the measured residuals meet the tolerance.
    pub(crate) fn converged(&self, eps_abs: f64) -> bool {
        self.primal_res < eps_abs && self.dual_res < eps_abs
    }

    /// Adaptive-ρ decision (OSQP §5.2): rebalance when the residuals
    /// diverge by more than an order of magnitude. Returns the new ρ only
    /// when it actually changed (i.e. a refactorization is due).
    pub(crate) fn rho_rebalance(&self, settings: &QpSettings) -> Option<f64> {
        let scale = if self.primal_res > 10.0 * self.dual_res && self.primal_res > settings.eps_abs
        {
            Some(self.rho * 5.0)
        } else if self.dual_res > 10.0 * self.primal_res && self.dual_res > settings.eps_abs {
            Some(self.rho / 5.0)
        } else {
            None
        };
        let new_rho = scale?.clamp(RHO_MIN, RHO_MAX);
        ((new_rho - self.rho).abs() > f64::EPSILON).then_some(new_rho)
    }
}

/// The core ADMM loop on an (already scaled) problem, reusing the cached
/// Gram matrix, KKT assembly and factorization from `workspace` when the
/// scaled data, σ and ρ all match.
fn solve_qp_scaled(
    problem: &QpProblem,
    settings: &QpSettings,
    start: Option<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    workspace: &mut QpWorkspace,
) -> QpSolution {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let init_rho = settings.rho.clamp(RHO_MIN, RHO_MAX);
    // equality rows (l = u) get the stiffer penalty; scaling multiplies
    // both bounds by the same row scale, so the pattern is scale-invariant
    let eq: Vec<bool> = problem.l.iter().zip(&problem.u).map(|(lo, hi)| lo == hi).collect();

    // KKT matrix M = P + σI + AᵀRA with R = diag(ρ_i), factorized once
    // per ρ value. The full setup (weighted Gram, assembly maps, factor)
    // is reused verbatim when the scaled data and equality pattern are
    // bit-identical; the backend choice is part of the cache (it depends
    // only on problem shape + pattern, which the data equality implies).
    let mut diag = QpDiagnostics::default();
    let cached = workspace.factor.take();
    let (mut gram, mut kkt, mut factor, rho) = match cached {
        Some(c)
            if c.sigma == settings.sigma
                && c.p == problem.p
                && c.a == problem.a
                && c.eq == eq
                && c.factor.is_sparse()
                    == choose_sparse(problem.backend, n, c.kkt.matrix().fill_ratio()) =>
        {
            // identical scaled data: the previously-adapted ρ applies, so
            // the cached factor can be reused verbatim
            diag.factor_cache_hits += 1;
            let rho = c.rho;
            (c.gram, c.kkt, c.factor, rho)
        }
        _ => {
            let mut rho_v = Vec::with_capacity(m);
            fill_rho_vec(init_rho, &eq, &mut rho_v);
            let gram = problem.a.gram_weighted(&rho_v);
            let mut kkt = SparseKkt::new(&problem.p, &gram);
            let use_sparse = choose_sparse(problem.backend, n, kkt.matrix().fill_ratio());
            let factor = build_factor(
                &mut kkt,
                &problem.p,
                &gram,
                settings.sigma,
                use_sparse,
                &mut workspace.symbolic,
                None,
                &mut diag,
            );
            let Some(factor) = factor else {
                // the KKT matrix cannot be factorized at any bump: report
                // the failure without caching anything from this solve
                workspace.rho = None;
                return numerical_error_solution(n, m, 0, use_sparse, diag);
            };
            (gram, kkt, factor, init_rho)
        }
    };
    let use_sparse = factor.is_sparse();

    let mut st = AdmmState::new(problem, rho, eq, start);
    let mut iters = 0;
    let mut status = QpStatus::MaxIterations;

    for it in 0..settings.max_iters {
        iters = it + 1;
        st.iterate(problem, settings, &mut |b, out| factor.solve_into(b, out));

        if it % 10 == 9 || it == settings.max_iters - 1 {
            st.measure_residuals(problem);
            if st.poisoned() {
                status = QpStatus::NumericalError;
                break;
            }
            if st.converged(settings.eps_abs) {
                status = QpStatus::Solved;
                break;
            }
            if let Some(new_rho) = st.rho_rebalance(settings) {
                st.set_rho(new_rho);
                // the weighted Gram changes with R; its pattern does
                // not, so the assembly maps and symbolic analysis
                // both survive and only the numeric refactor runs
                gram = problem.a.gram_weighted(&st.rho_v);
                match build_factor(
                    &mut kkt,
                    &problem.p,
                    &gram,
                    settings.sigma,
                    use_sparse,
                    &mut workspace.symbolic,
                    Some(factor),
                    &mut diag,
                ) {
                    Some(f) => factor = f,
                    None => {
                        workspace.rho = None;
                        return numerical_error_solution(n, m, iters, use_sparse, diag);
                    }
                }
            }
        }
    }

    if status == QpStatus::NumericalError {
        // poisoned iterates: cache nothing from this solve
        workspace.rho = None;
        return numerical_error_solution(n, m, iters, use_sparse, diag);
    }

    workspace.rho = Some(st.rho);
    let backend = if use_sparse {
        Backend::Sparse
    } else {
        Backend::Dense
    };
    workspace.factor = Some(FactorCache {
        p: problem.p.clone(),
        a: problem.a.clone(),
        eq: st.eq.clone(),
        sigma: settings.sigma,
        rho: st.rho,
        gram,
        kkt,
        factor,
    });

    QpSolution {
        x: st.x,
        y: st.y,
        status,
        iterations: iters,
        primal_residual: st.primal_res,
        dual_residual: st.dual_res,
        backend,
        diagnostics: diag,
    }
}

/// Whether any problem entry is NaN, or a cost/matrix entry non-finite
/// (constraint bounds may legitimately be ±∞; nothing else may).
pub(crate) fn data_is_poisoned(problem: &QpProblem) -> bool {
    problem.q.iter().any(|v| !v.is_finite())
        || problem.l.iter().any(|v| v.is_nan())
        || problem.u.iter().any(|v| v.is_nan())
        || problem.p.values().iter().any(|v| !v.is_finite())
        || problem.a.values().iter().any(|v| !v.is_finite())
}

/// The canonical [`QpStatus::NumericalError`] result: zero iterates (the
/// only point guaranteed finite), infinite residuals, nothing cached.
pub(crate) fn numerical_error_solution(
    n: usize,
    m: usize,
    iterations: usize,
    use_sparse: bool,
    diagnostics: QpDiagnostics,
) -> QpSolution {
    QpSolution {
        x: vec![0.0; n],
        y: vec![0.0; m],
        status: QpStatus::NumericalError,
        iterations,
        primal_residual: f64::INFINITY,
        dual_residual: f64::INFINITY,
        backend: if use_sparse {
            Backend::Sparse
        } else {
            Backend::Dense
        },
        diagnostics,
    }
}

/// Assembles `K = P + (σ + bump)·I + AᵀRA` (the Gram matrix arrives
/// already ρ-weighted) and factorizes it with the selected backend,
/// escalating the diagonal bump while the matrix is not positive
/// definite.
///
/// On the sparse path the symbolic analysis is taken from (or installed
/// into) `symbolic`, and the numeric storage of `prev` is reused in place
/// when it was built for the same analysis — the ρ-adaptation path then
/// allocates nothing beyond the re-weighted Gram.
///
/// Returns `None` when the bump escalation exhausts its budget without
/// producing a positive-definite factor — a pathological (typically
/// NaN-poisoned) cost matrix. This is a status, not a panic: the caller
/// reports [`QpStatus::NumericalError`] and the stack degrades gracefully.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_factor(
    kkt: &mut SparseKkt,
    p: &SparseMatrix,
    gram: &SparseMatrix,
    sigma: f64,
    use_sparse: bool,
    symbolic: &mut Option<Arc<SymbolicLdl>>,
    prev: Option<Factor>,
    diag: &mut QpDiagnostics,
) -> Option<Factor> {
    let mut reuse = match prev {
        Some(Factor::Sparse(f)) => Some(f),
        _ => None,
    };
    let mut out = None;
    let ok = escalate_bumps(kkt, p, gram, sigma, diag, |k, diag| {
        if use_sparse {
            let sym = match symbolic.as_ref() {
                Some(s) if s.matches(k) => {
                    diag.symbolic_cache_hits += 1;
                    s.clone()
                }
                _ => {
                    let s = SymbolicLdl::analyze(k);
                    *symbolic = Some(s.clone());
                    diag.symbolic_rebuilds += 1;
                    s
                }
            };
            let attempt = match reuse.take() {
                Some(mut f) if Arc::ptr_eq(f.symbolic(), &sym) => f.refactor(k).map(|()| f),
                _ => SparseLdl::factor(sym, k),
            };
            if let Ok(f) = attempt {
                if f.is_positive_definite() {
                    out = Some(Factor::Sparse(f));
                    return true;
                }
                // quasidefinite/indefinite: keep the storage, bump and retry
                reuse = Some(f);
            }
            false
        } else if let Ok(f) = k.to_dense().cholesky() {
            out = Some(Factor::Dense(f));
            true
        } else {
            false
        }
    });
    if ok {
        out
    } else {
        None
    }
}

/// The shared regularization-bump escalation: assembles
/// `K = P + (σ + bump)·I + AᵀRA` and calls `attempt` at each bump until
/// it reports success or the budget runs out. Used by [`build_factor`]
/// and the batched per-block factorization ([`crate::batch`]), so both
/// walk the identical `σ, σ+1e-9, σ+1.1e-8, …` schedule.
pub(crate) fn escalate_bumps(
    kkt: &mut SparseKkt,
    p: &SparseMatrix,
    gram: &SparseMatrix,
    sigma: f64,
    diag: &mut QpDiagnostics,
    mut attempt: impl FnMut(&SparseMatrix, &mut QpDiagnostics) -> bool,
) -> bool {
    let mut bump = 0.0f64;
    let mut step = 1e-9;
    loop {
        let k = kkt.assemble(p, gram, sigma + bump, 1.0);
        diag.factorizations += 1;
        if attempt(k, diag) {
            return true;
        }
        // a bump budget spanning 15 decades: anything a finite diagonal
        // shift can repair is repaired well before this; what remains is
        // non-finite or structurally broken data
        if step >= 1e6 {
            return false;
        }
        bump += step;
        step *= 10.0;
        diag.reg_bumps += 1;
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    fn settings() -> QpSettings {
        QpSettings::default()
    }

    #[test]
    fn unconstrained_minimum() {
        // min (x-3)²  → x = 3; constraint row is vacuous
        let qp = QpProblem::new(
            Mat::diag(&[2.0]),
            vec![-6.0],
            Mat::identity(1),
            vec![-1e9],
            vec![1e9],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!((sol.x[0] - 3.0).abs() < 1e-4, "x = {}", sol.x[0]);
    }

    #[test]
    fn active_box_constraint() {
        // min (x-3)² s.t. x ≤ 1 → x = 1
        let qp = QpProblem::new(
            Mat::diag(&[2.0]),
            vec![-6.0],
            Mat::identity(1),
            vec![-1e9],
            vec![1.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
        // KKT: gradient 2x-6 = -4 balanced by dual ≈ 4 on the upper bound
        assert!((sol.y[0] + (2.0 * sol.x[0] - 6.0)).abs() < 1e-3);
    }

    #[test]
    fn equality_constraint_via_tight_bounds() {
        // min x² + y² s.t. x + y = 2 → x = y = 1
        let qp = QpProblem::new(
            Mat::diag(&[2.0, 2.0]),
            vec![0.0, 0.0],
            Mat::from_rows(&[&[1.0, 1.0]]),
            vec![2.0],
            vec![2.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
        assert!((sol.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn projection_onto_halfspace() {
        // min ‖x − (2, 2)‖² s.t. x₀ + x₁ ≤ 2 → x = (1, 1)
        let qp = QpProblem::new(
            Mat::diag(&[2.0, 2.0]),
            vec![-4.0, -4.0],
            Mat::from_rows(&[&[1.0, 1.0]]),
            vec![-1e9],
            vec![2.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!((sol.x[0] - 1.0).abs() < 1e-3);
        assert!((sol.x[1] - 1.0).abs() < 1e-3);
        assert!(qp.max_violation(&sol.x) < 1e-4);
    }

    #[test]
    fn multi_constraint_qp_kkt_residuals() {
        // a less trivial QP: coupled cost, two inequality rows, one box
        let p = Mat::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 0.5], &[0.0, 0.5, 2.0]]);
        let q = vec![-1.0, 2.0, -3.0];
        let a = Mat::from_rows(&[&[1.0, 1.0, 1.0], &[1.0, -1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let l = vec![-1.0, -2.0, -0.5];
        let u = vec![1.5, 2.0, 0.5];
        let qp = QpProblem::new(p, q, a, l, u).unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!(qp.max_violation(&sol.x) < 1e-4);
        assert!(sol.primal_residual < 1e-5);
        assert!(sol.dual_residual < 1e-5);
        // objective below any feasible probe point
        let probes = [
            vec![0.0, 0.0, 0.0],
            vec![0.5, -0.5, 0.5],
            vec![-0.3, 0.2, -0.5],
        ];
        for probe in probes {
            if qp.max_violation(&probe) < 1e-9 {
                assert!(qp.objective(&sol.x) <= qp.objective(&probe) + 1e-6);
            }
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            QpProblem::new(
                Mat::zeros(2, 3),
                vec![0.0, 0.0],
                Mat::identity(2),
                vec![0.0; 2],
                vec![0.0; 2]
            )
            .unwrap_err(),
            QpError::BadCost
        );
        assert_eq!(
            QpProblem::new(
                Mat::identity(2),
                vec![0.0, 0.0],
                Mat::identity(2),
                vec![0.0; 3],
                vec![0.0; 3]
            )
            .unwrap_err(),
            QpError::BadConstraints
        );
        assert_eq!(
            QpProblem::new(
                Mat::identity(1),
                vec![0.0],
                Mat::identity(1),
                vec![1.0],
                vec![-1.0]
            )
            .unwrap_err(),
            QpError::CrossedBounds
        );
    }

    #[test]
    fn indefinite_cost_is_regularized_not_fatal() {
        // P has a negative eigenvalue; solver must still terminate.
        let qp = QpProblem::new(
            Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]),
            vec![0.0, 0.0],
            Mat::identity(2),
            vec![-1.0, -1.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!(sol.x.iter().all(|v| v.is_finite()));
        assert!(qp.max_violation(&sol.x) < 1e-3);
    }

    #[test]
    fn indefinite_cost_is_regularized_not_fatal_sparse() {
        // the regularization-bump escalation must also work on the
        // sparse LDLᵀ path (negative pivots → bump → retry)
        let qp = QpProblem::new(
            Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]),
            vec![0.0, 0.0],
            Mat::identity(2),
            vec![-1.0, -1.0],
            vec![1.0, 1.0],
        )
        .unwrap()
        .with_backend(Backend::Sparse);
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.backend, Backend::Sparse);
        assert!(sol.x.iter().all(|v| v.is_finite()));
        assert!(qp.max_violation(&sol.x) < 1e-3);
    }

    #[test]
    fn mpc_scale_problem_solves_quickly() {
        // tracking QP with 40 variables and 80 rows, diagonal-dominant
        let n = 40;
        let p = Mat::diag(&vec![2.0; n]);
        let q: Vec<f64> = (0..n).map(|i| -((i % 7) as f64) * 0.1).collect();
        let mut rows = Mat::zeros(2 * n, n);
        for i in 0..n {
            *rows.at_mut(i, i) = 1.0; // box
            *rows.at_mut(n + i, i) = 1.0;
            if i + 1 < n {
                *rows.at_mut(n + i, i + 1) = -1.0; // rate limit
            }
        }
        let l = vec![-1.0; 2 * n];
        let u = vec![1.0; 2 * n];
        let qp = QpProblem::new(p, q, rows, l, u).unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!(qp.max_violation(&sol.x) < 1e-4);
    }

    /// MPC-like tracking QP with `n` variables, a perturbable linear
    /// term, boxes and rate limits — stands in for consecutive frames.
    fn tracking_qp(n: usize, drift: f64) -> QpProblem {
        let p = Mat::diag(&vec![2.0; n]);
        // strong pull so many boxes and rate limits are active: the cold
        // solve has to discover the active set, the warm one starts on it
        let q: Vec<f64> = (0..n)
            .map(|i| -((i % 7) as f64) * 1.5 + drift * (1.0 + (i % 3) as f64))
            .collect();
        let mut rows = Mat::zeros(2 * n, n);
        for i in 0..n {
            *rows.at_mut(i, i) = 1.0;
            *rows.at_mut(n + i, i) = 1.0;
            if i + 1 < n {
                *rows.at_mut(n + i, i + 1) = -1.0;
            }
        }
        QpProblem::new(p, q, rows, vec![-1.0; 2 * n], vec![1.0; 2 * n]).unwrap()
    }

    #[test]
    fn auto_selects_sparse_on_banded_and_dense_on_small() {
        // 40-variable banded tracking QP: n ≥ 30 with a tridiagonal-ish
        // KKT → sparse; tiny problems stay dense
        let banded = tracking_qp(40, 0.0);
        let sol = solve_qp(&banded, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert_eq!(sol.backend, Backend::Sparse);
        let small = tracking_qp(6, 0.0);
        let sol = solve_qp(&small, &settings());
        assert_eq!(sol.backend, Backend::Dense);
    }

    #[test]
    fn forced_backends_agree() {
        let qp = tracking_qp(40, 0.3);
        let s = settings();
        let dense = solve_qp(&qp.clone().with_backend(Backend::Dense), &s);
        let sparse = solve_qp(&qp.clone().with_backend(Backend::Sparse), &s);
        assert_eq!(dense.backend, Backend::Dense);
        assert_eq!(sparse.backend, Backend::Sparse);
        assert_eq!(dense.status, sparse.status);
        for (a, b) in dense.x.iter().zip(&sparse.x) {
            assert!((a - b).abs() < 1e-4, "dense {a} vs sparse {b}");
        }
        let od = qp.objective(&dense.x);
        let os = qp.objective(&sparse.x);
        assert!((od - os).abs() < 1e-6 * (1.0 + od.abs()), "{od} vs {os}");
    }

    #[test]
    fn from_sparse_keeps_structural_zeros() {
        // a structural zero in A must survive into the problem pattern
        let mut pa = TripletBuilder::new(2, 2);
        pa.push(0, 0, 2.0);
        pa.push(1, 1, 2.0);
        let mut aa = TripletBuilder::new(2, 2);
        aa.push(0, 0, 1.0);
        aa.push(0, 1, 0.0); // structural slot, numerically zero
        aa.push(1, 1, 1.0);
        let qp = QpProblem::from_sparse(
            pa.build(),
            vec![-2.0, -2.0],
            aa.build(),
            vec![-1.0, -1.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert_eq!(qp.a().nnz(), 3);
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
        assert!((sol.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn symbolic_cache_survives_value_updates() {
        // re-solving same-pattern problems through one workspace must
        // analyze the KKT pattern exactly once
        let s = settings();
        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(
            &tracking_qp(40, 0.0).with_backend(Backend::Sparse),
            &s,
            None,
            &mut ws,
        );
        assert_eq!(first.backend, Backend::Sparse);
        let sym = ws.symbolic().expect("sparse solve populates the cache").clone();
        let second = solve_qp_warm(
            &tracking_qp(40, 0.5).with_backend(Backend::Sparse),
            &s,
            None,
            &mut ws,
        );
        assert_eq!(second.status, QpStatus::Solved);
        let sym2 = ws.symbolic().expect("cache retained");
        assert!(Arc::ptr_eq(&sym, sym2), "same pattern must not re-analyze");
    }

    #[test]
    fn warm_start_meets_kkt_tolerances_with_fewer_iterations() {
        // frame 2 is a small perturbation of frame 1: warm-started ADMM
        // must hit the same KKT tolerances in (strictly) fewer iterations
        let frame1 = tracking_qp(40, 0.0);
        let frame2 = tracking_qp(40, 0.01);
        let s = settings();

        let cold = solve_qp(&frame2, &s);
        assert_eq!(cold.status, QpStatus::Solved);

        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(&frame1, &s, None, &mut ws);
        let warm = QpWarmStart::from_solution(&first);
        let second = solve_qp_warm(&frame2, &s, Some(&warm), &mut ws);

        assert_eq!(second.status, QpStatus::Solved);
        // KKT quality is as good as the cold solve's tolerances …
        assert!(frame2.max_violation(&second.x) < 1e-4);
        assert!(second.primal_residual < 1e-4);
        // … with measurably fewer ADMM iterations
        assert!(
            second.iterations < cold.iterations,
            "warm {} vs cold {}",
            second.iterations,
            cold.iterations
        );
        // and the two solves agree on the optimum
        for (a, b) in second.x.iter().zip(&cold.x) {
            assert!((a - b).abs() < 1e-3, "warm {a} vs cold {b}");
        }
    }

    #[test]
    fn workspace_factor_reuse_is_exact() {
        // solving the identical problem twice through one workspace must
        // reproduce the cold solution (cache reuse changes no results)
        let qp = tracking_qp(12, 0.0);
        let s = settings();
        let cold = solve_qp(&qp, &s);
        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(&qp, &s, None, &mut ws);
        assert_eq!(first.x, cold.x);
        assert!(ws.carried_rho().is_some());
        let warm = QpWarmStart::from_solution(&first);
        let again = solve_qp_warm(&qp, &s, Some(&warm), &mut ws);
        assert_eq!(again.status, QpStatus::Solved);
        assert!(again.iterations <= first.iterations);
        for (a, b) in again.x.iter().zip(&cold.x) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn warm_start_with_stale_dual_dimensions_still_solves() {
        // constraint rows changed between frames (MPC collision rows come
        // and go): the primal is reused, the dual restarts at zero
        let frame1 = tracking_qp(10, 0.0);
        let s = settings();
        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(&frame1, &s, None, &mut ws);
        let warm = QpWarmStart::from_solution(&first);

        // same variables, one extra constraint row
        let mut rows = Mat::zeros(21, 10);
        for i in 0..10 {
            *rows.at_mut(i, i) = 1.0;
            *rows.at_mut(10 + i, i) = 1.0;
        }
        *rows.at_mut(20, 0) = 1.0;
        *rows.at_mut(20, 1) = 1.0;
        let frame2 = QpProblem::new(
            Mat::diag(&[2.0; 10]),
            frame1.q.clone(),
            rows,
            vec![-1.0; 21],
            vec![1.0; 21],
        )
        .unwrap();
        let sol = solve_qp_warm(&frame2, &s, Some(&warm), &mut ws);
        assert_eq!(sol.status, QpStatus::Solved);
        assert!(frame2.max_violation(&sol.x) < 1e-4);
    }

    #[test]
    fn scaling_reuse_survives_degenerate_then_regular_rows() {
        // Regression (conformance fuzzer, seed 114): frame 1 has a
        // near-zero constraint row, whose Ruiz scale must stay bounded;
        // frame 2 reuses the cached scaling vectors on a same-shape
        // problem where that row is regular. Unbounded cumulative
        // scaling (~1e24) made the reused-scaling KKT matrix so ill-
        // conditioned that Cholesky failed at every regularization and
        // the solver panicked.
        let n = 6;
        let s = settings();
        let make = |row_scale: f64| {
            let mut rows = Mat::zeros(n + 1, n);
            for i in 0..n {
                *rows.at_mut(i, i) = 1.0;
            }
            // the troublesome row: near-zero in frame 1, regular in frame 2
            *rows.at_mut(n, 0) = row_scale;
            *rows.at_mut(n, 1) = row_scale;
            let mut l = vec![-1.0; n + 1];
            let mut u = vec![1.0; n + 1];
            l[n] = -1e9;
            u[n] = 1e9;
            QpProblem::new(Mat::diag(&vec![2.0; n]), vec![-1.0; n], rows, l, u).unwrap()
        };
        let frame1 = make(1e-30);
        let frame2 = make(1.0);

        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(&frame1, &s, None, &mut ws);
        assert_eq!(first.status, QpStatus::Solved);
        let warm = QpWarmStart::from_solution(&first);
        let second = solve_qp_warm(&frame2, &s, Some(&warm), &mut ws);
        assert_eq!(second.status, QpStatus::Solved);
        assert!(frame2.max_violation(&second.x) < 1e-4);
        // both frames share the unconstrained optimum x_i = 0.5
        for v in &second.x {
            assert!((v - 0.5).abs() < 1e-3, "x = {v}");
        }
    }

    /// A QP whose cost matrix is NaN-poisoned (what an upstream
    /// linearization bug would produce).
    fn nan_cost_qp(backend: Backend) -> QpProblem {
        let mut p = Mat::diag(&[2.0; 4]);
        *p.at_mut(1, 1) = f64::NAN;
        QpProblem::new(p, vec![0.0; 4], Mat::identity(4), vec![-1.0; 4], vec![1.0; 4])
            .unwrap()
            .with_backend(backend)
    }

    #[test]
    fn nan_cost_matrix_is_a_status_not_a_panic() {
        // Regression: the sparse LDLᵀ sees NaN pivots as "not positive
        // definite" and the regularization loop escalated its diagonal
        // bump forever, ending in a panic; the dense Cholesky "succeeds"
        // (NaN comparisons are all false) and poisoned the iterates
        // instead. Both backends must now report NumericalError.
        for backend in [Backend::Dense, Backend::Sparse] {
            let sol = solve_qp(&nan_cost_qp(backend), &settings());
            assert_eq!(sol.status, QpStatus::NumericalError, "{backend:?}");
            assert!(sol.x.iter().all(|v| *v == 0.0), "{backend:?}");
            assert!(sol.primal_residual.is_infinite(), "{backend:?}");
            assert!(sol.dual_residual.is_infinite(), "{backend:?}");
        }
    }

    #[test]
    fn nan_linear_cost_is_a_status_not_a_panic() {
        let qp = QpProblem::new(
            Mat::diag(&[2.0, 2.0]),
            vec![f64::NAN, 0.0],
            Mat::identity(2),
            vec![-1.0; 2],
            vec![1.0; 2],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::NumericalError);
        assert!(sol.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bump_budget_is_bounded_on_unfactorizable_kkt() {
        // −1e300 on the diagonal is finite (so it passes the upfront
        // poison check) but stays ~−1e292 after the bounded equilibration
        // — beyond what any bump in the budget (~1e5) can repair. The
        // escalation must stop at its budget with a status, not loop or
        // panic, and the diagnostics must show it ran.
        for backend in [Backend::Dense, Backend::Sparse] {
            let qp = QpProblem::new(
                Mat::diag(&[-1e300, -1e300]),
                vec![0.0; 2],
                Mat::identity(2),
                vec![-1.0; 2],
                vec![1.0; 2],
            )
            .unwrap()
            .with_backend(backend);
            let sol = solve_qp(&qp, &settings());
            assert_eq!(sol.status, QpStatus::NumericalError, "{backend:?}");
            assert!(
                (10..=20).contains(&sol.diagnostics.reg_bumps),
                "{backend:?}: bumps = {}",
                sol.diagnostics.reg_bumps
            );
            assert_eq!(sol.iterations, 0, "never entered the ADMM loop");
        }
    }

    #[test]
    fn extreme_indefinite_cost_terminates_without_panic() {
        // −1e12 on the diagonal: equilibration scales it into the range
        // the diagonal bump can repair, so the solve terminates cleanly
        // on the regularized problem — the point is bounded termination
        // with finite iterates, whatever the status
        let qp = QpProblem::new(
            Mat::diag(&[-1e12, -1e12]),
            vec![0.0; 2],
            Mat::identity(2),
            vec![-1.0; 2],
            vec![1.0; 2],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!(
            sol.status != QpStatus::NumericalError || sol.x.iter().all(|v| *v == 0.0),
            "a numerical error must come with the sentinel iterate"
        );
        assert!(sol.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn workspace_recovers_after_a_numerical_error() {
        // a poisoned frame must not leave state behind that conditions
        // the next (healthy) frame: the workspace clears itself and the
        // follow-up solve matches a cold solve exactly
        let s = settings();
        let mut ws = QpWorkspace::new();
        let good = tracking_qp(12, 0.0);
        let first = solve_qp_warm(&good, &s, None, &mut ws);
        assert_eq!(first.status, QpStatus::Solved);

        let bad = nan_cost_qp(Backend::Auto);
        let failed = solve_qp_warm(&bad, &s, None, &mut ws);
        assert_eq!(failed.status, QpStatus::NumericalError);
        assert!(ws.carried_rho().is_none(), "failure must clear the workspace");

        let recovered = solve_qp_warm(&good, &s, None, &mut ws);
        assert_eq!(recovered.status, QpStatus::Solved);
        assert_eq!(recovered.x, solve_qp(&good, &s).x);
    }

    #[test]
    fn diagnostics_report_cache_reuse() {
        let qp = tracking_qp(12, 0.0);
        let s = settings();
        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(&qp, &s, None, &mut ws);
        assert_eq!(first.diagnostics.factor_cache_hits, 0);
        assert!(first.diagnostics.factorizations >= 1);
        let warm = QpWarmStart::from_solution(&first);
        let second = solve_qp_warm(&qp, &s, Some(&warm), &mut ws);
        assert_eq!(second.diagnostics.factor_cache_hits, 1);
    }
}
