//! OSQP-style ADMM solver for box-constrained quadratic programs.
//!
//! Solves `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u` with the operator-splitting
//! scheme of Stellato et al. (OSQP): one Cholesky factorization of
//! `P + σI + ρAᵀA` up front, then cheap per-iteration triangular solves
//! and projections. Equality constraints are expressed as `l = u` rows.

use crate::linalg::{Cholesky, Mat};
use serde::{Deserialize, Serialize};

/// A quadratic program `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u`.
#[derive(Debug, Clone)]
pub struct QpProblem {
    /// Quadratic cost matrix (symmetric PSD), `n × n`.
    pub p: Mat,
    /// Linear cost vector, length `n`.
    pub q: Vec<f64>,
    /// Constraint matrix, `m × n`.
    pub a: Mat,
    /// Constraint lower bounds, length `m` (may contain `-∞`).
    pub l: Vec<f64>,
    /// Constraint upper bounds, length `m` (may contain `+∞`).
    pub u: Vec<f64>,
}

/// Error returned by [`QpProblem::new`] for dimensionally-inconsistent or
/// ill-ordered problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QpError {
    /// `P` is not square or does not match `q`.
    BadCost,
    /// `A`, `l`, `u` dimensions are inconsistent.
    BadConstraints,
    /// Some `l[i] > u[i]`.
    CrossedBounds,
}

impl std::fmt::Display for QpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpError::BadCost => write!(f, "cost dimensions are inconsistent"),
            QpError::BadConstraints => write!(f, "constraint dimensions are inconsistent"),
            QpError::CrossedBounds => write!(f, "some lower bound exceeds its upper bound"),
        }
    }
}

impl std::error::Error for QpError {}

impl QpProblem {
    /// Validates and assembles a QP.
    ///
    /// # Errors
    ///
    /// Returns a [`QpError`] describing the first inconsistency.
    pub fn new(p: Mat, q: Vec<f64>, a: Mat, l: Vec<f64>, u: Vec<f64>) -> Result<Self, QpError> {
        let n = q.len();
        if p.rows() != n || p.cols() != n {
            return Err(QpError::BadCost);
        }
        let m = a.rows();
        if a.cols() != n || l.len() != m || u.len() != m {
            return Err(QpError::BadConstraints);
        }
        if l.iter().zip(&u).any(|(lo, hi)| lo > hi) {
            return Err(QpError::CrossedBounds);
        }
        Ok(QpProblem { p, q, a, l, u })
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.q.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.l.len()
    }

    /// Objective value `½xᵀPx + qᵀx` at `x`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let px = self.p.mul_vec(x);
        0.5 * dot(x, &px) + dot(&self.q, x)
    }

    /// Worst constraint violation at `x` (zero when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let ax = self.a.mul_vec(x);
        ax.iter()
            .zip(self.l.iter().zip(&self.u))
            .map(|(v, (lo, hi))| (lo - v).max(v - hi).max(0.0))
            .fold(0.0, f64::max)
    }
}

/// ADMM iteration parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpSettings {
    /// Step size ρ (constraint weight).
    pub rho: f64,
    /// Regularization σ added to `P` for factorization robustness.
    pub sigma: f64,
    /// Over-relaxation α in `(0, 2)`.
    pub alpha: f64,
    /// Maximum ADMM iterations.
    pub max_iters: usize,
    /// Absolute primal/dual residual tolerance.
    pub eps_abs: f64,
}

impl Default for QpSettings {
    fn default() -> Self {
        QpSettings {
            rho: 0.1,
            sigma: 1e-6,
            alpha: 1.6,
            max_iters: 4000,
            eps_abs: 1e-6,
        }
    }
}

/// Termination status of [`solve_qp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QpStatus {
    /// Residuals reached the tolerance.
    Solved,
    /// Iteration budget exhausted; `x` is the best iterate.
    MaxIterations,
}

/// Result of [`solve_qp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpSolution {
    /// Primal solution (projected to be feasible for box rows).
    pub x: Vec<f64>,
    /// Dual variables for the constraint rows.
    pub y: Vec<f64>,
    /// Termination status.
    pub status: QpStatus,
    /// Number of ADMM iterations performed.
    pub iterations: usize,
    /// Final primal residual `‖Ax − z‖∞`.
    pub primal_residual: f64,
    /// Final dual residual `‖Px + q + Aᵀy‖∞`.
    pub dual_residual: f64,
}

/// Solves a QP with ADMM.
///
/// The problem is first *equilibrated* (modified Ruiz scaling of rows and
/// columns, as in OSQP §5.1): ADMM's convergence rate degrades badly when
/// constraint rows or cost columns span orders of magnitude, which is the
/// normal situation for condensed MPC problems. The returned solution is
/// unscaled back to the original problem's variables and duals.
///
/// Never panics on a well-formed [`QpProblem`]; an indefinite `P` is
/// handled by the σ-regularization (the solution then corresponds to the
/// regularized problem, which is the standard OSQP behaviour).
pub fn solve_qp(problem: &QpProblem, settings: &QpSettings) -> QpSolution {
    let (scaled, d, e) = equilibrate(problem);
    let mut sol = solve_qp_raw(&scaled, settings);
    // unscale: x = D·x̃, y = E·ỹ
    for (x, di) in sol.x.iter_mut().zip(&d) {
        *x *= di;
    }
    for (y, ei) in sol.y.iter_mut().zip(&e) {
        *y *= ei;
    }
    // report residuals in original units (approximately): recompute
    sol.primal_residual = problem.max_violation(&sol.x);
    let px = problem.p.mul_vec(&sol.x);
    let aty = problem.a.t_mul_vec(&sol.y);
    sol.dual_residual = (0..problem.num_vars())
        .map(|i| (px[i] + problem.q[i] + aty[i]).abs())
        .fold(0.0, f64::max);
    sol
}

/// Modified Ruiz equilibration: returns the scaled problem plus the
/// column scales `D` and row scales `E` such that the scaled problem is
/// `min ½x̃ᵀ(DPD)x̃ + (Dq)ᵀx̃  s.t.  El ≤ (EAD)x̃ ≤ Eu` with `x = Dx̃`.
fn equilibrate(problem: &QpProblem) -> (QpProblem, Vec<f64>, Vec<f64>) {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut d = vec![1.0f64; n];
    let mut e = vec![1.0f64; m];
    let mut p = problem.p.clone();
    let mut a = problem.a.clone();
    let clamp = |v: f64| v.clamp(1e-6, 1e6);
    for _ in 0..8 {
        // row norms of A
        for i in 0..m {
            let mut r = 0.0f64;
            for j in 0..n {
                r = r.max(a.at(i, j).abs());
            }
            if r > 0.0 {
                let s = 1.0 / clamp(r).sqrt();
                for j in 0..n {
                    *a.at_mut(i, j) *= s;
                }
                e[i] *= s;
            }
        }
        // column norms over A and P
        for j in 0..n {
            let mut c = 0.0f64;
            for i in 0..m {
                c = c.max(a.at(i, j).abs());
            }
            for k in 0..n {
                c = c.max(p.at(k, j).abs());
            }
            if c > 0.0 {
                let s = 1.0 / clamp(c).sqrt();
                for i in 0..m {
                    *a.at_mut(i, j) *= s;
                }
                // symmetric scaling of P: row and column j
                for k in 0..n {
                    *p.at_mut(k, j) *= s;
                    *p.at_mut(j, k) *= s;
                }
                d[j] *= s;
            }
        }
    }
    let q: Vec<f64> = problem.q.iter().zip(&d).map(|(qi, di)| qi * di).collect();
    let l: Vec<f64> = problem.l.iter().zip(&e).map(|(li, ei)| li * ei).collect();
    let u: Vec<f64> = problem.u.iter().zip(&e).map(|(ui, ei)| ui * ei).collect();
    (
        QpProblem { p, q, a, l, u },
        d,
        e,
    )
}

/// The core ADMM loop on an (already scaled) problem.
fn solve_qp_raw(problem: &QpProblem, settings: &QpSettings) -> QpSolution {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut rho = settings.rho;

    // KKT matrix M = P + σI + ρ AᵀA, factorized once per ρ value.
    let gram = problem.a.gram();
    let build_factor = |rho: f64| {
        let mut kkt = problem.p.clone();
        kkt.add_scaled(&Mat::identity(n), settings.sigma);
        kkt.add_scaled(&gram, rho);
        ensure_factor(kkt, n)
    };
    let mut factor = build_factor(rho);

    let mut x = vec![0.0; n];
    let mut z = vec![0.0; m];
    let mut y = vec![0.0; m];

    let mut primal_res = f64::INFINITY;
    let mut dual_res = f64::INFINITY;
    let mut iters = 0;

    let alpha = settings.alpha;
    for it in 0..settings.max_iters {
        iters = it + 1;
        // x̃-update: (P + σI + ρAᵀA) x̃ = σx − q + Aᵀ(ρz − y)
        let mut rhs = vec![0.0; n];
        let tmp: Vec<f64> = z.iter().zip(&y).map(|(zi, yi)| rho * zi - yi).collect();
        let at_tmp = problem.a.t_mul_vec(&tmp);
        for i in 0..n {
            rhs[i] = settings.sigma * x[i] - problem.q[i] + at_tmp[i];
        }
        let x_tilde = factor.solve(&rhs);
        let z_tilde = problem.a.mul_vec(&x_tilde);

        // over-relaxation on both x and z (OSQP alg. 1)
        for i in 0..n {
            x[i] = alpha * x_tilde[i] + (1.0 - alpha) * x[i];
        }
        let mut z_new = vec![0.0; m];
        for i in 0..m {
            let relaxed = alpha * z_tilde[i] + (1.0 - alpha) * z[i];
            z_new[i] = (relaxed + y[i] / rho).clamp(problem.l[i], problem.u[i]);
            y[i] += rho * (relaxed - z_new[i]);
        }
        z = z_new;

        if it % 10 == 9 || it == settings.max_iters - 1 {
            let ax = problem.a.mul_vec(&x);
            primal_res = ax
                .iter()
                .zip(&z)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            let px = problem.p.mul_vec(&x);
            let aty = problem.a.t_mul_vec(&y);
            dual_res = (0..n)
                .map(|i| (px[i] + problem.q[i] + aty[i]).abs())
                .fold(0.0, f64::max);
            if primal_res < settings.eps_abs && dual_res < settings.eps_abs {
                return QpSolution {
                    x,
                    y,
                    status: QpStatus::Solved,
                    iterations: iters,
                    primal_residual: primal_res,
                    dual_residual: dual_res,
                };
            }
            // Adaptive ρ (OSQP §5.2): rebalance when the residuals diverge
            // by more than an order of magnitude. Refactorization is cheap
            // at MPC scale.
            let scale = if primal_res > 10.0 * dual_res && primal_res > settings.eps_abs {
                Some(rho * 5.0)
            } else if dual_res > 10.0 * primal_res && dual_res > settings.eps_abs {
                Some(rho / 5.0)
            } else {
                None
            };
            if let Some(new_rho) = scale {
                let new_rho = new_rho.clamp(1e-6, 1e6);
                if (new_rho - rho).abs() > f64::EPSILON {
                    rho = new_rho;
                    factor = build_factor(rho);
                }
            }
        }
    }

    QpSolution {
        x,
        y,
        status: QpStatus::MaxIterations,
        iterations: iters,
        primal_residual: primal_res,
        dual_residual: dual_res,
    }
}

/// Factorizes, escalating the regularization if the matrix is not PD.
fn ensure_factor(mut kkt: Mat, n: usize) -> Cholesky {
    let mut bump = 1e-9;
    loop {
        match kkt.cholesky() {
            Ok(f) => return f,
            Err(_) => {
                kkt.add_scaled(&Mat::identity(n), bump);
                bump *= 10.0;
                assert!(
                    bump < 1e6,
                    "KKT matrix cannot be made positive definite — cost matrix is pathological"
                );
            }
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> QpSettings {
        QpSettings::default()
    }

    #[test]
    fn unconstrained_minimum() {
        // min (x-3)²  → x = 3; constraint row is vacuous
        let qp = QpProblem::new(
            Mat::diag(&[2.0]),
            vec![-6.0],
            Mat::identity(1),
            vec![-1e9],
            vec![1e9],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!((sol.x[0] - 3.0).abs() < 1e-4, "x = {}", sol.x[0]);
    }

    #[test]
    fn active_box_constraint() {
        // min (x-3)² s.t. x ≤ 1 → x = 1
        let qp = QpProblem::new(
            Mat::diag(&[2.0]),
            vec![-6.0],
            Mat::identity(1),
            vec![-1e9],
            vec![1.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
        // KKT: gradient 2x-6 = -4 balanced by dual ≈ 4 on the upper bound
        assert!((sol.y[0] + (2.0 * sol.x[0] - 6.0)).abs() < 1e-3);
    }

    #[test]
    fn equality_constraint_via_tight_bounds() {
        // min x² + y² s.t. x + y = 2 → x = y = 1
        let qp = QpProblem::new(
            Mat::diag(&[2.0, 2.0]),
            vec![0.0, 0.0],
            Mat::from_rows(&[&[1.0, 1.0]]),
            vec![2.0],
            vec![2.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
        assert!((sol.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn projection_onto_halfspace() {
        // min ‖x − (2, 2)‖² s.t. x₀ + x₁ ≤ 2 → x = (1, 1)
        let qp = QpProblem::new(
            Mat::diag(&[2.0, 2.0]),
            vec![-4.0, -4.0],
            Mat::from_rows(&[&[1.0, 1.0]]),
            vec![-1e9],
            vec![2.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!((sol.x[0] - 1.0).abs() < 1e-3);
        assert!((sol.x[1] - 1.0).abs() < 1e-3);
        assert!(qp.max_violation(&sol.x) < 1e-4);
    }

    #[test]
    fn multi_constraint_qp_kkt_residuals() {
        // a less trivial QP: coupled cost, two inequality rows, one box
        let p = Mat::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 0.5], &[0.0, 0.5, 2.0]]);
        let q = vec![-1.0, 2.0, -3.0];
        let a = Mat::from_rows(&[
            &[1.0, 1.0, 1.0],
            &[1.0, -1.0, 0.0],
            &[0.0, 0.0, 1.0],
        ]);
        let l = vec![-1.0, -2.0, -0.5];
        let u = vec![1.5, 2.0, 0.5];
        let qp = QpProblem::new(p, q, a, l, u).unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!(qp.max_violation(&sol.x) < 1e-4);
        assert!(sol.primal_residual < 1e-5);
        assert!(sol.dual_residual < 1e-5);
        // objective below any feasible probe point
        let probes = [
            vec![0.0, 0.0, 0.0],
            vec![0.5, -0.5, 0.5],
            vec![-0.3, 0.2, -0.5],
        ];
        for probe in probes {
            if qp.max_violation(&probe) < 1e-9 {
                assert!(qp.objective(&sol.x) <= qp.objective(&probe) + 1e-6);
            }
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            QpProblem::new(
                Mat::zeros(2, 3),
                vec![0.0, 0.0],
                Mat::identity(2),
                vec![0.0; 2],
                vec![0.0; 2]
            )
            .unwrap_err(),
            QpError::BadCost
        );
        assert_eq!(
            QpProblem::new(
                Mat::identity(2),
                vec![0.0, 0.0],
                Mat::identity(2),
                vec![0.0; 3],
                vec![0.0; 3]
            )
            .unwrap_err(),
            QpError::BadConstraints
        );
        assert_eq!(
            QpProblem::new(
                Mat::identity(1),
                vec![0.0],
                Mat::identity(1),
                vec![1.0],
                vec![-1.0]
            )
            .unwrap_err(),
            QpError::CrossedBounds
        );
    }

    #[test]
    fn indefinite_cost_is_regularized_not_fatal() {
        // P has a negative eigenvalue; solver must still terminate.
        let qp = QpProblem::new(
            Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]),
            vec![0.0, 0.0],
            Mat::identity(2),
            vec![-1.0, -1.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!(sol.x.iter().all(|v| v.is_finite()));
        assert!(qp.max_violation(&sol.x) < 1e-3);
    }

    #[test]
    fn mpc_scale_problem_solves_quickly() {
        // tracking QP with 40 variables and 80 rows, diagonal-dominant
        let n = 40;
        let p = Mat::diag(&vec![2.0; n]);
        let q: Vec<f64> = (0..n).map(|i| -((i % 7) as f64) * 0.1).collect();
        let mut rows = Mat::zeros(2 * n, n);
        for i in 0..n {
            *rows.at_mut(i, i) = 1.0; // box
            *rows.at_mut(n + i, i) = 1.0;
            if i + 1 < n {
                *rows.at_mut(n + i, i + 1) = -1.0; // rate limit
            }
        }
        let l = vec![-1.0; 2 * n];
        let u = vec![1.0; 2 * n];
        let qp = QpProblem::new(p, q, rows, l, u).unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!(qp.max_violation(&sol.x) < 1e-4);
    }
}
