//! OSQP-style ADMM solver for box-constrained quadratic programs.
//!
//! Solves `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u` with the operator-splitting
//! scheme of Stellato et al. (OSQP): one Cholesky factorization of
//! `P + σI + ρAᵀA` up front, then cheap per-iteration triangular solves
//! and projections. Equality constraints are expressed as `l = u` rows.

use crate::linalg::{Cholesky, Mat};
use serde::{Deserialize, Serialize};

/// A quadratic program `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u`.
#[derive(Debug, Clone)]
pub struct QpProblem {
    /// Quadratic cost matrix (symmetric PSD), `n × n`.
    pub p: Mat,
    /// Linear cost vector, length `n`.
    pub q: Vec<f64>,
    /// Constraint matrix, `m × n`.
    pub a: Mat,
    /// Constraint lower bounds, length `m` (may contain `-∞`).
    pub l: Vec<f64>,
    /// Constraint upper bounds, length `m` (may contain `+∞`).
    pub u: Vec<f64>,
}

/// Error returned by [`QpProblem::new`] for dimensionally-inconsistent or
/// ill-ordered problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QpError {
    /// `P` is not square or does not match `q`.
    BadCost,
    /// `A`, `l`, `u` dimensions are inconsistent.
    BadConstraints,
    /// Some `l[i] > u[i]`.
    CrossedBounds,
}

impl std::fmt::Display for QpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpError::BadCost => write!(f, "cost dimensions are inconsistent"),
            QpError::BadConstraints => write!(f, "constraint dimensions are inconsistent"),
            QpError::CrossedBounds => write!(f, "some lower bound exceeds its upper bound"),
        }
    }
}

impl std::error::Error for QpError {}

impl QpProblem {
    /// Validates and assembles a QP.
    ///
    /// # Errors
    ///
    /// Returns a [`QpError`] describing the first inconsistency.
    pub fn new(p: Mat, q: Vec<f64>, a: Mat, l: Vec<f64>, u: Vec<f64>) -> Result<Self, QpError> {
        let n = q.len();
        if p.rows() != n || p.cols() != n {
            return Err(QpError::BadCost);
        }
        let m = a.rows();
        if a.cols() != n || l.len() != m || u.len() != m {
            return Err(QpError::BadConstraints);
        }
        if l.iter().zip(&u).any(|(lo, hi)| lo > hi) {
            return Err(QpError::CrossedBounds);
        }
        Ok(QpProblem { p, q, a, l, u })
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.q.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.l.len()
    }

    /// Objective value `½xᵀPx + qᵀx` at `x`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let px = self.p.mul_vec(x);
        0.5 * dot(x, &px) + dot(&self.q, x)
    }

    /// Worst constraint violation at `x` (zero when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let ax = self.a.mul_vec(x);
        ax.iter()
            .zip(self.l.iter().zip(&self.u))
            .map(|(v, (lo, hi))| (lo - v).max(v - hi).max(0.0))
            .fold(0.0, f64::max)
    }
}

/// ADMM iteration parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpSettings {
    /// Step size ρ (constraint weight).
    pub rho: f64,
    /// Regularization σ added to `P` for factorization robustness.
    pub sigma: f64,
    /// Over-relaxation α in `(0, 2)`.
    pub alpha: f64,
    /// Maximum ADMM iterations.
    pub max_iters: usize,
    /// Absolute primal/dual residual tolerance.
    pub eps_abs: f64,
}

impl Default for QpSettings {
    fn default() -> Self {
        QpSettings {
            rho: 0.1,
            sigma: 1e-6,
            alpha: 1.6,
            max_iters: 4000,
            eps_abs: 1e-6,
        }
    }
}

/// Termination status of [`solve_qp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QpStatus {
    /// Residuals reached the tolerance.
    Solved,
    /// Iteration budget exhausted; `x` is the best iterate.
    MaxIterations,
}

/// Result of [`solve_qp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpSolution {
    /// Primal solution (projected to be feasible for box rows).
    pub x: Vec<f64>,
    /// Dual variables for the constraint rows.
    pub y: Vec<f64>,
    /// Termination status.
    pub status: QpStatus,
    /// Number of ADMM iterations performed.
    pub iterations: usize,
    /// Final primal residual `‖Ax − z‖∞`.
    pub primal_residual: f64,
    /// Final dual residual `‖Px + q + Aᵀy‖∞`.
    pub dual_residual: f64,
}

/// A primal/dual iterate carried between related solves (OSQP-style warm
/// starting). MPC re-solves nearly-identical problems every frame; starting
/// ADMM from the previous optimum typically cuts iterations severalfold.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QpWarmStart {
    /// Primal iterate from a previous solve (length `n`).
    pub x: Vec<f64>,
    /// Dual iterate from a previous solve (length `m`).
    pub y: Vec<f64>,
}

impl QpWarmStart {
    /// Captures the iterates of a finished solve.
    pub fn from_solution(sol: &QpSolution) -> Self {
        QpWarmStart {
            x: sol.x.clone(),
            y: sol.y.clone(),
        }
    }

    /// Whether this warm start fits a problem with `n` variables and `m`
    /// constraint rows.
    pub fn fits(&self, n: usize, m: usize) -> bool {
        self.x.len() == n && self.y.len() == m
    }
}

/// Reusable setup state cached across solves of structurally-similar
/// problems (same variable/constraint counts).
///
/// Caches, in the spirit of OSQP's setup/update split:
///
/// * the Ruiz scaling vectors `D`, `E` — equilibration is a change of
///   variables, so reusing the previous scaling on slightly-changed data
///   stays exact and skips the iterative scaling passes;
/// * the Gram matrix `AᵀA` and Cholesky factor of `P + σI + ρAᵀA`, reused
///   only while the scaled `P`/`A` data, σ, and ρ are bit-identical;
/// * the adapted step size ρ from the previous solve, so later solves
///   start from the rebalanced value instead of re-learning it.
#[derive(Debug, Clone, Default)]
pub struct QpWorkspace {
    scaling: Option<(Vec<f64>, Vec<f64>)>,
    factor: Option<FactorCache>,
    rho: Option<f64>,
}

#[derive(Debug, Clone)]
struct FactorCache {
    p_data: Vec<f64>,
    a_data: Vec<f64>,
    sigma: f64,
    rho: f64,
    gram: Mat,
    factor: Cholesky,
}

impl QpWorkspace {
    /// A fresh workspace (first solve runs the full setup).
    pub fn new() -> Self {
        QpWorkspace::default()
    }

    /// Drops all cached state (scaling, factor, adapted ρ).
    pub fn clear(&mut self) {
        self.scaling = None;
        self.factor = None;
        self.rho = None;
    }

    /// The adapted ρ carried from the previous solve, if any.
    pub fn carried_rho(&self) -> Option<f64> {
        self.rho
    }
}

/// Solves a QP with ADMM (cold start, no state reuse).
///
/// The problem is first *equilibrated* (modified Ruiz scaling of rows and
/// columns, as in OSQP §5.1): ADMM's convergence rate degrades badly when
/// constraint rows or cost columns span orders of magnitude, which is the
/// normal situation for condensed MPC problems. The returned solution is
/// unscaled back to the original problem's variables and duals.
///
/// Never panics on a well-formed [`QpProblem`]; an indefinite `P` is
/// handled by the σ-regularization (the solution then corresponds to the
/// regularized problem, which is the standard OSQP behaviour).
pub fn solve_qp(problem: &QpProblem, settings: &QpSettings) -> QpSolution {
    solve_qp_warm(problem, settings, None, &mut QpWorkspace::new())
}

/// Solves a QP with ADMM, warm-starting from a previous iterate and
/// reusing cached setup work from `workspace` where valid.
///
/// `warm` is ignored unless its dimensions fit the problem. Scaling reuse
/// keys on dimensions; factorization reuse additionally keys on the exact
/// scaled data, σ and ρ, so the result always corresponds to the problem
/// actually passed in.
pub fn solve_qp_warm(
    problem: &QpProblem,
    settings: &QpSettings,
    warm: Option<&QpWarmStart>,
    workspace: &mut QpWorkspace,
) -> QpSolution {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let reuse_scaling = matches!(
        &workspace.scaling,
        Some((d, e)) if d.len() == n && e.len() == m
    );
    if !reuse_scaling {
        workspace.scaling = Some(compute_scaling(problem));
        workspace.factor = None;
        workspace.rho = None;
    }
    let (d, e) = workspace.scaling.as_ref().expect("scaling just ensured");
    let scaled = apply_scaling(problem, d, e);

    // scale the warm start into the equilibrated coordinates:
    // x = D·x̃ → x̃ = D⁻¹x; y = E·ỹ → ỹ = E⁻¹y. A primal of the right
    // length is useful even when the constraint rows changed (the dual
    // then restarts at zero), which is the common MPC re-solve case.
    let start = warm.filter(|w| w.x.len() == n).map(|w| {
        let x: Vec<f64> = w.x.iter().zip(d).map(|(xi, di)| xi / di).collect();
        let y: Vec<f64> = if w.y.len() == m {
            w.y.iter().zip(e).map(|(yi, ei)| yi / ei).collect()
        } else {
            vec![0.0; m]
        };
        let z = scaled.a.mul_vec(&x);
        (x, y, z)
    });

    let mut sol = solve_qp_scaled(&scaled, settings, start, workspace);
    let (d, e) = workspace.scaling.as_ref().expect("scaling retained");
    // unscale: x = D·x̃, y = E·ỹ
    for (x, di) in sol.x.iter_mut().zip(d) {
        *x *= di;
    }
    for (y, ei) in sol.y.iter_mut().zip(e) {
        *y *= ei;
    }
    // report residuals in original units (approximately): recompute
    sol.primal_residual = problem.max_violation(&sol.x);
    let px = problem.p.mul_vec(&sol.x);
    let aty = problem.a.t_mul_vec(&sol.y);
    sol.dual_residual = (0..problem.num_vars())
        .map(|i| (px[i] + problem.q[i] + aty[i]).abs())
        .fold(0.0, f64::max);
    sol
}

/// Modified Ruiz equilibration passes: returns the column scales `D` and
/// row scales `E` such that `DPD` / `EAD` have near-unit row/column norms.
fn compute_scaling(problem: &QpProblem) -> (Vec<f64>, Vec<f64>) {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut d = vec![1.0f64; n];
    let mut e = vec![1.0f64; m];
    let mut p = problem.p.clone();
    let mut a = problem.a.clone();
    let clamp = |v: f64| v.clamp(1e-6, 1e6);
    // The *cumulative* scale per row/column is bounded (OSQP's
    // MIN_SCALING/MAX_SCALING): per-pass clamps alone still compound
    // across passes, and a near-zero constraint row can otherwise pick
    // up a ~1e24 scale. The workspace reuses scaling vectors on
    // changed data of the same shape (an exact change of variables),
    // which is only safe because this bound caps how badly a stale
    // scale can condition new rows.
    let bound = |v: f64| v.clamp(1e-4, 1e4);
    for _ in 0..8 {
        // row norms of A
        for (i, ei) in e.iter_mut().enumerate() {
            let mut r = 0.0f64;
            for j in 0..n {
                r = r.max(a.at(i, j).abs());
            }
            if r > 0.0 {
                let s = bound(*ei / clamp(r).sqrt()) / *ei;
                for j in 0..n {
                    *a.at_mut(i, j) *= s;
                }
                *ei *= s;
            }
        }
        // column norms over A and P
        for (j, dj) in d.iter_mut().enumerate() {
            let mut c = 0.0f64;
            for i in 0..m {
                c = c.max(a.at(i, j).abs());
            }
            for k in 0..n {
                c = c.max(p.at(k, j).abs());
            }
            if c > 0.0 {
                let s = bound(*dj / clamp(c).sqrt()) / *dj;
                for i in 0..m {
                    *a.at_mut(i, j) *= s;
                }
                // symmetric scaling of P: row and column j
                for k in 0..n {
                    *p.at_mut(k, j) *= s;
                    *p.at_mut(j, k) *= s;
                }
                *dj *= s;
            }
        }
    }
    (d, e)
}

/// Applies scaling vectors to a problem: the scaled program is
/// `min ½x̃ᵀ(DPD)x̃ + (Dq)ᵀx̃  s.t.  El ≤ (EAD)x̃ ≤ Eu` with `x = Dx̃`.
fn apply_scaling(problem: &QpProblem, d: &[f64], e: &[f64]) -> QpProblem {
    let mut p = problem.p.clone();
    for (i, di) in d.iter().enumerate() {
        for (j, dj) in d.iter().enumerate() {
            *p.at_mut(i, j) *= di * dj;
        }
    }
    let mut a = problem.a.clone();
    for (i, ei) in e.iter().enumerate() {
        for (j, dj) in d.iter().enumerate() {
            *a.at_mut(i, j) *= ei * dj;
        }
    }
    let q: Vec<f64> = problem.q.iter().zip(d).map(|(qi, di)| qi * di).collect();
    let l: Vec<f64> = problem.l.iter().zip(e).map(|(li, ei)| li * ei).collect();
    let u: Vec<f64> = problem.u.iter().zip(e).map(|(ui, ei)| ui * ei).collect();
    QpProblem { p, q, a, l, u }
}

/// The core ADMM loop on an (already scaled) problem, reusing the cached
/// Gram matrix and Cholesky factor from `workspace` when the scaled data,
/// σ and ρ all match.
fn solve_qp_scaled(
    problem: &QpProblem,
    settings: &QpSettings,
    start: Option<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    workspace: &mut QpWorkspace,
) -> QpSolution {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let mut rho = settings.rho.clamp(1e-6, 1e6);

    // KKT matrix M = P + σI + ρ AᵀA, factorized once per ρ value.
    let cache_valid = matches!(
        &workspace.factor,
        Some(c) if c.sigma == settings.sigma
            && c.p_data.as_slice() == problem.p.data()
            && c.a_data.as_slice() == problem.a.data()
    );
    let (gram, mut factor) = if cache_valid {
        // identical scaled data: the previously-adapted ρ applies, so the
        // cached factor can be reused verbatim
        let cache = workspace.factor.as_ref().expect("cache just validated");
        rho = cache.rho;
        (cache.gram.clone(), cache.factor.clone())
    } else {
        let gram = problem.a.gram();
        let factor = build_factor(problem, &gram, settings.sigma, rho);
        (gram, factor)
    };

    let (mut x, mut y, mut z) = start.unwrap_or_else(|| (vec![0.0; n], vec![0.0; m], vec![0.0; m]));

    let mut primal_res = f64::INFINITY;
    let mut dual_res = f64::INFINITY;
    let mut iters = 0;
    let mut status = QpStatus::MaxIterations;

    let alpha = settings.alpha;
    for it in 0..settings.max_iters {
        iters = it + 1;
        // x̃-update: (P + σI + ρAᵀA) x̃ = σx − q + Aᵀ(ρz − y)
        let mut rhs = vec![0.0; n];
        let tmp: Vec<f64> = z.iter().zip(&y).map(|(zi, yi)| rho * zi - yi).collect();
        let at_tmp = problem.a.t_mul_vec(&tmp);
        for i in 0..n {
            rhs[i] = settings.sigma * x[i] - problem.q[i] + at_tmp[i];
        }
        let x_tilde = factor.solve(&rhs);
        let z_tilde = problem.a.mul_vec(&x_tilde);

        // over-relaxation on both x and z (OSQP alg. 1)
        for i in 0..n {
            x[i] = alpha * x_tilde[i] + (1.0 - alpha) * x[i];
        }
        let mut z_new = vec![0.0; m];
        for i in 0..m {
            let relaxed = alpha * z_tilde[i] + (1.0 - alpha) * z[i];
            z_new[i] = (relaxed + y[i] / rho).clamp(problem.l[i], problem.u[i]);
            y[i] += rho * (relaxed - z_new[i]);
        }
        z = z_new;

        if it % 10 == 9 || it == settings.max_iters - 1 {
            let ax = problem.a.mul_vec(&x);
            primal_res = ax
                .iter()
                .zip(&z)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            let px = problem.p.mul_vec(&x);
            let aty = problem.a.t_mul_vec(&y);
            dual_res = (0..n)
                .map(|i| (px[i] + problem.q[i] + aty[i]).abs())
                .fold(0.0, f64::max);
            if primal_res < settings.eps_abs && dual_res < settings.eps_abs {
                status = QpStatus::Solved;
                break;
            }
            // Adaptive ρ (OSQP §5.2): rebalance when the residuals diverge
            // by more than an order of magnitude. Refactorization is cheap
            // at MPC scale.
            let scale = if primal_res > 10.0 * dual_res && primal_res > settings.eps_abs {
                Some(rho * 5.0)
            } else if dual_res > 10.0 * primal_res && dual_res > settings.eps_abs {
                Some(rho / 5.0)
            } else {
                None
            };
            if let Some(new_rho) = scale {
                let new_rho = new_rho.clamp(1e-6, 1e6);
                if (new_rho - rho).abs() > f64::EPSILON {
                    rho = new_rho;
                    factor = build_factor(problem, &gram, settings.sigma, rho);
                }
            }
        }
    }

    workspace.rho = Some(rho);
    workspace.factor = Some(FactorCache {
        p_data: problem.p.data().to_vec(),
        a_data: problem.a.data().to_vec(),
        sigma: settings.sigma,
        rho,
        gram,
        factor,
    });

    QpSolution {
        x,
        y,
        status,
        iterations: iters,
        primal_residual: primal_res,
        dual_residual: dual_res,
    }
}

/// Builds and factorizes the KKT matrix `P + σI + ρ AᵀA`.
fn build_factor(problem: &QpProblem, gram: &Mat, sigma: f64, rho: f64) -> Cholesky {
    let n = problem.num_vars();
    let mut kkt = problem.p.clone();
    kkt.add_scaled(&Mat::identity(n), sigma);
    kkt.add_scaled(gram, rho);
    ensure_factor(kkt, n)
}

/// Factorizes, escalating the regularization if the matrix is not PD.
fn ensure_factor(mut kkt: Mat, n: usize) -> Cholesky {
    let mut bump = 1e-9;
    loop {
        match kkt.cholesky() {
            Ok(f) => return f,
            Err(_) => {
                kkt.add_scaled(&Mat::identity(n), bump);
                bump *= 10.0;
                assert!(
                    bump < 1e6,
                    "KKT matrix cannot be made positive definite — cost matrix is pathological"
                );
            }
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> QpSettings {
        QpSettings::default()
    }

    #[test]
    fn unconstrained_minimum() {
        // min (x-3)²  → x = 3; constraint row is vacuous
        let qp = QpProblem::new(
            Mat::diag(&[2.0]),
            vec![-6.0],
            Mat::identity(1),
            vec![-1e9],
            vec![1e9],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!((sol.x[0] - 3.0).abs() < 1e-4, "x = {}", sol.x[0]);
    }

    #[test]
    fn active_box_constraint() {
        // min (x-3)² s.t. x ≤ 1 → x = 1
        let qp = QpProblem::new(
            Mat::diag(&[2.0]),
            vec![-6.0],
            Mat::identity(1),
            vec![-1e9],
            vec![1.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
        // KKT: gradient 2x-6 = -4 balanced by dual ≈ 4 on the upper bound
        assert!((sol.y[0] + (2.0 * sol.x[0] - 6.0)).abs() < 1e-3);
    }

    #[test]
    fn equality_constraint_via_tight_bounds() {
        // min x² + y² s.t. x + y = 2 → x = y = 1
        let qp = QpProblem::new(
            Mat::diag(&[2.0, 2.0]),
            vec![0.0, 0.0],
            Mat::from_rows(&[&[1.0, 1.0]]),
            vec![2.0],
            vec![2.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
        assert!((sol.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn projection_onto_halfspace() {
        // min ‖x − (2, 2)‖² s.t. x₀ + x₁ ≤ 2 → x = (1, 1)
        let qp = QpProblem::new(
            Mat::diag(&[2.0, 2.0]),
            vec![-4.0, -4.0],
            Mat::from_rows(&[&[1.0, 1.0]]),
            vec![-1e9],
            vec![2.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!((sol.x[0] - 1.0).abs() < 1e-3);
        assert!((sol.x[1] - 1.0).abs() < 1e-3);
        assert!(qp.max_violation(&sol.x) < 1e-4);
    }

    #[test]
    fn multi_constraint_qp_kkt_residuals() {
        // a less trivial QP: coupled cost, two inequality rows, one box
        let p = Mat::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 0.5], &[0.0, 0.5, 2.0]]);
        let q = vec![-1.0, 2.0, -3.0];
        let a = Mat::from_rows(&[
            &[1.0, 1.0, 1.0],
            &[1.0, -1.0, 0.0],
            &[0.0, 0.0, 1.0],
        ]);
        let l = vec![-1.0, -2.0, -0.5];
        let u = vec![1.5, 2.0, 0.5];
        let qp = QpProblem::new(p, q, a, l, u).unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!(qp.max_violation(&sol.x) < 1e-4);
        assert!(sol.primal_residual < 1e-5);
        assert!(sol.dual_residual < 1e-5);
        // objective below any feasible probe point
        let probes = [
            vec![0.0, 0.0, 0.0],
            vec![0.5, -0.5, 0.5],
            vec![-0.3, 0.2, -0.5],
        ];
        for probe in probes {
            if qp.max_violation(&probe) < 1e-9 {
                assert!(qp.objective(&sol.x) <= qp.objective(&probe) + 1e-6);
            }
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            QpProblem::new(
                Mat::zeros(2, 3),
                vec![0.0, 0.0],
                Mat::identity(2),
                vec![0.0; 2],
                vec![0.0; 2]
            )
            .unwrap_err(),
            QpError::BadCost
        );
        assert_eq!(
            QpProblem::new(
                Mat::identity(2),
                vec![0.0, 0.0],
                Mat::identity(2),
                vec![0.0; 3],
                vec![0.0; 3]
            )
            .unwrap_err(),
            QpError::BadConstraints
        );
        assert_eq!(
            QpProblem::new(
                Mat::identity(1),
                vec![0.0],
                Mat::identity(1),
                vec![1.0],
                vec![-1.0]
            )
            .unwrap_err(),
            QpError::CrossedBounds
        );
    }

    #[test]
    fn indefinite_cost_is_regularized_not_fatal() {
        // P has a negative eigenvalue; solver must still terminate.
        let qp = QpProblem::new(
            Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]),
            vec![0.0, 0.0],
            Mat::identity(2),
            vec![-1.0, -1.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let sol = solve_qp(&qp, &settings());
        assert!(sol.x.iter().all(|v| v.is_finite()));
        assert!(qp.max_violation(&sol.x) < 1e-3);
    }

    #[test]
    fn mpc_scale_problem_solves_quickly() {
        // tracking QP with 40 variables and 80 rows, diagonal-dominant
        let n = 40;
        let p = Mat::diag(&vec![2.0; n]);
        let q: Vec<f64> = (0..n).map(|i| -((i % 7) as f64) * 0.1).collect();
        let mut rows = Mat::zeros(2 * n, n);
        for i in 0..n {
            *rows.at_mut(i, i) = 1.0; // box
            *rows.at_mut(n + i, i) = 1.0;
            if i + 1 < n {
                *rows.at_mut(n + i, i + 1) = -1.0; // rate limit
            }
        }
        let l = vec![-1.0; 2 * n];
        let u = vec![1.0; 2 * n];
        let qp = QpProblem::new(p, q, rows, l, u).unwrap();
        let sol = solve_qp(&qp, &settings());
        assert_eq!(sol.status, QpStatus::Solved);
        assert!(qp.max_violation(&sol.x) < 1e-4);
    }

    /// MPC-like tracking QP with `n` variables, a perturbable linear
    /// term, boxes and rate limits — stands in for consecutive frames.
    fn tracking_qp(n: usize, drift: f64) -> QpProblem {
        let p = Mat::diag(&vec![2.0; n]);
        // strong pull so many boxes and rate limits are active: the cold
        // solve has to discover the active set, the warm one starts on it
        let q: Vec<f64> = (0..n)
            .map(|i| -((i % 7) as f64) * 1.5 + drift * (1.0 + (i % 3) as f64))
            .collect();
        let mut rows = Mat::zeros(2 * n, n);
        for i in 0..n {
            *rows.at_mut(i, i) = 1.0;
            *rows.at_mut(n + i, i) = 1.0;
            if i + 1 < n {
                *rows.at_mut(n + i, i + 1) = -1.0;
            }
        }
        QpProblem::new(p, q, rows, vec![-1.0; 2 * n], vec![1.0; 2 * n]).unwrap()
    }

    #[test]
    fn warm_start_meets_kkt_tolerances_with_fewer_iterations() {
        // frame 2 is a small perturbation of frame 1: warm-started ADMM
        // must hit the same KKT tolerances in (strictly) fewer iterations
        let frame1 = tracking_qp(40, 0.0);
        let frame2 = tracking_qp(40, 0.01);
        let s = settings();

        let cold = solve_qp(&frame2, &s);
        assert_eq!(cold.status, QpStatus::Solved);

        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(&frame1, &s, None, &mut ws);
        let warm = QpWarmStart::from_solution(&first);
        let second = solve_qp_warm(&frame2, &s, Some(&warm), &mut ws);

        assert_eq!(second.status, QpStatus::Solved);
        // KKT quality is as good as the cold solve's tolerances …
        assert!(frame2.max_violation(&second.x) < 1e-4);
        assert!(second.primal_residual < 1e-4);
        // … with measurably fewer ADMM iterations
        assert!(
            second.iterations < cold.iterations,
            "warm {} vs cold {}",
            second.iterations,
            cold.iterations
        );
        // and the two solves agree on the optimum
        for (a, b) in second.x.iter().zip(&cold.x) {
            assert!((a - b).abs() < 1e-3, "warm {a} vs cold {b}");
        }
    }

    #[test]
    fn workspace_factor_reuse_is_exact() {
        // solving the identical problem twice through one workspace must
        // reproduce the cold solution (cache reuse changes no results)
        let qp = tracking_qp(12, 0.0);
        let s = settings();
        let cold = solve_qp(&qp, &s);
        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(&qp, &s, None, &mut ws);
        assert_eq!(first.x, cold.x);
        assert!(ws.carried_rho().is_some());
        let warm = QpWarmStart::from_solution(&first);
        let again = solve_qp_warm(&qp, &s, Some(&warm), &mut ws);
        assert_eq!(again.status, QpStatus::Solved);
        assert!(again.iterations <= first.iterations);
        for (a, b) in again.x.iter().zip(&cold.x) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn warm_start_with_stale_dual_dimensions_still_solves() {
        // constraint rows changed between frames (MPC collision rows come
        // and go): the primal is reused, the dual restarts at zero
        let frame1 = tracking_qp(10, 0.0);
        let s = settings();
        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(&frame1, &s, None, &mut ws);
        let warm = QpWarmStart::from_solution(&first);

        // same variables, one extra constraint row
        let mut rows = Mat::zeros(21, 10);
        for i in 0..10 {
            *rows.at_mut(i, i) = 1.0;
            *rows.at_mut(10 + i, i) = 1.0;
        }
        *rows.at_mut(20, 0) = 1.0;
        *rows.at_mut(20, 1) = 1.0;
        let frame2 = QpProblem::new(
            Mat::diag(&vec![2.0; 10]),
            frame1.q.clone(),
            rows,
            vec![-1.0; 21],
            vec![1.0; 21],
        )
        .unwrap();
        let sol = solve_qp_warm(&frame2, &s, Some(&warm), &mut ws);
        assert_eq!(sol.status, QpStatus::Solved);
        assert!(frame2.max_violation(&sol.x) < 1e-4);
    }

    #[test]
    fn scaling_reuse_survives_degenerate_then_regular_rows() {
        // Regression (conformance fuzzer, seed 114): frame 1 has a
        // near-zero constraint row, whose Ruiz scale must stay bounded;
        // frame 2 reuses the cached scaling vectors on a same-shape
        // problem where that row is regular. Unbounded cumulative
        // scaling (~1e24) made the reused-scaling KKT matrix so ill-
        // conditioned that Cholesky failed at every regularization and
        // the solver panicked.
        let n = 6;
        let s = settings();
        let make = |row_scale: f64| {
            let mut rows = Mat::zeros(n + 1, n);
            for i in 0..n {
                *rows.at_mut(i, i) = 1.0;
            }
            // the troublesome row: near-zero in frame 1, regular in frame 2
            *rows.at_mut(n, 0) = row_scale;
            *rows.at_mut(n, 1) = row_scale;
            let mut l = vec![-1.0; n + 1];
            let mut u = vec![1.0; n + 1];
            l[n] = -1e9;
            u[n] = 1e9;
            QpProblem::new(Mat::diag(&vec![2.0; n]), vec![-1.0; n], rows, l, u).unwrap()
        };
        let frame1 = make(1e-30);
        let frame2 = make(1.0);

        let mut ws = QpWorkspace::new();
        let first = solve_qp_warm(&frame1, &s, None, &mut ws);
        assert_eq!(first.status, QpStatus::Solved);
        let warm = QpWarmStart::from_solution(&first);
        let second = solve_qp_warm(&frame2, &s, Some(&warm), &mut ws);
        assert_eq!(second.status, QpStatus::Solved);
        assert!(frame2.max_violation(&second.x) < 1e-4);
        // both frames share the unconstrained optimum x_i = 0.5
        for v in &second.x {
            assert!((v - 0.5).abs() < 1e-3, "x = {v}");
        }
    }
}
