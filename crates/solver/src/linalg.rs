//! Small dense `f64` matrices and Cholesky factorization.

use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
///
/// Sized for MPC-scale problems (tens to a few hundred variables); all
/// operations are straightforward O(n³)/O(n²) loops with no panics on
/// well-shaped inputs.
///
/// # Example
///
/// ```
/// use icoil_solver::Mat;
///
/// let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
/// let x = a.mul_vec(&[1.0, 2.0]);
/// assert_eq!(x, vec![2.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// A diagonal matrix from its diagonal entries.
    pub fn diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Mat::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics when rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Mat { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range indices.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range indices.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Transposed matrix–vector product `Aᵀ·v`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != rows`.
    pub fn t_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * vi;
            }
        }
        out
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn mul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `AᵀA` (always symmetric positive semidefinite).
    pub fn gram(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.cols);
        for k in 0..self.rows {
            let row = &self.data[k * self.cols..(k + 1) * self.cols];
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for (j, &b) in row.iter().enumerate() {
                    out.data[i * self.cols + j] += a * b;
                }
            }
        }
        out
    }

    /// The transposed matrix.
    pub fn transposed(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// In-place scaled addition `self += s · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Mat, s: f64) {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns `Err(pivot)` when a non-positive pivot is met (matrix not
    /// positive definite), with `pivot` the failing index.
    pub fn cholesky(&self) -> Result<Cholesky, usize> {
        assert_eq!(self.rows, self.cols, "Cholesky needs a square matrix");
        let n = self.rows;
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.data[i * n + j];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(i);
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Cholesky { n, l })
    }
}

/// A Cholesky factor `L` with forward/backward substitution.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    /// Solves `A·x = b` given `A = L·Lᵀ`.
    ///
    /// # Panics
    ///
    /// Panics when `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Allocation-free solve `out = A⁻¹·b`; `out` doubles as the
    /// substitution scratch.
    ///
    /// # Panics
    ///
    /// Panics when `b.len()` or `out.len()` differ from the matrix
    /// dimension.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        assert_eq!(out.len(), self.n, "output dimension mismatch");
        let n = self.n;
        out.copy_from_slice(b);
        // forward: L y = b
        for i in 0..n {
            for k in 0..i {
                out[i] -= self.l[i * n + k] * out[k];
            }
            out[i] /= self.l[i * n + i];
        }
        // backward: Lᵀ x = y
        for i in (0..n).rev() {
            for k in i + 1..n {
                out[i] -= self.l[k * n + i] * out[k];
            }
            out[i] /= self.l[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let i = Mat::identity(3);
        assert_eq!(i.at(0, 0), 1.0);
        assert_eq!(i.at(0, 1), 0.0);
        let d = Mat::diag(&[1.0, 2.0]);
        assert_eq!(d.at(1, 1), 2.0);
    }

    #[test]
    fn mat_vec_products() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.t_mul_vec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn mat_mul_and_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.mul(&b);
        assert_eq!(c.data(), &[2.0, 1.0, 4.0, 3.0]);
        let at = a.transposed();
        assert_eq!(at.at(0, 1), 3.0);
        assert_eq!(at.transposed(), a);
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[0.0, 1.0]]);
        let g = a.gram();
        let explicit = a.transposed().mul(&a);
        assert_eq!(g, explicit);
        // symmetric
        assert_eq!(g.at(0, 1), g.at(1, 0));
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4, 2], [2, 3]] is SPD
        let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let f = a.cholesky().unwrap();
        let b = vec![2.0, 1.0];
        let x = f.solve(&b);
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn cholesky_large_random_spd() {
        // build SPD as AᵀA + I from a deterministic pseudo-random A
        let n = 12;
        let mut data = Vec::with_capacity(n * n);
        let mut s = 1u64;
        for _ in 0..n * n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push(((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5);
        }
        let a = Mat::from_vec(n, n, data);
        let mut spd = a.gram();
        spd.add_scaled(&Mat::identity(n), 1.0);
        let f = spd.cholesky().unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = f.solve(&b);
        let back = spd.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
