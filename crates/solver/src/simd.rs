//! Runtime-dispatched SIMD kernels for the solver's `f64` hot loops.
//!
//! Unlike the `f32` NN kernels (where FMA reordering is tolerated and
//! checked to a ULP budget), **every kernel in this module is
//! bitwise-preserving**: the AVX2 paths perform exactly the same
//! floating-point operations as the scalar loops — separate multiply
//! and add/subtract, never a fused multiply-add, never a reduction-order
//! change — so the CO trajectory contract (bit-identical episodes across
//! worker counts, backends and batch widths) survives vectorization.
//! The lanes only batch *independent* element updates:
//!
//! * elementwise ADMM vector updates (`ρz−y`, `σx−q` accumulation, the
//!   over-relaxation blend) — each element is its own dependency chain;
//! * the LDLᵀ column scatter `w[ind[j]] -= l[j]·s` — row indices within
//!   one column are distinct, so updates are independent;
//! * the backward-substitution reduction, where the *products*
//!   `l[j]·w[ind[j]]` are vectorized but the subtraction chain is
//!   replayed in the exact scalar order.
//!
//! Residual ∞-norm folds are deliberately **not** vectorized:
//! `f64::max` skips NaN operands where `_mm256_max_pd` would not, and
//! the ADMM loop relies on that NaN-skip to reach its explicit
//! non-finite iterate check.
//!
//! Dispatch mirrors `icoil_nn::simd`: process-wide detection (honoring
//! `ICOIL_FORCE_SCALAR=1`) plus a thread-local override for
//! differential tests. The conformance harness drives both crates'
//! overrides independently.

// The one module in the crate allowed `unsafe`: `core::arch` intrinsics
// behind runtime feature detection.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::sync::OnceLock;

/// Which kernel implementation services the f64 hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable scalar loops (the reference path).
    Scalar,
    /// x86-64 AVX2 lanes (no FMA — bitwise-preserving).
    Avx2,
}

impl KernelBackend {
    /// Stable label for bench metadata (`"scalar"` / `"avx2"`).
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
        }
    }
}

fn detect() -> KernelBackend {
    if std::env::var("ICOIL_FORCE_SCALAR").is_ok_and(|v| v == "1") {
        return KernelBackend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return KernelBackend::Avx2;
    }
    KernelBackend::Scalar
}

/// The process-wide backend chosen at first use.
pub fn detected() -> KernelBackend {
    static DETECTED: OnceLock<KernelBackend> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

thread_local! {
    static OVERRIDE: Cell<Option<KernelBackend>> = const { Cell::new(None) };
}

/// The backend the current thread will use.
pub fn active() -> KernelBackend {
    OVERRIDE.with(Cell::get).unwrap_or_else(detected)
}

/// The active backend's label, for bench metadata.
pub fn dispatch_target() -> &'static str {
    active().label()
}

/// Runs `f` with this thread's kernels pinned to `backend`, restoring
/// the previous dispatch afterwards (also on panic).
pub fn with_backend<R>(backend: KernelBackend, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<KernelBackend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(backend))));
    f()
}

/// Per-kernel conformance modes. All solver kernels are `"bitwise"` by
/// design; the table exists so docs, bench JSON and the conformance
/// harness state the contract explicitly.
pub fn kernel_modes() -> &'static [(&'static str, &'static str)] {
    &[
        ("ldl_scatter_sub_f64", "bitwise"),
        ("ldl_backward_reduce_f64", "bitwise"),
        ("ldl_diag_scale_f64", "bitwise"),
        ("admm_elementwise_f64", "bitwise"),
    ]
}

#[cfg(target_arch = "x86_64")]
fn use_avx2() -> bool {
    active() == KernelBackend::Avx2
}

/// `w[ind[j]] -= l[j] * s` for every `j` — the LDLᵀ column scatter used
/// by both the numeric refactor and the forward substitution. Indices
/// within a call are distinct (structural rows of one `L` column), so
/// the updates are independent and the products can be formed 4-wide;
/// each element still sees exactly one `mul` and one `sub`.
///
/// # Panics
///
/// Panics (debug) when `l` and `ind` lengths differ.
#[inline]
pub fn scatter_sub(w: &mut [f64], ind: &[usize], l: &[f64], s: f64) {
    debug_assert_eq!(ind.len(), l.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: avx2 verified by dispatch.
        unsafe { scatter_sub_avx2(w, ind, l, s) };
        return;
    }
    for (&i, &lv) in ind.iter().zip(l) {
        w[i] -= lv * s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scatter_sub_avx2(w: &mut [f64], ind: &[usize], l: &[f64], s: f64) {
    use std::arch::x86_64::*;
    let vs = _mm256_set1_pd(s);
    let chunks = l.len() / 4 * 4;
    let mut j = 0;
    while j < chunks {
        // SAFETY: j + 4 <= chunks <= l.len() == ind.len().
        let vl = unsafe { _mm256_loadu_pd(l.as_ptr().add(j)) };
        let prod = _mm256_mul_pd(vl, vs);
        let mut t = [0.0f64; 4];
        unsafe { _mm256_storeu_pd(t.as_mut_ptr(), prod) };
        // scatter stores need AVX-512; the subtracts stay scalar but each
        // element's arithmetic (one mul, one sub) matches the scalar path
        w[ind[j]] -= t[0];
        w[ind[j + 1]] -= t[1];
        w[ind[j + 2]] -= t[2];
        w[ind[j + 3]] -= t[3];
        j += 4;
    }
    for jj in chunks..l.len() {
        w[ind[jj]] -= l[jj] * s;
    }
}

/// `acc - Σ_j l[j] * w[ind[j]]` with the subtraction chain replayed in
/// ascending-`j` order — the backward-substitution reduction. The
/// products are gathered and multiplied 4-wide; the running subtraction
/// happens element-by-element in the scalar order, so the result is
/// bit-identical to the reference loop.
#[inline]
pub fn gather_sub_reduce(acc: f64, ind: &[usize], l: &[f64], w: &[f64]) -> f64 {
    debug_assert_eq!(ind.len(), l.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: avx2 verified by dispatch.
        return unsafe { gather_sub_reduce_avx2(acc, ind, l, w) };
    }
    let mut out = acc;
    for (&i, &lv) in ind.iter().zip(l) {
        out -= lv * w[i];
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_sub_reduce_avx2(acc: f64, ind: &[usize], l: &[f64], w: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let mut out = acc;
    let chunks = l.len() / 4 * 4;
    let mut j = 0;
    while j < chunks {
        // SAFETY: j + 4 <= chunks <= ind.len() == l.len(); every ind[j]
        // is a valid row index into w (structural invariant of L).
        let vi = unsafe { _mm256_loadu_si256(ind.as_ptr().add(j) as *const __m256i) };
        let vw = unsafe { _mm256_i64gather_pd::<8>(w.as_ptr(), vi) };
        let vl = unsafe { _mm256_loadu_pd(l.as_ptr().add(j)) };
        let prod = _mm256_mul_pd(vl, vw);
        let mut t = [0.0f64; 4];
        unsafe { _mm256_storeu_pd(t.as_mut_ptr(), prod) };
        out -= t[0];
        out -= t[1];
        out -= t[2];
        out -= t[3];
        j += 4;
    }
    for jj in chunks..l.len() {
        out -= l[jj] * w[ind[jj]];
    }
    out
}

/// `w[i] *= d[i]` — the diagonal scaling sweep of the LDLᵀ solve.
///
/// # Panics
///
/// Panics (debug) on length mismatch.
#[inline]
pub fn mul_in_place(w: &mut [f64], d: &[f64]) {
    debug_assert_eq!(w.len(), d.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: avx2 verified by dispatch.
        unsafe { mul_in_place_avx2(w, d) };
        return;
    }
    for (wi, &di) in w.iter_mut().zip(d) {
        *wi *= di;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_in_place_avx2(w: &mut [f64], d: &[f64]) {
    use std::arch::x86_64::*;
    let chunks = w.len() / 4 * 4;
    let mut i = 0;
    while i < chunks {
        // SAFETY: i + 4 <= chunks <= both slice lengths.
        let vw = unsafe { _mm256_loadu_pd(w.as_ptr().add(i)) };
        let vd = unsafe { _mm256_loadu_pd(d.as_ptr().add(i)) };
        unsafe { _mm256_storeu_pd(w.as_mut_ptr().add(i), _mm256_mul_pd(vw, vd)) };
        i += 4;
    }
    for ii in chunks..w.len() {
        w[ii] *= d[ii];
    }
}

/// `tmp[i] = rho[i] * z[i] - y[i]` — the ADMM x̃-RHS precursor.
///
/// # Panics
///
/// Panics (debug) on length mismatch.
#[inline]
pub fn mul_sub(tmp: &mut [f64], rho: &[f64], z: &[f64], y: &[f64]) {
    debug_assert!(tmp.len() == rho.len() && tmp.len() == z.len() && tmp.len() == y.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: avx2 verified by dispatch.
        unsafe { mul_sub_avx2(tmp, rho, z, y) };
        return;
    }
    for i in 0..tmp.len() {
        tmp[i] = rho[i] * z[i] - y[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_sub_avx2(tmp: &mut [f64], rho: &[f64], z: &[f64], y: &[f64]) {
    use std::arch::x86_64::*;
    let chunks = tmp.len() / 4 * 4;
    let mut i = 0;
    while i < chunks {
        // SAFETY: i + 4 <= chunks <= every slice length.
        let vr = unsafe { _mm256_loadu_pd(rho.as_ptr().add(i)) };
        let vz = unsafe { _mm256_loadu_pd(z.as_ptr().add(i)) };
        let vy = unsafe { _mm256_loadu_pd(y.as_ptr().add(i)) };
        let v = _mm256_sub_pd(_mm256_mul_pd(vr, vz), vy);
        unsafe { _mm256_storeu_pd(tmp.as_mut_ptr().add(i), v) };
        i += 4;
    }
    for ii in chunks..tmp.len() {
        tmp[ii] = rho[ii] * z[ii] - y[ii];
    }
}

/// `rhs[i] += sigma * x[i] - q[i]` — the σ-regularized ADMM RHS update.
///
/// # Panics
///
/// Panics (debug) on length mismatch.
#[inline]
pub fn add_scaled_sub(rhs: &mut [f64], sigma: f64, x: &[f64], q: &[f64]) {
    debug_assert!(rhs.len() == x.len() && rhs.len() == q.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: avx2 verified by dispatch.
        unsafe { add_scaled_sub_avx2(rhs, sigma, x, q) };
        return;
    }
    for i in 0..rhs.len() {
        rhs[i] += sigma * x[i] - q[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_scaled_sub_avx2(rhs: &mut [f64], sigma: f64, x: &[f64], q: &[f64]) {
    use std::arch::x86_64::*;
    let vs = _mm256_set1_pd(sigma);
    let chunks = rhs.len() / 4 * 4;
    let mut i = 0;
    while i < chunks {
        // SAFETY: i + 4 <= chunks <= every slice length.
        let vx = unsafe { _mm256_loadu_pd(x.as_ptr().add(i)) };
        let vq = unsafe { _mm256_loadu_pd(q.as_ptr().add(i)) };
        let vr = unsafe { _mm256_loadu_pd(rhs.as_ptr().add(i)) };
        let v = _mm256_add_pd(vr, _mm256_sub_pd(_mm256_mul_pd(vs, vx), vq));
        unsafe { _mm256_storeu_pd(rhs.as_mut_ptr().add(i), v) };
        i += 4;
    }
    for ii in chunks..rhs.len() {
        rhs[ii] += sigma * x[ii] - q[ii];
    }
}

/// `x[i] = alpha * xt[i] + (1 - alpha) * x[i]` — ADMM over-relaxation.
///
/// # Panics
///
/// Panics (debug) on length mismatch.
#[inline]
pub fn relax(x: &mut [f64], alpha: f64, xt: &[f64]) {
    debug_assert_eq!(x.len(), xt.len());
    let beta = 1.0 - alpha;
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: avx2 verified by dispatch.
        unsafe { relax_avx2(x, alpha, beta, xt) };
        return;
    }
    for (xi, &ti) in x.iter_mut().zip(xt) {
        *xi = alpha * ti + beta * *xi;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn relax_avx2(x: &mut [f64], alpha: f64, beta: f64, xt: &[f64]) {
    use std::arch::x86_64::*;
    let va = _mm256_set1_pd(alpha);
    let vb = _mm256_set1_pd(beta);
    let chunks = x.len() / 4 * 4;
    let mut i = 0;
    while i < chunks {
        // SAFETY: i + 4 <= chunks <= both slice lengths.
        let vt = unsafe { _mm256_loadu_pd(xt.as_ptr().add(i)) };
        let vx = unsafe { _mm256_loadu_pd(x.as_ptr().add(i)) };
        let v = _mm256_add_pd(_mm256_mul_pd(va, vt), _mm256_mul_pd(vb, vx));
        unsafe { _mm256_storeu_pd(x.as_mut_ptr().add(i), v) };
        i += 4;
    }
    for ii in chunks..x.len() {
        x[ii] = alpha * xt[ii] + beta * x[ii];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy(len: usize) -> Vec<f64> {
        (0..len).map(|i| ((i * 13 + 5) as f64 * 0.173).sin()).collect()
    }

    /// Every kernel must agree with the scalar backend *bitwise* — the
    /// whole point of the no-FMA discipline. Exercises ragged tails.
    #[test]
    fn all_kernels_are_bitwise_vs_scalar() {
        for n in [0usize, 1, 3, 4, 5, 8, 11, 17] {
            let rho = wavy(n);
            let z = wavy(n).iter().map(|v| v + 0.5).collect::<Vec<_>>();
            let y = wavy(n).iter().map(|v| v - 0.25).collect::<Vec<_>>();
            let q = wavy(n);
            let xt = wavy(n).iter().map(|v| v * 2.0).collect::<Vec<_>>();

            let mut a1 = wavy(n);
            let mut a2 = a1.clone();
            with_backend(KernelBackend::Scalar, || mul_sub(&mut a1, &rho, &z, &y));
            with_backend(detected(), || mul_sub(&mut a2, &rho, &z, &y));
            assert_eq!(a1, a2, "mul_sub n={n}");

            let mut b1 = wavy(n);
            let mut b2 = b1.clone();
            with_backend(KernelBackend::Scalar, || {
                add_scaled_sub(&mut b1, 1e-6, &z, &q)
            });
            with_backend(detected(), || add_scaled_sub(&mut b2, 1e-6, &z, &q));
            assert_eq!(b1, b2, "add_scaled_sub n={n}");

            let mut c1 = wavy(n);
            let mut c2 = c1.clone();
            with_backend(KernelBackend::Scalar, || relax(&mut c1, 1.6, &xt));
            with_backend(detected(), || relax(&mut c2, 1.6, &xt));
            assert_eq!(c1, c2, "relax n={n}");

            let mut d1 = wavy(n);
            let mut d2 = d1.clone();
            with_backend(KernelBackend::Scalar, || mul_in_place(&mut d1, &rho));
            with_backend(detected(), || mul_in_place(&mut d2, &rho));
            assert_eq!(d1, d2, "mul_in_place n={n}");
        }
    }

    #[test]
    fn scatter_and_gather_kernels_are_bitwise() {
        // a 32-long w with two L "columns" of ragged lengths
        let w0 = wavy(32);
        for len in [0usize, 1, 3, 4, 6, 9, 13] {
            let ind: Vec<usize> = (0..len).map(|j| (j * 5 + 2) % 32).collect();
            // make indices distinct like structural L rows
            let mut ind = ind;
            ind.sort_unstable();
            ind.dedup();
            let l = wavy(ind.len());

            let mut w1 = w0.clone();
            let mut w2 = w0.clone();
            with_backend(KernelBackend::Scalar, || {
                scatter_sub(&mut w1, &ind, &l, 0.7315)
            });
            with_backend(detected(), || scatter_sub(&mut w2, &ind, &l, 0.7315));
            assert_eq!(w1, w2, "scatter_sub len={}", ind.len());

            let r1 = with_backend(KernelBackend::Scalar, || {
                gather_sub_reduce(3.25, &ind, &l, &w0)
            });
            let r2 = with_backend(detected(), || gather_sub_reduce(3.25, &ind, &l, &w0));
            assert_eq!(r1.to_bits(), r2.to_bits(), "gather_sub_reduce len={}", ind.len());
        }
    }

    #[test]
    fn nan_passes_through_identically() {
        let mut w1 = vec![1.0, f64::NAN, 3.0, 4.0, 5.0];
        let mut w2 = w1.clone();
        let d = vec![2.0, 2.0, f64::NAN, 2.0, 2.0];
        with_backend(KernelBackend::Scalar, || mul_in_place(&mut w1, &d));
        with_backend(detected(), || mul_in_place(&mut w2, &d));
        for (a, b) in w1.iter().zip(&w2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn kernel_mode_table_is_all_bitwise() {
        for (kernel, mode) in kernel_modes() {
            assert_eq!(*mode, "bitwise", "{kernel}");
        }
    }
}
