//! Batched block-diagonal QP solves.
//!
//! The serve CO lane drains its deadline queue into groups of
//! structurally-identical QPs (same dimensions, same `P`/`A` sparsity
//! pattern, different values). Solving `K` such problems one by one
//! repeats all the pattern-only work `K` times; [`QpBatch`] instead
//! treats them as one block-diagonal program `diag(QP₁, …, QP_K)`:
//!
//! * **one symbolic phase** — the KKT pattern is shared, so a single
//!   [`SymbolicLdl`] analysis (and a single [`SparseKkt`] assembly map)
//!   serves every block;
//! * **one numeric refactor pass** — fresh blocks factor back-to-back
//!   into the contiguous per-block storage of [`BatchLdl`] instead of
//!   `K` scattered allocations;
//! * **lockstep ADMM** — all blocks advance through the same iteration
//!   counter with per-block ρ, per-block convergence (a converged block
//!   freezes and stops consuming work) and per-block poison handling.
//!
//! The per-block computation is *literally* the sequential solver's code:
//! setup mirrors [`solve_qp_warm`] statement for statement, the iteration
//! body is the shared [`AdmmState`], and the numeric factorization is the
//! shared `refactor_core` behind both [`BatchLdl`] and the standalone
//! factor. A batch of width `K` therefore returns bit-identical
//! `x`/`y`/status/iterations/residuals to `K` sequential
//! [`solve_qp_warm`] calls on the same inputs — checked by the
//! `batched_single_qp` conformance pass. Only the [`QpDiagnostics`]
//! counters may differ (symbolic work is shared instead of repeated).

use crate::ldl::{BatchLdl, SymbolicLdl};
use crate::qp::{
    apply_scaling, build_factor, choose_sparse, compute_scaling, data_is_poisoned, escalate_bumps,
    numerical_error_solution, AdmmState, Backend, Factor, FactorCache, QpDiagnostics, QpProblem,
    QpSettings, QpSolution, QpStatus, QpWarmStart, QpWorkspace, RHO_MAX, RHO_MIN,
};
use crate::sparse::SparseKkt;
use std::sync::Arc;

/// One problem of a batch: the QP, an optional warm start, and the
/// per-problem workspace whose caches (scaling, factor, symbolic, ρ) are
/// honored and refreshed exactly as a sequential [`solve_qp_warm`] would.
pub struct QpBatchJob<'a> {
    /// The problem to solve.
    pub problem: &'a QpProblem,
    /// Warm-start iterate, ignored unless its dimensions fit.
    pub warm: Option<&'a QpWarmStart>,
    /// The problem's own workspace (caches consulted and updated).
    pub workspace: &'a mut QpWorkspace,
}

/// Error returned by [`QpBatch::solve`] before any work is done; the
/// jobs' workspaces are untouched when this is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpBatchError {
    /// The batch contains no jobs.
    Empty,
    /// Block `block` differs structurally from block 0: dimensions,
    /// `P`/`A` sparsity pattern, or backend selection.
    PatternMismatch {
        /// Index of the first offending job.
        block: usize,
    },
}

impl std::fmt::Display for QpBatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpBatchError::Empty => write!(f, "batch contains no jobs"),
            QpBatchError::PatternMismatch { block } => {
                write!(f, "block {block} does not share block 0's structure")
            }
        }
    }
}

impl std::error::Error for QpBatchError {}

/// `K` structurally-identical QPs solved as one block-diagonal program.
/// See the [module docs](crate::batch) for the sharing scheme and the
/// bit-equality contract with sequential solves.
#[derive(Default)]
pub struct QpBatch<'a> {
    jobs: Vec<QpBatchJob<'a>>,
}

impl<'a> QpBatch<'a> {
    /// An empty batch; [`QpBatch::push`] jobs into it.
    pub fn new() -> Self {
        QpBatch { jobs: Vec::new() }
    }

    /// A batch from pre-collected jobs.
    pub fn from_jobs(jobs: Vec<QpBatchJob<'a>>) -> Self {
        QpBatch { jobs }
    }

    /// Adds a job to the batch.
    pub fn push(&mut self, job: QpBatchJob<'a>) {
        self.jobs.push(job);
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Solves every block, returning one [`QpSolution`] per job in job
    /// order.
    ///
    /// # Errors
    ///
    /// [`QpBatchError`] when the batch is empty or a block's structure
    /// differs from block 0's; no workspace is touched in that case.
    pub fn solve(self, settings: &QpSettings) -> Result<Vec<QpSolution>, QpBatchError> {
        solve_qp_batch(self.jobs, settings)
    }
}

/// Which factor storage a live block solves through.
// a batch holds at most a drain's worth of blocks, so the size gap
// between a full dense factor and a slot index is irrelevant here
#[allow(clippy::large_enum_variant)]
enum BlockFactor {
    /// A per-block factor: dense blocks, and blocks whose workspace
    /// factor cache hit (their cached factor is reused verbatim, exactly
    /// as sequentially). `None` only transiently during ρ-refactors.
    Solo(Option<Factor>),
    /// Block `slot` of the shared [`BatchLdl`].
    Shared(usize),
}

/// A block still being advanced by the lockstep loop.
struct Block<'a> {
    /// Position in the caller's job vector.
    idx: usize,
    problem: &'a QpProblem,
    workspace: &'a mut QpWorkspace,
    scaled: QpProblem,
    st: AdmmState,
    gram: crate::sparse::SparseMatrix,
    factor: BlockFactor,
    diag: QpDiagnostics,
    iters: usize,
    done: bool,
}

/// Functional form of [`QpBatch::solve`].
///
/// # Errors
///
/// See [`QpBatch::solve`].
pub fn solve_qp_batch(
    jobs: Vec<QpBatchJob<'_>>,
    settings: &QpSettings,
) -> Result<Vec<QpSolution>, QpBatchError> {
    if jobs.is_empty() {
        return Err(QpBatchError::Empty);
    }
    // structural validation up front, before any workspace is touched
    {
        let p0 = jobs[0].problem;
        for (i, job) in jobs.iter().enumerate().skip(1) {
            let pr = job.problem;
            if pr.num_vars() != p0.num_vars()
                || pr.num_constraints() != p0.num_constraints()
                || !pr.p().same_pattern(p0.p())
                || !pr.a().same_pattern(p0.a())
                || pr.backend() != p0.backend()
            {
                return Err(QpBatchError::PatternMismatch { block: i });
            }
        }
    }
    let n = jobs[0].problem.num_vars();
    let m = jobs[0].problem.num_constraints();
    let init_rho = settings.rho.clamp(RHO_MIN, RHO_MAX);

    let mut results: Vec<Option<QpSolution>> = (0..jobs.len()).map(|_| None).collect();
    let mut blocks: Vec<Block<'_>> = Vec::with_capacity(jobs.len());
    // the shared KKT assembly scratch: every block has the same pattern,
    // and nothing reads its values across block boundaries (each use
    // re-assembles before factoring), so one instance serves the batch
    let mut shared_kkt: Option<SparseKkt> = None;
    // indices (into `blocks`) of fresh sparse blocks, in job order; their
    // BatchLdl slot is their position in this list
    let mut fresh_sparse: Vec<usize> = Vec::new();
    let mut fresh_use_sparse: Option<bool> = None;

    // per-block setup, mirroring solve_qp_warm + the solve_qp_scaled
    // preamble statement for statement
    for (idx, job) in jobs.into_iter().enumerate() {
        let QpBatchJob {
            problem,
            warm,
            workspace,
        } = job;
        if data_is_poisoned(problem) {
            workspace.clear();
            results[idx] = Some(numerical_error_solution(n, m, 0, false, QpDiagnostics::default()));
            continue;
        }
        let reuse_scaling = matches!(
            &workspace.scaling,
            Some((d, e)) if d.len() == n && e.len() == m
        );
        if !reuse_scaling {
            workspace.scaling = Some(compute_scaling(problem));
            workspace.factor = None;
            workspace.rho = None;
        }
        let (d, e) = workspace.scaling.as_ref().expect("scaling just ensured");
        let scaled = apply_scaling(problem, d, e);
        let start = warm.filter(|w| w.x.len() == n).map(|w| {
            let x: Vec<f64> = w.x.iter().zip(d).map(|(xi, di)| xi / di).collect();
            let y: Vec<f64> = if w.y.len() == m {
                w.y.iter().zip(e).map(|(yi, ei)| yi / ei).collect()
            } else {
                vec![0.0; m]
            };
            let z = scaled.a.mul_vec(&x);
            (x, y, z)
        });

        let eq: Vec<bool> = scaled.l.iter().zip(&scaled.u).map(|(lo, hi)| lo == hi).collect();
        let mut diag = QpDiagnostics::default();
        let cached = workspace.factor.take();
        match cached {
            Some(c)
                if c.sigma == settings.sigma
                    && c.p == scaled.p
                    && c.a == scaled.a
                    && c.eq == eq
                    && c.factor.is_sparse()
                        == choose_sparse(scaled.backend, n, c.kkt.matrix().fill_ratio()) =>
            {
                diag.factor_cache_hits += 1;
                let rho = c.rho;
                let st = AdmmState::new(&scaled, rho, eq, start);
                if shared_kkt.is_none() {
                    shared_kkt = Some(c.kkt);
                }
                blocks.push(Block {
                    idx,
                    problem,
                    workspace,
                    scaled,
                    st,
                    gram: c.gram,
                    factor: BlockFactor::Solo(Some(c.factor)),
                    diag,
                    iters: 0,
                    done: false,
                });
            }
            _ => {
                let st = AdmmState::new(&scaled, init_rho, eq, start);
                let gram = scaled.a.gram_weighted(&st.rho_v);
                if shared_kkt.is_none() {
                    shared_kkt = Some(SparseKkt::new(&scaled.p, &gram));
                }
                let kkt = shared_kkt.as_mut().expect("scratch just ensured");
                let use_sparse = *fresh_use_sparse.get_or_insert_with(|| {
                    choose_sparse(scaled.backend, n, kkt.matrix().fill_ratio())
                });
                let factor = if use_sparse {
                    // deferred: factored into the shared BatchLdl below,
                    // once the number of fresh sparse blocks is known
                    fresh_sparse.push(blocks.len());
                    BlockFactor::Shared(fresh_sparse.len() - 1)
                } else {
                    match build_factor(
                        kkt,
                        &scaled.p,
                        &gram,
                        settings.sigma,
                        false,
                        &mut workspace.symbolic,
                        None,
                        &mut diag,
                    ) {
                        Some(f) => BlockFactor::Solo(Some(f)),
                        None => {
                            workspace.clear();
                            results[idx] = Some(numerical_error_solution(n, m, 0, false, diag));
                            continue;
                        }
                    }
                };
                blocks.push(Block {
                    idx,
                    problem,
                    workspace,
                    scaled,
                    st,
                    gram,
                    factor,
                    diag,
                    iters: 0,
                    done: false,
                });
            }
        }
    }

    // the single numeric pass: fresh sparse blocks factor back-to-back
    // into contiguous BatchLdl storage under one shared symbolic analysis
    let mut batch: Option<BatchLdl> = None;
    if !fresh_sparse.is_empty() {
        let kkt = shared_kkt.as_mut().expect("fresh blocks created the scratch");
        let shared_sym: Arc<SymbolicLdl> = blocks
            .iter()
            .find_map(|b| {
                b.workspace
                    .symbolic
                    .as_ref()
                    .filter(|s| s.matches(kkt.matrix()))
                    .cloned()
            })
            .unwrap_or_else(|| SymbolicLdl::analyze(kkt.matrix()));
        let mut bldl = BatchLdl::new(shared_sym.clone(), fresh_sparse.len());
        for (slot, &bi) in fresh_sparse.iter().enumerate() {
            let Block {
                scaled,
                gram,
                diag,
                workspace,
                ..
            } = &mut blocks[bi];
            let ws_sym = &mut workspace.symbolic;
            let ok = escalate_bumps(kkt, &scaled.p, gram, settings.sigma, diag, |k, diag| {
                // the same per-attempt symbolic bookkeeping build_factor
                // does, with the shared analysis installed on a miss
                match ws_sym.as_ref() {
                    Some(s) if s.matches(k) => diag.symbolic_cache_hits += 1,
                    _ => {
                        *ws_sym = Some(shared_sym.clone());
                        diag.symbolic_rebuilds += 1;
                    }
                }
                bldl.refactor_block(slot, k).is_ok() && bldl.is_positive_definite(slot)
            });
            if !ok {
                let blk = &mut blocks[bi];
                blk.workspace.clear();
                results[blk.idx] = Some(numerical_error_solution(n, m, 0, true, blk.diag));
                blk.done = true;
            }
        }
        batch = Some(bldl);
    }

    // lockstep ADMM: every live block advances through the same iteration
    // counter, so each block's trajectory is identical to its sequential
    // solve; converged/failed blocks freeze and stop consuming work
    let mut remaining = blocks.iter().filter(|b| !b.done).count();
    for it in 0..settings.max_iters {
        if remaining == 0 {
            break;
        }
        for block in blocks.iter_mut() {
            if block.done {
                continue;
            }
            // None = keep running; Some(status) = finished this iteration
            let mut outcome: Option<QpStatus> = None;
            {
                let Block {
                    scaled,
                    st,
                    gram,
                    factor,
                    diag,
                    workspace,
                    iters,
                    ..
                } = &mut *block;
                *iters = it + 1;
                match factor {
                    BlockFactor::Solo(f) => {
                        let fac = f.as_mut().expect("solo factor present");
                        st.iterate(scaled, settings, &mut |b, out| fac.solve_into(b, out));
                    }
                    BlockFactor::Shared(slot) => {
                        let s = *slot;
                        let bldl = batch.as_mut().expect("shared blocks imply a batch factor");
                        st.iterate(scaled, settings, &mut |b, out| {
                            bldl.solve_block_into(s, b, out)
                        });
                    }
                }
                if it % 10 == 9 || it == settings.max_iters - 1 {
                    st.measure_residuals(scaled);
                    if st.poisoned() {
                        outcome = Some(QpStatus::NumericalError);
                    } else if st.converged(settings.eps_abs) {
                        outcome = Some(QpStatus::Solved);
                    } else if let Some(new_rho) = st.rho_rebalance(settings) {
                        st.set_rho(new_rho);
                        *gram = scaled.a.gram_weighted(&st.rho_v);
                        let kkt = shared_kkt.as_mut().expect("live blocks imply a scratch");
                        let refactored = match factor {
                            BlockFactor::Solo(f) => {
                                let prev = f.take().expect("solo factor present");
                                let use_sparse = prev.is_sparse();
                                match build_factor(
                                    kkt,
                                    &scaled.p,
                                    gram,
                                    settings.sigma,
                                    use_sparse,
                                    &mut workspace.symbolic,
                                    Some(prev),
                                    diag,
                                ) {
                                    Some(nf) => {
                                        *f = Some(nf);
                                        true
                                    }
                                    None => false,
                                }
                            }
                            BlockFactor::Shared(slot) => {
                                let s = *slot;
                                let bldl =
                                    batch.as_mut().expect("shared blocks imply a batch factor");
                                let ws_sym = &mut workspace.symbolic;
                                escalate_bumps(kkt, &scaled.p, gram, settings.sigma, diag, |k, diag| {
                                    match ws_sym.as_ref() {
                                        Some(sy) if sy.matches(k) => diag.symbolic_cache_hits += 1,
                                        _ => {
                                            *ws_sym = Some(
                                                bldl.symbolic().clone(),
                                            );
                                            diag.symbolic_rebuilds += 1;
                                        }
                                    }
                                    bldl.refactor_block(s, k).is_ok()
                                        && bldl.is_positive_definite(s)
                                })
                            }
                        };
                        if !refactored {
                            outcome = Some(QpStatus::NumericalError);
                        }
                    }
                }
            }
            match outcome {
                None => {}
                Some(QpStatus::NumericalError) => {
                    let use_sparse = matches!(
                        &block.factor,
                        BlockFactor::Shared(_) | BlockFactor::Solo(Some(Factor::Sparse(_)))
                    );
                    block.workspace.clear();
                    results[block.idx] =
                        Some(numerical_error_solution(n, m, block.iters, use_sparse, block.diag));
                    block.done = true;
                    remaining -= 1;
                }
                Some(status) => {
                    finalize_block(
                        block,
                        batch.as_ref(),
                        shared_kkt.as_ref().expect("live blocks imply a scratch"),
                        settings,
                        status,
                        &mut results,
                    );
                    remaining -= 1;
                }
            }
        }
    }
    // iteration budget exhausted: everything still live finalizes as
    // MaxIterations, exactly as the sequential loop's fallthrough
    for block in blocks.iter_mut() {
        if !block.done {
            finalize_block(
                block,
                batch.as_ref(),
                shared_kkt.as_ref().expect("live blocks imply a scratch"),
                settings,
                QpStatus::MaxIterations,
                &mut results,
            );
        }
    }

    Ok(results
        .into_iter()
        .map(|r| r.expect("every job produced a solution"))
        .collect())
}

/// The sequential solver's epilogue for one block: refresh the workspace
/// caches, unscale the iterates and recompute residuals in original
/// units — mirroring the tails of `solve_qp_scaled` and `solve_qp_warm`.
fn finalize_block(
    blk: &mut Block<'_>,
    batch: Option<&BatchLdl>,
    shared_kkt: &SparseKkt,
    settings: &QpSettings,
    status: QpStatus,
    results: &mut [Option<QpSolution>],
) {
    let ws = &mut *blk.workspace;
    ws.rho = Some(blk.st.rho);
    let factor = match &mut blk.factor {
        BlockFactor::Solo(f) => f.take().expect("solo factor present"),
        BlockFactor::Shared(slot) => Factor::Sparse(
            batch
                .expect("shared blocks imply a batch factor")
                .extract_block(*slot),
        ),
    };
    let use_sparse = factor.is_sparse();
    let backend = if use_sparse {
        Backend::Sparse
    } else {
        Backend::Dense
    };
    ws.factor = Some(FactorCache {
        p: blk.scaled.p.clone(),
        a: blk.scaled.a.clone(),
        eq: blk.st.eq.clone(),
        sigma: settings.sigma,
        rho: blk.st.rho,
        gram: blk.gram.clone(),
        kkt: shared_kkt.clone(),
        factor,
    });
    let mut x = std::mem::take(&mut blk.st.x);
    let mut y = std::mem::take(&mut blk.st.y);
    let (d, e) = ws.scaling.as_ref().expect("scaling retained");
    for (xi, di) in x.iter_mut().zip(d) {
        *xi *= di;
    }
    for (yi, ei) in y.iter_mut().zip(e) {
        *yi *= ei;
    }
    let problem = blk.problem;
    let primal = problem.max_violation(&x);
    let px = problem.p().mul_vec(&x);
    let aty = problem.a().t_mul_vec(&y);
    let dual = (0..problem.num_vars())
        .map(|i| (px[i] + problem.q[i] + aty[i]).abs())
        .fold(0.0, f64::max);
    results[blk.idx] = Some(QpSolution {
        x,
        y,
        status,
        iterations: blk.iters,
        primal_residual: primal,
        dual_residual: dual,
        backend,
        diagnostics: blk.diag,
    });
    blk.done = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Mat;
    use crate::qp::solve_qp_warm;

    /// MPC-like tracking QP with boxes and rate limits; `drift` perturbs
    /// the linear term without touching the pattern.
    fn tracking_qp(nv: usize, drift: f64) -> QpProblem {
        let p = Mat::diag(&vec![2.0; nv]);
        let q: Vec<f64> = (0..nv)
            .map(|i| -((i % 7) as f64) * 1.5 + drift * (1.0 + (i % 3) as f64))
            .collect();
        let mut rows = Mat::zeros(2 * nv, nv);
        for i in 0..nv {
            *rows.at_mut(i, i) = 1.0;
            *rows.at_mut(nv + i, i) = 1.0;
            if i + 1 < nv {
                *rows.at_mut(nv + i, i + 1) = -1.0;
            }
        }
        QpProblem::new(p, q, rows, vec![-1.0; 2 * nv], vec![1.0; 2 * nv]).unwrap()
    }

    fn assert_solutions_bit_identical(batch: &QpSolution, seq: &QpSolution, label: &str) {
        assert_eq!(batch.status, seq.status, "{label}: status");
        assert_eq!(batch.iterations, seq.iterations, "{label}: iterations");
        assert_eq!(batch.backend, seq.backend, "{label}: backend");
        assert_eq!(batch.x, seq.x, "{label}: x");
        assert_eq!(batch.y, seq.y, "{label}: y");
        assert!(
            batch.primal_residual == seq.primal_residual
                && batch.dual_residual == seq.dual_residual,
            "{label}: residuals {} / {} vs {} / {}",
            batch.primal_residual,
            batch.dual_residual,
            seq.primal_residual,
            seq.dual_residual
        );
    }

    /// Batched solves must be bit-identical to sequential ones across
    /// widths, cold and warm, sparse (nv = 40) and dense (nv = 6).
    fn batch_matches_sequential(nv: usize) {
        let settings = QpSettings::default();
        for width in [1usize, 2, 3, 5] {
            let problems: Vec<QpProblem> =
                (0..width).map(|i| tracking_qp(nv, 0.07 * i as f64)).collect();
            // sequential reference, two rounds (cold, then warm + caches)
            let mut seq_ws: Vec<QpWorkspace> = (0..width).map(|_| QpWorkspace::new()).collect();
            let seq_cold: Vec<QpSolution> = problems
                .iter()
                .zip(&mut seq_ws)
                .map(|(p, ws)| solve_qp_warm(p, &settings, None, ws))
                .collect();
            let seq_warm: Vec<QpSolution> = problems
                .iter()
                .zip(&mut seq_ws)
                .zip(&seq_cold)
                .map(|((p, ws), prev)| {
                    let warm = QpWarmStart::from_solution(prev);
                    solve_qp_warm(p, &settings, Some(&warm), ws)
                })
                .collect();

            // batched, same two rounds
            let mut bat_ws: Vec<QpWorkspace> = (0..width).map(|_| QpWorkspace::new()).collect();
            let jobs: Vec<QpBatchJob<'_>> = problems
                .iter()
                .zip(&mut bat_ws)
                .map(|(p, ws)| QpBatchJob {
                    problem: p,
                    warm: None,
                    workspace: ws,
                })
                .collect();
            let bat_cold = solve_qp_batch(jobs, &settings).unwrap();
            let warms: Vec<QpWarmStart> =
                bat_cold.iter().map(QpWarmStart::from_solution).collect();
            let jobs: Vec<QpBatchJob<'_>> = problems
                .iter()
                .zip(&mut bat_ws)
                .zip(&warms)
                .map(|((p, ws), w)| QpBatchJob {
                    problem: p,
                    warm: Some(w),
                    workspace: ws,
                })
                .collect();
            let bat_warm = solve_qp_batch(jobs, &settings).unwrap();

            for i in 0..width {
                assert_solutions_bit_identical(
                    &bat_cold[i],
                    &seq_cold[i],
                    &format!("nv={nv} width={width} cold block {i}"),
                );
                assert_solutions_bit_identical(
                    &bat_warm[i],
                    &seq_warm[i],
                    &format!("nv={nv} width={width} warm block {i}"),
                );
                assert_eq!(bat_cold[i].status, QpStatus::Solved);
            }
        }
    }

    #[test]
    fn sparse_batch_is_bit_identical_to_sequential() {
        batch_matches_sequential(40);
    }

    #[test]
    fn dense_batch_is_bit_identical_to_sequential() {
        batch_matches_sequential(6);
    }

    #[test]
    fn empty_batch_is_rejected() {
        assert_eq!(
            solve_qp_batch(Vec::new(), &QpSettings::default()).unwrap_err(),
            QpBatchError::Empty
        );
    }

    #[test]
    fn pattern_mismatch_is_rejected_without_touching_workspaces() {
        let a = tracking_qp(8, 0.0);
        let b = tracking_qp(9, 0.0); // different dimensions
        let mut wa = QpWorkspace::new();
        let mut wb = QpWorkspace::new();
        let jobs = vec![
            QpBatchJob {
                problem: &a,
                warm: None,
                workspace: &mut wa,
            },
            QpBatchJob {
                problem: &b,
                warm: None,
                workspace: &mut wb,
            },
        ];
        assert_eq!(
            solve_qp_batch(jobs, &QpSettings::default()).unwrap_err(),
            QpBatchError::PatternMismatch { block: 1 }
        );
        assert!(wa.symbolic().is_none() && wa.carried_rho().is_none());
        assert!(wb.symbolic().is_none() && wb.carried_rho().is_none());
    }

    #[test]
    fn poisoned_block_fails_alone_and_matches_sequential() {
        let settings = QpSettings::default();
        let good = tracking_qp(40, 0.1);
        let mut bad = tracking_qp(40, 0.2);
        bad.q[3] = f64::NAN;
        // sequential reference
        let (mut w1, mut w2, mut w3) = (QpWorkspace::new(), QpWorkspace::new(), QpWorkspace::new());
        let s1 = solve_qp_warm(&good, &settings, None, &mut w1);
        let s2 = solve_qp_warm(&bad, &settings, None, &mut w2);
        let s3 = solve_qp_warm(&good, &settings, None, &mut w3);
        assert_eq!(s2.status, QpStatus::NumericalError);
        // batch
        let (mut b1, mut b2, mut b3) = (QpWorkspace::new(), QpWorkspace::new(), QpWorkspace::new());
        let jobs = vec![
            QpBatchJob {
                problem: &good,
                warm: None,
                workspace: &mut b1,
            },
            QpBatchJob {
                problem: &bad,
                warm: None,
                workspace: &mut b2,
            },
            QpBatchJob {
                problem: &good,
                warm: None,
                workspace: &mut b3,
            },
        ];
        let sols = solve_qp_batch(jobs, &settings).unwrap();
        assert_solutions_bit_identical(&sols[0], &s1, "block 0");
        assert_eq!(sols[1].status, QpStatus::NumericalError);
        assert_eq!(sols[1].x, s2.x);
        assert_solutions_bit_identical(&sols[2], &s3, "block 2");
        assert!(b2.carried_rho().is_none(), "failed block clears its workspace");
    }

    #[test]
    fn batch_workspaces_interoperate_with_sequential_solves() {
        // a workspace populated by a batch must serve a later sequential
        // solve exactly as one populated sequentially, and vice versa
        let settings = QpSettings::default();
        let qp = tracking_qp(40, 0.0);
        let mut ws_seq = QpWorkspace::new();
        let first_seq = solve_qp_warm(&qp, &settings, None, &mut ws_seq);

        let mut ws_bat = QpWorkspace::new();
        let first_bat = solve_qp_batch(
            vec![QpBatchJob {
                problem: &qp,
                warm: None,
                workspace: &mut ws_bat,
            }],
            &settings,
        )
        .unwrap()
        .remove(0);
        assert_solutions_bit_identical(&first_bat, &first_seq, "first");

        let warm = QpWarmStart::from_solution(&first_seq);
        let second_seq = solve_qp_warm(&qp, &settings, Some(&warm), &mut ws_seq);
        let second_from_batch_ws = solve_qp_warm(&qp, &settings, Some(&warm), &mut ws_bat);
        assert_solutions_bit_identical(&second_from_batch_ws, &second_seq, "second");
        // the batch path must have produced an identical factor cache hit
        assert_eq!(second_from_batch_ws.diagnostics.factor_cache_hits, 1);
    }
}
