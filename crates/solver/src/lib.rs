//! Dense linear algebra and an ADMM quadratic-program solver — the
//! CVXPY substitute for the iCOIL CO module.
//!
//! The paper convexifies the nonconvex parking problem (eq. 6) and hands
//! the resulting convex subproblems to "open-source optimization software
//! (e.g., CVXPY)". This crate plays that role:
//!
//! * [`Mat`] — a small dense `f64` matrix with Cholesky factorization;
//! * [`QpProblem`] / [`solve_qp`] — an OSQP-style ADMM solver for
//!   `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u`.
//!
//! The sequential-convexification loop that *produces* those QPs lives in
//! `icoil-co`, next to the MPC formulation it linearizes.
//!
//! # Example
//!
//! ```
//! use icoil_solver::{Mat, QpProblem, solve_qp, QpSettings};
//!
//! // minimize (x0-1)² + (x1+2)²  subject to  -0.5 ≤ x ≤ 0.5 (element-wise)
//! let p = Mat::diag(&[2.0, 2.0]);
//! let q = vec![-2.0, 4.0];
//! let a = Mat::identity(2);
//! let qp = QpProblem::new(p, q, a, vec![-0.5, -0.5], vec![0.5, 0.5]).unwrap();
//! let sol = solve_qp(&qp, &QpSettings::default());
//! assert!((sol.x[0] - 0.5).abs() < 1e-4);
//! assert!((sol.x[1] + 0.5).abs() < 1e-4);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod ldl;
pub mod linalg;
pub mod qp;
pub mod simd;
pub mod sparse;

pub use batch::{solve_qp_batch, QpBatch, QpBatchError, QpBatchJob};
pub use ldl::{BatchLdl, LdlError, SparseLdl, SymbolicLdl};
pub use linalg::{Cholesky, Mat};
pub use qp::{
    solve_qp, solve_qp_warm, Backend, QpDiagnostics, QpProblem, QpSettings, QpSolution, QpStatus,
    QpWarmStart, QpWorkspace, QpWorkspaceSnapshot,
};
pub use sparse::{SparseKkt, SparseMatrix, TripletBuilder};
