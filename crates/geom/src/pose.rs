//! Planar rigid-body pose.

use crate::{angle_diff, normalize_angle, Vec2};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A planar pose: position plus heading.
///
/// Used for the ego-vehicle state, obstacle placements and the goal bay.
/// The heading is stored normalized to `(-π, π]`.
///
/// # Example
///
/// ```
/// use icoil_geom::{Pose2, Vec2};
/// use std::f64::consts::FRAC_PI_2;
///
/// let p = Pose2::new(1.0, 2.0, FRAC_PI_2);
/// // A point one meter ahead of the vehicle, expressed in world frame:
/// let w = p.to_world(Vec2::new(1.0, 0.0));
/// assert!((w.x - 1.0).abs() < 1e-12 && (w.y - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose2 {
    /// World x coordinate (meters).
    pub x: f64,
    /// World y coordinate (meters).
    pub y: f64,
    /// Heading in radians, normalized to `(-π, π]`.
    pub theta: f64,
}

impl Pose2 {
    /// Creates a pose, normalizing the heading.
    pub fn new(x: f64, y: f64, theta: f64) -> Self {
        Pose2 {
            x,
            y,
            theta: normalize_angle(theta),
        }
    }

    /// Creates a pose from a position and heading.
    pub fn from_parts(position: Vec2, theta: f64) -> Self {
        Pose2::new(position.x, position.y, theta)
    }

    /// Position component.
    pub fn position(&self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Unit heading vector.
    pub fn heading(&self) -> Vec2 {
        Vec2::from_angle(self.theta)
    }

    /// Transforms a point from this pose's local frame into the world frame.
    pub fn to_world(&self, local: Vec2) -> Vec2 {
        self.position() + local.rotated(self.theta)
    }

    /// Transforms a world-frame point into this pose's local frame.
    pub fn to_local(&self, world: Vec2) -> Vec2 {
        (world - self.position()).rotated(-self.theta)
    }

    /// Composes two poses: applies `other` in this pose's local frame.
    pub fn compose(&self, other: Pose2) -> Pose2 {
        let p = self.to_world(other.position());
        Pose2::new(p.x, p.y, self.theta + other.theta)
    }

    /// Inverse pose, such that `p.compose(p.inverse())` is the identity.
    pub fn inverse(&self) -> Pose2 {
        let p = (-self.position()).rotated(-self.theta);
        Pose2::new(p.x, p.y, -self.theta)
    }

    /// Euclidean distance between the positions of two poses.
    pub fn distance(&self, other: &Pose2) -> f64 {
        self.position().distance(other.position())
    }

    /// Absolute shortest heading difference to another pose, in `[0, π]`.
    pub fn heading_error(&self, other: &Pose2) -> f64 {
        angle_diff(self.theta, other.theta).abs()
    }

    /// Returns `true` when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.theta.is_finite()
    }
}

impl fmt::Display for Pose2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}; {:.3} rad)", self.x, self.y, self.theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn constructor_normalizes_heading() {
        let p = Pose2::new(0.0, 0.0, 3.0 * PI);
        assert!((p.theta - PI).abs() < 1e-12);
    }

    #[test]
    fn world_local_roundtrip() {
        let p = Pose2::new(3.0, -2.0, 0.7);
        let pts = [
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 2.0),
            Vec2::new(-4.0, 0.5),
        ];
        for q in pts {
            let w = p.to_world(q);
            let back = p.to_local(w);
            assert!(back.distance(q) < 1e-12);
        }
    }

    #[test]
    fn compose_inverse_is_identity() {
        let p = Pose2::new(1.0, 2.0, -0.9);
        let id = p.compose(p.inverse());
        assert!(id.position().norm() < 1e-12);
        assert!(id.theta.abs() < 1e-12);
    }

    #[test]
    fn compose_matches_sequential_transform() {
        let a = Pose2::new(1.0, 0.0, FRAC_PI_2);
        let b = Pose2::new(2.0, 0.0, 0.0);
        let c = a.compose(b);
        // b's origin (2,0) rotated 90° around a then offset: (1, 2)
        assert!((c.x - 1.0).abs() < 1e-12);
        assert!((c.y - 2.0).abs() < 1e-12);
        assert!((c.theta - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn heading_error_symmetric() {
        let a = Pose2::new(0.0, 0.0, 3.0);
        let b = Pose2::new(0.0, 0.0, -3.0);
        assert!((a.heading_error(&b) - b.heading_error(&a)).abs() < 1e-12);
        // short way across the ±π cut: |3 - (-3)| wraps to ~0.283
        assert!(a.heading_error(&b) < 0.3);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Pose2::new(1.5, -2.5, 0.25);
        let s = serde_json::to_string(&p).unwrap();
        let q: Pose2 = serde_json::from_str(&s).unwrap();
        assert_eq!(p, q);
    }
}
