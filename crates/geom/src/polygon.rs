//! Convex polygons.

use crate::{Obb, Segment, Vec2, EPS};
use serde::{Deserialize, Serialize};

/// A convex polygon with counter-clockwise vertices.
///
/// Used for irregular static obstacles (e.g. curb islands) in the parking
/// map. Construction validates convexity and winding.
///
/// # Example
///
/// ```
/// use icoil_geom::{ConvexPolygon, Vec2};
///
/// let tri = ConvexPolygon::new(vec![
///     Vec2::new(0.0, 0.0),
///     Vec2::new(2.0, 0.0),
///     Vec2::new(1.0, 2.0),
/// ]).unwrap();
/// assert!(tri.contains(Vec2::new(1.0, 0.5)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvexPolygon {
    vertices: Vec<Vec2>,
}

/// Error returned when a vertex list does not form a valid convex polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices were supplied.
    TooFewVertices,
    /// The vertices are not in convex position or not counter-clockwise.
    NotConvexCcw,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least three vertices"),
            PolygonError::NotConvexCcw => {
                write!(f, "vertices are not convex in counter-clockwise order")
            }
        }
    }
}

impl std::error::Error for PolygonError {}

impl ConvexPolygon {
    /// Builds a polygon from counter-clockwise vertices.
    ///
    /// # Errors
    ///
    /// Returns [`PolygonError::TooFewVertices`] for fewer than 3 vertices and
    /// [`PolygonError::NotConvexCcw`] when any turn is clockwise.
    pub fn new(vertices: Vec<Vec2>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let c = vertices[(i + 2) % n];
            if (b - a).cross(c - b) < -EPS {
                return Err(PolygonError::NotConvexCcw);
            }
        }
        Ok(ConvexPolygon { vertices })
    }

    /// Builds the polygon of an oriented box.
    pub fn from_obb(obb: &Obb) -> Self {
        ConvexPolygon {
            vertices: obb.corners().to_vec(),
        }
    }

    /// The vertex list (counter-clockwise).
    pub fn vertices(&self) -> &[Vec2] {
        &self.vertices
    }

    /// The polygon edges as segments.
    pub fn edges(&self) -> Vec<Segment> {
        let n = self.vertices.len();
        (0..n)
            .map(|i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
            .collect()
    }

    /// Signed area (positive because vertices are counter-clockwise).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        let mut s = 0.0;
        for i in 0..n {
            s += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        s * 0.5
    }

    /// Centroid of the polygon.
    pub fn centroid(&self) -> Vec2 {
        let n = self.vertices.len();
        let mut c = Vec2::ZERO;
        let mut a = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            c += (p + q) * w;
            a += w;
        }
        if a.abs() < EPS {
            // Degenerate polygon: average the vertices.
            let mut m = Vec2::ZERO;
            for v in &self.vertices {
                m += *v;
            }
            return m / n as f64;
        }
        c / (3.0 * a)
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if (b - a).cross(p - a) < -EPS {
                return false;
            }
        }
        true
    }

    /// Distance from the polygon boundary to a point (zero when inside).
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        self.edges()
            .iter()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// SAT overlap test against an oriented box.
    pub fn intersects_obb(&self, obb: &Obb) -> bool {
        let other = ConvexPolygon::from_obb(obb);
        self.intersects(&other)
    }

    /// SAT overlap test against another convex polygon.
    pub fn intersects(&self, other: &ConvexPolygon) -> bool {
        sat_separated(&self.vertices, &other.vertices).is_none()
            && sat_separated(&other.vertices, &self.vertices).is_none()
    }
}

/// Returns `Some(axis index)` when an edge normal of `a` separates the hulls.
fn sat_separated(a: &[Vec2], b: &[Vec2]) -> Option<usize> {
    let n = a.len();
    for i in 0..n {
        let edge = a[(i + 1) % n] - a[i];
        let axis = edge.perp().normalized();
        if axis == Vec2::ZERO {
            continue;
        }
        let (amin, amax) = project(a, axis);
        let (bmin, bmax) = project(b, axis);
        if amax < bmin - EPS || bmax < amin - EPS {
            return Some(i);
        }
    }
    None
}

fn project(pts: &[Vec2], axis: Vec2) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for p in pts {
        let v = p.dot(axis);
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pose2;

    fn square() -> ConvexPolygon {
        ConvexPolygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(0.0, 2.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            ConvexPolygon::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]),
            Err(PolygonError::TooFewVertices)
        );
        // clockwise square rejected
        assert_eq!(
            ConvexPolygon::new(vec![
                Vec2::new(0.0, 0.0),
                Vec2::new(0.0, 2.0),
                Vec2::new(2.0, 2.0),
                Vec2::new(2.0, 0.0),
            ]),
            Err(PolygonError::NotConvexCcw)
        );
        // non-convex "arrow" rejected
        assert!(ConvexPolygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.5, 0.5),
            Vec2::new(0.0, 2.0),
        ])
        .is_err());
    }

    #[test]
    fn area_and_centroid() {
        let s = square();
        assert!((s.area() - 4.0).abs() < 1e-12);
        assert!(s.centroid().distance(Vec2::new(1.0, 1.0)) < 1e-12);
    }

    #[test]
    fn containment() {
        let s = square();
        assert!(s.contains(Vec2::new(1.0, 1.0)));
        assert!(s.contains(Vec2::new(0.0, 0.0))); // vertex
        assert!(s.contains(Vec2::new(1.0, 0.0))); // edge
        assert!(!s.contains(Vec2::new(3.0, 1.0)));
    }

    #[test]
    fn distance() {
        let s = square();
        assert_eq!(s.distance_to_point(Vec2::new(1.0, 1.0)), 0.0);
        assert!((s.distance_to_point(Vec2::new(4.0, 1.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_polygon_overlap() {
        let s = square();
        let t = ConvexPolygon::new(vec![
            Vec2::new(1.0, 1.0),
            Vec2::new(3.0, 1.0),
            Vec2::new(3.0, 3.0),
            Vec2::new(1.0, 3.0),
        ])
        .unwrap();
        let far = ConvexPolygon::new(vec![
            Vec2::new(10.0, 10.0),
            Vec2::new(11.0, 10.0),
            Vec2::new(10.5, 11.0),
        ])
        .unwrap();
        assert!(s.intersects(&t));
        assert!(t.intersects(&s));
        assert!(!s.intersects(&far));
    }

    #[test]
    fn polygon_obb_overlap() {
        let s = square();
        let hit = Obb::from_pose(Pose2::new(2.5, 1.0, 0.78), 2.0, 1.0);
        let miss = Obb::from_pose(Pose2::new(6.0, 6.0, 0.3), 2.0, 1.0);
        assert!(s.intersects_obb(&hit));
        assert!(!s.intersects_obb(&miss));
    }
}
