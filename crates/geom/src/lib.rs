//! 2-D geometry primitives for the iCOIL autonomous-parking stack.
//!
//! This crate provides the geometric vocabulary shared by every other crate
//! in the workspace: planar vectors and poses, segments, axis-aligned and
//! oriented bounding boxes, convex polygons, circles, occupancy grids and
//! polyline paths.
//!
//! Everything is `f64`-based, allocation-light and deterministic; there is
//! no global state and no randomness, so geometry results are reproducible
//! across runs — a requirement for the seeded experiment harness in
//! `icoil-world` / `icoil-core`.
//!
//! # Example
//!
//! ```
//! use icoil_geom::{Pose2, Obb, Vec2};
//!
//! // Two cars, one rotated; check whether their footprints collide.
//! let a = Obb::from_pose(Pose2::new(0.0, 0.0, 0.0), 4.0, 2.0);
//! let b = Obb::from_pose(Pose2::new(3.0, 0.5, 0.6), 4.0, 2.0);
//! assert!(a.intersects(&b));
//! assert!(a.contains(Vec2::new(1.9, 0.9)));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod aabb;
pub mod angle;
pub mod circle;
pub mod grid;
pub mod obb;
pub mod path;
pub mod polygon;
pub mod pose;
pub mod segment;
pub mod vec2;

pub use aabb::Aabb;
pub use angle::{angle_diff, normalize_angle};
pub use circle::Circle;
pub use grid::{Cell, OccupancyGrid};
pub use obb::Obb;
pub use path::Polyline;
pub use polygon::ConvexPolygon;
pub use pose::Pose2;
pub use segment::Segment;
pub use vec2::Vec2;

/// Numerical tolerance used by geometric predicates in this crate.
pub const EPS: f64 = 1e-9;
