//! Occupancy grids: rasterization and distance transforms.
//!
//! The grid is the shared raster substrate: the hybrid-A* planner uses it
//! for its heuristic distance map, and the perception crate rasterizes the
//! world into ego-centric BEV images on top of it.

use crate::{Aabb, Circle, ConvexPolygon, Obb, Vec2};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Integer grid coordinates `(col, row)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cell {
    /// Column index (x direction).
    pub col: i64,
    /// Row index (y direction).
    pub row: i64,
}

impl Cell {
    /// Creates a cell coordinate.
    pub const fn new(col: i64, row: i64) -> Self {
        Cell { col, row }
    }
}

/// A rectangular occupancy grid over a world-frame region.
///
/// Cells store `u8` occupancy (0 = free, 255 = occupied; intermediate values
/// are used by perception for soft evidence). The world-frame anchor is the
/// *minimum corner* of cell `(0, 0)`.
///
/// # Example
///
/// ```
/// use icoil_geom::{OccupancyGrid, Vec2, Obb, Pose2};
///
/// let mut g = OccupancyGrid::new(Vec2::ZERO, 0.5, 40, 40);
/// g.fill_obb(&Obb::from_pose(Pose2::new(10.0, 10.0, 0.3), 4.0, 2.0), 255);
/// assert!(g.occupancy_at(Vec2::new(10.0, 10.0)) > 0);
/// assert_eq!(g.occupancy_at(Vec2::new(1.0, 1.0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyGrid {
    origin: Vec2,
    resolution: f64,
    cols: usize,
    rows: usize,
    data: Vec<u8>,
}

impl OccupancyGrid {
    /// Creates an all-free grid.
    ///
    /// `origin` is the world position of the minimum corner; `resolution` is
    /// the cell edge length in meters.
    ///
    /// # Panics
    ///
    /// Panics when `resolution` is not strictly positive or a dimension is 0.
    pub fn new(origin: Vec2, resolution: f64, cols: usize, rows: usize) -> Self {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "grid resolution must be positive"
        );
        assert!(cols > 0 && rows > 0, "grid dimensions must be non-zero");
        OccupancyGrid {
            origin,
            resolution,
            cols,
            rows,
            data: vec![0; cols * rows],
        }
    }

    /// Creates a grid covering `bounds` at the given resolution.
    pub fn covering(bounds: &Aabb, resolution: f64) -> Self {
        let cols = (bounds.width() / resolution).ceil().max(1.0) as usize;
        let rows = (bounds.height() / resolution).ceil().max(1.0) as usize;
        OccupancyGrid::new(bounds.min, resolution, cols, rows)
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Cell edge length in meters.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// World position of the minimum corner of cell `(0, 0)`.
    pub fn origin(&self) -> Vec2 {
        self.origin
    }

    /// Raw cell data in row-major order (row 0 first).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw cell data in row-major order.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// World-frame axis-aligned extent covered by the grid.
    pub fn bounds(&self) -> Aabb {
        Aabb::new(
            self.origin,
            self.origin
                + Vec2::new(
                    self.cols as f64 * self.resolution,
                    self.rows as f64 * self.resolution,
                ),
        )
    }

    /// Converts a world point to (possibly out-of-range) cell coordinates.
    pub fn world_to_cell(&self, p: Vec2) -> Cell {
        Cell::new(
            ((p.x - self.origin.x) / self.resolution).floor() as i64,
            ((p.y - self.origin.y) / self.resolution).floor() as i64,
        )
    }

    /// World position of a cell's center.
    pub fn cell_to_world(&self, c: Cell) -> Vec2 {
        self.origin
            + Vec2::new(
                (c.col as f64 + 0.5) * self.resolution,
                (c.row as f64 + 0.5) * self.resolution,
            )
    }

    /// Returns `true` when the cell lies inside the grid.
    pub fn in_bounds(&self, c: Cell) -> bool {
        c.col >= 0 && c.row >= 0 && (c.col as usize) < self.cols && (c.row as usize) < self.rows
    }

    fn index(&self, c: Cell) -> Option<usize> {
        if self.in_bounds(c) {
            Some(c.row as usize * self.cols + c.col as usize)
        } else {
            None
        }
    }

    /// Occupancy of a cell; out-of-bounds cells read as occupied (255).
    pub fn occupancy(&self, c: Cell) -> u8 {
        match self.index(c) {
            Some(i) => self.data[i],
            None => 255,
        }
    }

    /// Occupancy at a world position.
    pub fn occupancy_at(&self, p: Vec2) -> u8 {
        self.occupancy(self.world_to_cell(p))
    }

    /// Sets the occupancy of a cell; out-of-bounds writes are ignored.
    pub fn set(&mut self, c: Cell, value: u8) {
        if let Some(i) = self.index(c) {
            self.data[i] = value;
        }
    }

    /// Returns `true` when the cell is at least `threshold` occupied.
    pub fn is_occupied(&self, c: Cell, threshold: u8) -> bool {
        self.occupancy(c) >= threshold
    }

    /// Resets every cell to `value`.
    pub fn fill(&mut self, value: u8) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Rasterizes a line between two world points (Bresenham).
    pub fn draw_line(&mut self, from: Vec2, to: Vec2, value: u8) {
        let a = self.world_to_cell(from);
        let b = self.world_to_cell(to);
        for c in bresenham(a, b) {
            self.set(c, value);
        }
    }

    /// Fills every cell whose center lies inside the oriented box.
    pub fn fill_obb(&mut self, obb: &Obb, value: u8) {
        let bb = obb.aabb();
        self.fill_region(&bb, |p| obb.contains(p), value);
    }

    /// Fills every cell whose center lies inside the circle.
    pub fn fill_circle(&mut self, circle: &Circle, value: u8) {
        let bb = Aabb::from_center(circle.center, circle.radius, circle.radius);
        self.fill_region(&bb, |p| circle.contains(p), value);
    }

    /// Fills every cell whose center lies inside the convex polygon.
    pub fn fill_polygon(&mut self, poly: &ConvexPolygon, value: u8) {
        if let Some(bb) = Aabb::from_points(poly.vertices().iter().copied()) {
            self.fill_region(&bb, |p| poly.contains(p), value);
        }
    }

    fn fill_region<F: Fn(Vec2) -> bool>(&mut self, bb: &Aabb, inside: F, value: u8) {
        let lo = self.world_to_cell(bb.min);
        let hi = self.world_to_cell(bb.max);
        for row in lo.row.max(0)..=hi.row.min(self.rows as i64 - 1) {
            for col in lo.col.max(0)..=hi.col.min(self.cols as i64 - 1) {
                let c = Cell::new(col, row);
                if inside(self.cell_to_world(c)) {
                    self.set(c, value);
                }
            }
        }
    }

    /// Grows occupied cells (`>= threshold`) by `radius` meters (disc kernel).
    pub fn inflate(&mut self, radius: f64, threshold: u8) {
        let r_cells = (radius / self.resolution).ceil() as i64;
        if r_cells <= 0 {
            return;
        }
        let src = self.clone();
        let r_sq = (radius / self.resolution) * (radius / self.resolution);
        for row in 0..self.rows as i64 {
            for col in 0..self.cols as i64 {
                let c = Cell::new(col, row);
                if src.is_occupied(c, threshold) {
                    continue;
                }
                'scan: for dr in -r_cells..=r_cells {
                    for dc in -r_cells..=r_cells {
                        if (dr * dr + dc * dc) as f64 > r_sq {
                            continue;
                        }
                        let n = Cell::new(col + dc, row + dr);
                        if src.in_bounds(n) && src.is_occupied(n, threshold) {
                            self.set(c, 255);
                            break 'scan;
                        }
                    }
                }
            }
        }
    }

    /// Multi-source BFS distance map (in meters, 8-connected) from every
    /// cell satisfying `seed`. Occupied cells (`>= threshold`) are
    /// impassable and read as `f64::INFINITY`.
    ///
    /// This is the "holonomic-with-obstacles" heuristic used by hybrid A*.
    pub fn distance_map<F: Fn(Cell) -> bool>(&self, seed: F, threshold: u8) -> DistanceMap {
        let mut dist = vec![f64::INFINITY; self.cols * self.rows];
        let mut queue: VecDeque<Cell> = VecDeque::new();
        for row in 0..self.rows as i64 {
            for col in 0..self.cols as i64 {
                let c = Cell::new(col, row);
                if seed(c) && !self.is_occupied(c, threshold) {
                    dist[self.index(c).expect("in bounds")] = 0.0;
                    queue.push_back(c);
                }
            }
        }
        // Dijkstra-light: BFS with two edge weights (1, √2) processed with a
        // bucketed deque is close enough on a grid; we use a proper priority
        // order by running rounds with a simple binary heap instead.
        let mut heap: std::collections::BinaryHeap<HeapItem> = queue
            .iter()
            .map(|&c| HeapItem {
                cost: 0.0,
                cell: c,
            })
            .collect();
        while let Some(HeapItem { cost, cell }) = heap.pop() {
            let i = match self.index(cell) {
                Some(i) => i,
                None => continue,
            };
            if cost > dist[i] {
                continue;
            }
            for (dc, dr, w) in NEIGHBORS_8 {
                let n = Cell::new(cell.col + dc, cell.row + dr);
                if let Some(j) = self.index(n) {
                    if self.data[j] >= threshold {
                        continue;
                    }
                    let nd = cost + w * self.resolution;
                    if nd < dist[j] {
                        dist[j] = nd;
                        heap.push(HeapItem { cost: nd, cell: n });
                    }
                }
            }
        }
        DistanceMap {
            cols: self.cols,
            rows: self.rows,
            resolution: self.resolution,
            origin: self.origin,
            dist,
        }
    }

    /// Fraction of cells that are at least `threshold` occupied.
    pub fn occupancy_ratio(&self, threshold: u8) -> f64 {
        let n = self.data.iter().filter(|&&v| v >= threshold).count();
        n as f64 / self.data.len() as f64
    }
}

const SQRT2: f64 = std::f64::consts::SQRT_2;
const NEIGHBORS_8: [(i64, i64, f64); 8] = [
    (1, 0, 1.0),
    (-1, 0, 1.0),
    (0, 1, 1.0),
    (0, -1, 1.0),
    (1, 1, SQRT2),
    (1, -1, SQRT2),
    (-1, 1, SQRT2),
    (-1, -1, SQRT2),
];

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    cell: Cell,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap behaviour.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of [`OccupancyGrid::distance_map`]: per-cell shortest obstacle-free
/// distance to the seed set, in meters.
#[derive(Debug, Clone)]
pub struct DistanceMap {
    cols: usize,
    rows: usize,
    resolution: f64,
    origin: Vec2,
    dist: Vec<f64>,
}

impl DistanceMap {
    /// Distance of a cell; out-of-bounds reads as infinity.
    pub fn distance(&self, c: Cell) -> f64 {
        if c.col < 0 || c.row < 0 || c.col as usize >= self.cols || c.row as usize >= self.rows {
            return f64::INFINITY;
        }
        self.dist[c.row as usize * self.cols + c.col as usize]
    }

    /// Distance at a world position.
    pub fn distance_at(&self, p: Vec2) -> f64 {
        let c = Cell::new(
            ((p.x - self.origin.x) / self.resolution).floor() as i64,
            ((p.y - self.origin.y) / self.resolution).floor() as i64,
        );
        self.distance(c)
    }
}

/// Integer Bresenham line between two cells (inclusive of both endpoints).
pub fn bresenham(a: Cell, b: Cell) -> Vec<Cell> {
    let mut cells = Vec::new();
    let dx = (b.col - a.col).abs();
    let dy = -(b.row - a.row).abs();
    let sx = if a.col < b.col { 1 } else { -1 };
    let sy = if a.row < b.row { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (a.col, a.row);
    loop {
        cells.push(Cell::new(x, y));
        if x == b.col && y == b.row {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pose2;

    #[test]
    fn world_cell_roundtrip() {
        let g = OccupancyGrid::new(Vec2::new(-5.0, -5.0), 0.25, 40, 40);
        let p = Vec2::new(1.3, -2.7);
        let c = g.world_to_cell(p);
        let back = g.cell_to_world(c);
        assert!(back.distance(p) <= 0.25 * SQRT2 / 2.0 + 1e-12);
    }

    #[test]
    fn out_of_bounds_reads_occupied() {
        let g = OccupancyGrid::new(Vec2::ZERO, 1.0, 4, 4);
        assert_eq!(g.occupancy(Cell::new(-1, 0)), 255);
        assert_eq!(g.occupancy(Cell::new(0, 4)), 255);
        assert_eq!(g.occupancy(Cell::new(0, 0)), 0);
    }

    #[test]
    fn set_and_fill() {
        let mut g = OccupancyGrid::new(Vec2::ZERO, 1.0, 4, 4);
        g.set(Cell::new(1, 2), 200);
        assert_eq!(g.occupancy(Cell::new(1, 2)), 200);
        g.set(Cell::new(-1, -1), 200); // ignored
        g.fill(7);
        assert!(g.data().iter().all(|&v| v == 7));
    }

    #[test]
    fn fill_obb_marks_interior_only() {
        let mut g = OccupancyGrid::new(Vec2::ZERO, 0.5, 40, 40);
        let obb = Obb::from_pose(Pose2::new(10.0, 10.0, 0.5), 4.0, 2.0);
        g.fill_obb(&obb, 255);
        assert!(g.occupancy_at(Vec2::new(10.0, 10.0)) == 255);
        assert_eq!(g.occupancy_at(Vec2::new(2.0, 2.0)), 0);
        // Every marked cell center is inside the (slightly inflated) box.
        let relaxed = obb.inflated(0.5);
        for row in 0..40 {
            for col in 0..40 {
                let c = Cell::new(col, row);
                if g.occupancy(c) == 255 {
                    assert!(relaxed.contains(g.cell_to_world(c)));
                }
            }
        }
    }

    #[test]
    fn fill_circle_and_ratio() {
        let mut g = OccupancyGrid::new(Vec2::ZERO, 0.1, 100, 100);
        g.fill_circle(&Circle::new(Vec2::new(5.0, 5.0), 2.0), 255);
        let ratio = g.occupancy_ratio(1);
        let expected = std::f64::consts::PI * 4.0 / 100.0;
        assert!((ratio - expected).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn bresenham_endpoints_and_connectivity() {
        let line = bresenham(Cell::new(0, 0), Cell::new(5, 3));
        assert_eq!(*line.first().unwrap(), Cell::new(0, 0));
        assert_eq!(*line.last().unwrap(), Cell::new(5, 3));
        for w in line.windows(2) {
            assert!((w[1].col - w[0].col).abs() <= 1 && (w[1].row - w[0].row).abs() <= 1);
        }
        // Degenerate single-cell line.
        assert_eq!(bresenham(Cell::new(2, 2), Cell::new(2, 2)).len(), 1);
    }

    #[test]
    fn draw_line_marks_cells() {
        let mut g = OccupancyGrid::new(Vec2::ZERO, 1.0, 10, 10);
        g.draw_line(Vec2::new(0.5, 0.5), Vec2::new(8.5, 0.5), 255);
        for col in 0..9 {
            assert_eq!(g.occupancy(Cell::new(col, 0)), 255);
        }
    }

    #[test]
    fn inflate_grows_obstacles() {
        let mut g = OccupancyGrid::new(Vec2::ZERO, 1.0, 11, 11);
        g.set(Cell::new(5, 5), 255);
        g.inflate(2.0, 128);
        assert!(g.is_occupied(Cell::new(3, 5), 128));
        assert!(g.is_occupied(Cell::new(5, 7), 128));
        assert!(!g.is_occupied(Cell::new(0, 0), 128));
    }

    #[test]
    fn distance_map_obeys_walls() {
        let mut g = OccupancyGrid::new(Vec2::ZERO, 1.0, 11, 11);
        // vertical wall at col 5 with a gap at row 10
        for row in 0..10 {
            g.set(Cell::new(5, row), 255);
        }
        let goal = Cell::new(10, 0);
        let dm = g.distance_map(|c| c == goal, 128);
        assert_eq!(dm.distance(goal), 0.0);
        // direct (through-wall) distance would be 10; around the wall is longer
        let d = dm.distance(Cell::new(0, 0));
        assert!(d.is_finite());
        assert!(d > 14.0, "distance {d} must detour around the wall");
        // wall cells unreachable
        assert!(dm.distance(Cell::new(5, 0)).is_infinite());
    }

    #[test]
    fn covering_spans_bounds() {
        let b = Aabb::new(Vec2::ZERO, Vec2::new(3.3, 2.2));
        let g = OccupancyGrid::covering(&b, 0.5);
        assert!(g.bounds().contains(Vec2::new(3.2, 2.1)));
        assert_eq!(g.cols(), 7);
        assert_eq!(g.rows(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_panics() {
        let _ = OccupancyGrid::new(Vec2::ZERO, 0.0, 4, 4);
    }
}
