//! Angle helpers.
//!
//! All angles in the workspace are radians. Headings are normalized to the
//! half-open interval `(-π, π]`.

use std::f64::consts::PI;

/// Normalizes an angle to `(-π, π]`.
///
/// ```
/// use icoil_geom::normalize_angle;
/// use std::f64::consts::PI;
///
/// assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((normalize_angle(-0.5) + 0.5).abs() < 1e-12);
/// ```
pub fn normalize_angle(a: f64) -> f64 {
    if !a.is_finite() {
        return a;
    }
    let two_pi = 2.0 * PI;
    let mut r = a % two_pi;
    if r <= -PI {
        r += two_pi;
    } else if r > PI {
        r -= two_pi;
    }
    r
}

/// Signed shortest angular difference `a - b`, normalized to `(-π, π]`.
///
/// ```
/// use icoil_geom::angle_diff;
/// use std::f64::consts::PI;
///
/// // Wrapping across ±π picks the short way round.
/// assert!((angle_diff(PI - 0.1, -PI + 0.1) + 0.2).abs() < 1e-12);
/// ```
pub fn angle_diff(a: f64, b: f64) -> f64 {
    normalize_angle(a - b)
}

/// Linear interpolation between two angles along the shortest arc.
///
/// `t = 0` returns `a` (normalized), `t = 1` returns `b` (normalized).
pub fn angle_lerp(a: f64, b: f64, t: f64) -> f64 {
    normalize_angle(a + angle_diff(b, a) * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_on_range() {
        for k in -31..32 {
            let a = k as f64 * 0.1;
            if a > -PI && a <= PI {
                assert!((normalize_angle(a) - a).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn idempotent() {
        for k in -100..100 {
            let a = k as f64 * 0.37;
            let n = normalize_angle(a);
            assert!((normalize_angle(n) - n).abs() < 1e-12);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12);
        }
    }

    #[test]
    fn boundary_maps_to_pi() {
        // -π is excluded from the canonical range; it maps to +π.
        assert!((normalize_angle(-PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn diff_antisymmetric_mod_2pi() {
        let pairs = [(0.3, 2.9), (-3.0, 3.0), (1.0, 1.0), (-0.2, 0.2)];
        for (a, b) in pairs {
            let d1 = angle_diff(a, b);
            let d2 = angle_diff(b, a);
            assert!((normalize_angle(d1 + d2)).abs() < 1e-12);
        }
    }

    #[test]
    fn lerp_endpoints() {
        let a = 3.0;
        let b = -3.0; // shortest arc crosses ±π
        assert!((angle_lerp(a, b, 0.0) - normalize_angle(a)).abs() < 1e-12);
        assert!((angle_lerp(a, b, 1.0) - normalize_angle(b)).abs() < 1e-12);
        // midpoint is on the short side (near π), not near 0
        assert!(angle_lerp(a, b, 0.5).abs() > 3.0);
    }

    #[test]
    fn non_finite_passthrough() {
        assert!(normalize_angle(f64::NAN).is_nan());
        assert!(normalize_angle(f64::INFINITY).is_infinite());
    }
}
