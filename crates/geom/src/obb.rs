//! Oriented bounding boxes (vehicle and obstacle footprints).

use crate::{Aabb, Pose2, Segment, Vec2, EPS};
use serde::{Deserialize, Serialize};

/// An oriented bounding box: a rectangle with arbitrary heading.
///
/// This is the footprint representation for the ego-vehicle and for every
/// obstacle in the simulator. Overlap tests use the separating-axis theorem
/// (SAT); distances fall back to corner/edge segment distances.
///
/// # Example
///
/// ```
/// use icoil_geom::{Obb, Pose2};
///
/// let car = Obb::from_pose(Pose2::new(0.0, 0.0, 0.3), 4.2, 1.8);
/// let wall = Obb::from_pose(Pose2::new(10.0, 0.0, 0.0), 1.0, 8.0);
/// assert!(!car.intersects(&wall));
/// assert!(car.distance_to_obb(&wall) > 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obb {
    /// Center of the rectangle.
    pub center: Vec2,
    /// Half of the extent along the local x-axis (length / 2).
    pub half_length: f64,
    /// Half of the extent along the local y-axis (width / 2).
    pub half_width: f64,
    /// Heading of the local x-axis, radians.
    pub theta: f64,
}

impl Obb {
    /// Creates a box centered at `pose` with the given full length and width.
    ///
    /// # Panics
    ///
    /// Panics if `length` or `width` is negative or non-finite.
    pub fn from_pose(pose: Pose2, length: f64, width: f64) -> Self {
        assert!(
            length.is_finite() && width.is_finite() && length >= 0.0 && width >= 0.0,
            "OBB extents must be finite and non-negative"
        );
        Obb {
            center: pose.position(),
            half_length: length * 0.5,
            half_width: width * 0.5,
            theta: pose.theta,
        }
    }

    /// Creates an axis-aligned box from an [`Aabb`].
    pub fn from_aabb(aabb: &Aabb) -> Self {
        Obb {
            center: aabb.center(),
            half_length: aabb.width() * 0.5,
            half_width: aabb.height() * 0.5,
            theta: 0.0,
        }
    }

    /// Full length (local x extent).
    pub fn length(&self) -> f64 {
        self.half_length * 2.0
    }

    /// Full width (local y extent).
    pub fn width(&self) -> f64 {
        self.half_width * 2.0
    }

    /// The pose at the box center.
    pub fn pose(&self) -> Pose2 {
        Pose2::new(self.center.x, self.center.y, self.theta)
    }

    /// Unit axis along the box length.
    pub fn axis_x(&self) -> Vec2 {
        Vec2::from_angle(self.theta)
    }

    /// Unit axis along the box width.
    pub fn axis_y(&self) -> Vec2 {
        self.axis_x().perp()
    }

    /// The four corners, counter-clockwise starting front-left.
    pub fn corners(&self) -> [Vec2; 4] {
        let ax = self.axis_x() * self.half_length;
        let ay = self.axis_y() * self.half_width;
        [
            self.center + ax + ay,
            self.center - ax + ay,
            self.center - ax - ay,
            self.center + ax - ay,
        ]
    }

    /// The four edges as segments, counter-clockwise.
    pub fn edges(&self) -> [Segment; 4] {
        let c = self.corners();
        [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ]
    }

    /// Tight axis-aligned bounding box around this OBB.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(self.corners()).expect("four corners")
    }

    /// The box grown by `margin` on every side (same center and heading).
    pub fn inflated(&self, margin: f64) -> Obb {
        Obb {
            center: self.center,
            half_length: (self.half_length + margin).max(0.0),
            half_width: (self.half_width + margin).max(0.0),
            theta: self.theta,
        }
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        let local = (p - self.center).rotated(-self.theta);
        local.x.abs() <= self.half_length + EPS && local.y.abs() <= self.half_width + EPS
    }

    /// SAT overlap test against another OBB (touching counts as overlap).
    pub fn intersects(&self, other: &Obb) -> bool {
        // Broad phase.
        if !self.aabb().intersects(&other.aabb()) {
            return false;
        }
        let axes = [
            self.axis_x(),
            self.axis_y(),
            other.axis_x(),
            other.axis_y(),
        ];
        let ca = self.corners();
        let cb = other.corners();
        for axis in axes {
            let (amin, amax) = project(&ca, axis);
            let (bmin, bmax) = project(&cb, axis);
            if amax < bmin - EPS || bmax < amin - EPS {
                return false;
            }
        }
        true
    }

    /// Minimum distance between two OBBs (zero when they overlap).
    pub fn distance_to_obb(&self, other: &Obb) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for e in self.edges() {
            for f in other.edges() {
                best = best.min(e.distance_to_segment(&f));
            }
        }
        best
    }

    /// Distance from the box boundary to an outside point
    /// (zero when the point is inside).
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        let local = (p - self.center).rotated(-self.theta);
        let dx = (local.x.abs() - self.half_length).max(0.0);
        let dy = (local.y.abs() - self.half_width).max(0.0);
        dx.hypot(dy)
    }

    /// Returns `true` when the segment touches or crosses the box.
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        if self.contains(seg.a) || self.contains(seg.b) {
            return true;
        }
        self.edges().iter().any(|e| e.intersection(seg).is_some())
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.length() * self.width()
    }

    /// Radius of the circumscribed circle (half diagonal).
    pub fn circumradius(&self) -> f64 {
        self.half_length.hypot(self.half_width)
    }
}

fn project(corners: &[Vec2; 4], axis: Vec2) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for c in corners {
        let v = c.dot(axis);
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    fn unit_at(x: f64, y: f64, th: f64) -> Obb {
        Obb::from_pose(Pose2::new(x, y, th), 2.0, 1.0)
    }

    #[test]
    fn corners_and_area() {
        let b = unit_at(0.0, 0.0, 0.0);
        let c = b.corners();
        assert!(c[0].distance(Vec2::new(1.0, 0.5)) < 1e-12);
        assert!(c[2].distance(Vec2::new(-1.0, -0.5)) < 1e-12);
        assert_eq!(b.area(), 2.0);
        assert!((b.circumradius() - (1.0f64.hypot(0.5))).abs() < 1e-12);
    }

    #[test]
    fn containment_rotated() {
        let b = unit_at(0.0, 0.0, FRAC_PI_4);
        // along the rotated long axis
        let tip = Vec2::from_angle(FRAC_PI_4) * 0.99;
        assert!(b.contains(tip));
        // along the *unrotated* long axis the box is narrower
        assert!(!b.contains(Vec2::new(0.99, 0.0)));
    }

    #[test]
    fn overlap_identity_and_disjoint() {
        let a = unit_at(0.0, 0.0, 0.3);
        assert!(a.intersects(&a));
        let far = unit_at(10.0, 0.0, 0.3);
        assert!(!a.intersects(&far));
        assert!(a.distance_to_obb(&far) > 7.5);
    }

    #[test]
    fn overlap_symmetry() {
        let cases = [
            (unit_at(0.0, 0.0, 0.0), unit_at(1.5, 0.0, 0.7)),
            (unit_at(0.0, 0.0, 1.0), unit_at(0.5, 0.5, -1.0)),
            (unit_at(0.0, 0.0, 0.0), unit_at(3.0, 3.0, 0.5)),
        ];
        for (a, b) in cases {
            assert_eq!(a.intersects(&b), b.intersects(&a));
            assert!((a.distance_to_obb(&b) - b.distance_to_obb(&a)).abs() < 1e-9);
        }
    }

    #[test]
    fn cross_configuration_overlaps() {
        // Two long thin boxes crossing like a plus sign: SAT must catch this
        // even though no corner of either box is inside the other.
        let a = Obb::from_pose(Pose2::new(0.0, 0.0, 0.0), 6.0, 0.4);
        let b = Obb::from_pose(Pose2::new(0.0, 0.0, std::f64::consts::FRAC_PI_2), 6.0, 0.4);
        assert!(a.intersects(&b));
    }

    #[test]
    fn distance_axis_aligned_gap() {
        let a = unit_at(0.0, 0.0, 0.0);
        let b = unit_at(4.0, 0.0, 0.0);
        assert!((a.distance_to_obb(&b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn point_distance_matches_contains() {
        let b = unit_at(1.0, 2.0, 0.5);
        assert_eq!(b.distance_to_point(b.center), 0.0);
        let p = Vec2::new(10.0, 10.0);
        assert!(b.distance_to_point(p) > 0.0);
        assert!(!b.contains(p));
    }

    #[test]
    fn segment_intersection() {
        let b = unit_at(0.0, 0.0, 0.0);
        let through = Segment::new(Vec2::new(-3.0, 0.0), Vec2::new(3.0, 0.0));
        let outside = Segment::new(Vec2::new(-3.0, 2.0), Vec2::new(3.0, 2.0));
        let inside = Segment::new(Vec2::new(-0.1, 0.0), Vec2::new(0.1, 0.0));
        assert!(b.intersects_segment(&through));
        assert!(!b.intersects_segment(&outside));
        assert!(b.intersects_segment(&inside));
    }

    #[test]
    fn inflated_grows_extent() {
        let b = unit_at(0.0, 0.0, 0.0).inflated(0.5);
        assert_eq!(b.length(), 3.0);
        assert_eq!(b.width(), 2.0);
        // Negative inflation clamps at zero.
        let z = unit_at(0.0, 0.0, 0.0).inflated(-10.0);
        assert_eq!(z.length(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_extent_panics() {
        let _ = Obb::from_pose(Pose2::default(), -1.0, 1.0);
    }
}
