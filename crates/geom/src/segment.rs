//! Line segments and segment-based distance/intersection predicates.

use crate::{Vec2, EPS};
use serde::{Deserialize, Serialize};

/// A line segment between two points.
///
/// # Example
///
/// ```
/// use icoil_geom::{Segment, Vec2};
///
/// let s = Segment::new(Vec2::new(0.0, 0.0), Vec2::new(2.0, 0.0));
/// assert_eq!(s.distance_to_point(Vec2::new(1.0, 3.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Vec2,
    /// End point.
    pub b: Vec2,
}

impl Segment {
    /// Creates a segment from its endpoints.
    pub const fn new(a: Vec2, b: Vec2) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Direction vector `b - a` (not normalized).
    pub fn direction(&self) -> Vec2 {
        self.b - self.a
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Vec2 {
        self.a.lerp(self.b, 0.5)
    }

    /// Point at parameter `t` (`0` → `a`, `1` → `b`); `t` is clamped.
    pub fn point_at(&self, t: f64) -> Vec2 {
        self.a.lerp(self.b, t.clamp(0.0, 1.0))
    }

    /// The closest point on the segment to `p`.
    pub fn closest_point(&self, p: Vec2) -> Vec2 {
        let d = self.direction();
        let len_sq = d.norm_sq();
        if len_sq < EPS * EPS {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Distance from the segment to a point.
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Returns `true` when the two segments intersect (including touching).
    pub fn intersects(&self, other: &Segment) -> bool {
        orient_on_opposite_sides(self, other) && orient_on_opposite_sides(other, self)
            || self.distance_to_segment(other) < EPS
    }

    /// Intersection point of two segments, if they cross at a single point.
    ///
    /// Returns `None` for parallel, collinear-overlapping or disjoint
    /// segments.
    pub fn intersection(&self, other: &Segment) -> Option<Vec2> {
        let r = self.direction();
        let s = other.direction();
        let denom = r.cross(s);
        if denom.abs() < EPS {
            return None;
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (-EPS..=1.0 + EPS).contains(&t) && (-EPS..=1.0 + EPS).contains(&u) {
            Some(self.a + r * t)
        } else {
            None
        }
    }

    /// Minimum distance between two segments (zero when they intersect).
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if self.intersection(other).is_some() {
            return 0.0;
        }
        let d1 = self.distance_to_point(other.a);
        let d2 = self.distance_to_point(other.b);
        let d3 = other.distance_to_point(self.a);
        let d4 = other.distance_to_point(self.b);
        d1.min(d2).min(d3).min(d4)
    }
}

fn orient(a: Vec2, b: Vec2, c: Vec2) -> f64 {
    (b - a).cross(c - a)
}

fn orient_on_opposite_sides(s: &Segment, t: &Segment) -> bool {
    let o1 = orient(s.a, s.b, t.a);
    let o2 = orient(s.a, s.b, t.b);
    (o1 > 0.0 && o2 < 0.0) || (o1 < 0.0 && o2 > 0.0) || o1.abs() < EPS || o2.abs() < EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Vec2::new(ax, ay), Vec2::new(bx, by))
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Vec2::new(1.5, 2.0));
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        assert_eq!(s.closest_point(Vec2::new(-5.0, 3.0)), s.a);
        assert_eq!(s.closest_point(Vec2::new(9.0, -2.0)), s.b);
        assert_eq!(s.closest_point(Vec2::new(0.5, 2.0)), Vec2::new(0.5, 0.0));
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.distance_to_point(Vec2::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        let t = seg(0.0, 2.0, 2.0, 0.0);
        let p = s.intersection(&t).expect("must cross");
        assert!(p.distance(Vec2::new(1.0, 1.0)) < 1e-12);
        assert!(s.intersects(&t));
        assert_eq!(s.distance_to_segment(&t), 0.0);
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let t = seg(0.0, 1.0, 2.0, 1.0);
        assert!(s.intersection(&t).is_none());
        assert!((s.distance_to_segment(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_collinear_distance() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(3.0, 0.0, 4.0, 0.0);
        assert!((s.distance_to_segment(&t) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn touching_at_endpoint() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(1.0, 0.0, 1.0, 1.0);
        let p = s.intersection(&t).expect("touching endpoint counts");
        assert!(p.distance(Vec2::new(1.0, 0.0)) < 1e-9);
    }

    #[test]
    fn near_miss_has_positive_distance() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(2.0, 0.5, 3.0, 0.5);
        let d = s.distance_to_segment(&t);
        assert!(d > 1.0 && d < 1.2);
    }
}
