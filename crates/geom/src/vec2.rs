//! Planar vector type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector (also used as a point).
///
/// # Example
///
/// ```
/// use icoil_geom::Vec2;
///
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v + Vec2::new(1.0, -4.0), Vec2::new(4.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates the unit vector pointing at `angle` radians from the x-axis.
    ///
    /// ```
    /// use icoil_geom::Vec2;
    /// let v = Vec2::from_angle(std::f64::consts::FRAC_PI_2);
    /// assert!((v.y - 1.0).abs() < 1e-12);
    /// ```
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (cheaper than [`Vec2::norm`]).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the vector scaled to unit length, or [`Vec2::ZERO`] when the
    /// norm is (numerically) zero.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n < crate::EPS {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// The vector rotated 90° counter-clockwise.
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Angle of the vector from the positive x-axis, in `(-π, π]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotates the vector by `angle` radians (counter-clockwise).
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` when both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic_identities() {
        let v = Vec2::new(2.0, -3.0);
        assert_eq!(v + Vec2::ZERO, v);
        assert_eq!(v - v, Vec2::ZERO);
        assert_eq!(v * 1.0, v);
        assert_eq!(-(-v), v);
        assert_eq!(v / 2.0, Vec2::new(1.0, -1.5));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.dot(a), 1.0);
    }

    #[test]
    fn norm_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(Vec2::ZERO.distance(v), 5.0);
        assert_eq!(Vec2::ZERO.distance_sq(v), 25.0);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let n = Vec2::new(10.0, 0.0).normalized();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((v.x).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec2::new(2.5, -1.25);
        for k in 0..16 {
            let a = k as f64 / 16.0 * 2.0 * PI;
            assert!((v.rotated(a).norm() - v.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn angle_roundtrip() {
        for k in -7..8 {
            let a = k as f64 * 0.4;
            let v = Vec2::from_angle(a);
            let diff = crate::angle_diff(v.angle(), a);
            assert!(diff.abs() < 1e-12, "angle {a}: diff {diff}");
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(3.0, 2.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 2.0));
        assert_eq!(a.max(b), Vec2::new(3.0, 5.0));
    }

    #[test]
    fn conversions() {
        let v: Vec2 = (1.0, 2.0).into();
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.0, 2.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec2::ZERO).is_empty());
    }
}
