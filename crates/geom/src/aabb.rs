//! Axis-aligned bounding boxes.

use crate::Vec2;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box, defined by its min/max corners.
///
/// Used for broad-phase collision rejection and for map extents.
///
/// # Example
///
/// ```
/// use icoil_geom::{Aabb, Vec2};
///
/// let map = Aabb::new(Vec2::ZERO, Vec2::new(30.0, 20.0));
/// assert!(map.contains(Vec2::new(5.0, 5.0)));
/// assert!(!map.contains(Vec2::new(-1.0, 5.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec2,
    /// Maximum corner.
    pub max: Vec2,
}

impl Aabb {
    /// Creates a box from two corners (components are sorted).
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box centered at `center` with the given half-extents.
    pub fn from_center(center: Vec2, half_width: f64, half_height: f64) -> Self {
        let h = Vec2::new(half_width.abs(), half_height.abs());
        Aabb {
            min: center - h,
            max: center + h,
        }
    }

    /// The smallest box containing all `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec2>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut min = first;
        let mut max = first;
        for p in it {
            min = min.min(p);
            max = max.max(p);
        }
        Some(Aabb { min, max })
    }

    /// Box width (x extent).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height (y extent).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point.
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Area of the box.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the two boxes overlap (including touching).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The box grown by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Aabb {
        let m = Vec2::new(margin, margin);
        Aabb::new(self.min - m, self.max + m)
    }

    /// The union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Clamps a point into the box.
    pub fn clamp_point(&self, p: Vec2) -> Vec2 {
        Vec2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Distance from the box to a point (zero when inside).
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        self.clamp_point(p).distance(p)
    }

    /// The four corner points, counter-clockwise from `min`.
    pub fn corners(&self) -> [Vec2; 4] {
        [
            self.min,
            Vec2::new(self.max.x, self.min.y),
            self.max,
            Vec2::new(self.min.x, self.max.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_sorts_corners() {
        let b = Aabb::new(Vec2::new(2.0, -1.0), Vec2::new(-2.0, 1.0));
        assert_eq!(b.min, Vec2::new(-2.0, -1.0));
        assert_eq!(b.max, Vec2::new(2.0, 1.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 2.0);
        assert_eq!(b.area(), 8.0);
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = vec![
            Vec2::new(1.0, 1.0),
            Vec2::new(-3.0, 2.0),
            Vec2::new(0.0, -5.0),
        ];
        let b = Aabb::from_points(pts.clone()).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn containment_boundary_inclusive() {
        let b = Aabb::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
        assert!(b.contains(Vec2::new(0.0, 0.0)));
        assert!(b.contains(Vec2::new(1.0, 1.0)));
        assert!(!b.contains(Vec2::new(1.0 + 1e-9, 1.0)));
    }

    #[test]
    fn intersection_cases() {
        let a = Aabb::new(Vec2::ZERO, Vec2::new(2.0, 2.0));
        let b = Aabb::new(Vec2::new(1.0, 1.0), Vec2::new(3.0, 3.0));
        let c = Aabb::new(Vec2::new(5.0, 5.0), Vec2::new(6.0, 6.0));
        let d = Aabb::new(Vec2::new(2.0, 0.0), Vec2::new(4.0, 2.0)); // touching edge
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&d));
    }

    #[test]
    fn inflate_and_union() {
        let a = Aabb::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
        let g = a.inflated(0.5);
        assert_eq!(g.min, Vec2::new(-0.5, -0.5));
        let b = Aabb::new(Vec2::new(3.0, 3.0), Vec2::new(4.0, 4.0));
        let u = a.union(&b);
        assert!(u.contains(Vec2::ZERO) && u.contains(Vec2::new(4.0, 4.0)));
    }

    #[test]
    fn distance_zero_inside_positive_outside() {
        let b = Aabb::new(Vec2::ZERO, Vec2::new(2.0, 2.0));
        assert_eq!(b.distance_to_point(Vec2::new(1.0, 1.0)), 0.0);
        assert!((b.distance_to_point(Vec2::new(5.0, 1.0)) - 3.0).abs() < 1e-12);
        assert!((b.distance_to_point(Vec2::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn corners_ccw() {
        let b = Aabb::new(Vec2::ZERO, Vec2::new(1.0, 2.0));
        let c = b.corners();
        // shoelace area positive => counter-clockwise
        let mut area = 0.0;
        for i in 0..4 {
            let p = c[i];
            let q = c[(i + 1) % 4];
            area += p.cross(q);
        }
        assert!(area > 0.0);
    }
}
