//! Polyline paths with arc-length parametrization.

use crate::{Pose2, Vec2};
use serde::{Deserialize, Serialize};

/// A piecewise-linear path through 2-D space.
///
/// The global planner emits a `Polyline`, the CO module samples reference
/// waypoints `{s*}` from it by arc length, and the evaluation harness uses
/// it to measure driven path length.
///
/// # Example
///
/// ```
/// use icoil_geom::{Polyline, Vec2};
///
/// let p = Polyline::new(vec![Vec2::ZERO, Vec2::new(3.0, 0.0), Vec2::new(3.0, 4.0)]);
/// assert_eq!(p.length(), 7.0);
/// assert_eq!(p.point_at(5.0), Vec2::new(3.0, 2.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Vec2>,
    cumulative: Vec<f64>,
}

impl Polyline {
    /// Creates a polyline from an ordered point list.
    ///
    /// Consecutive duplicate points are collapsed.
    pub fn new(points: Vec<Vec2>) -> Self {
        let mut deduped: Vec<Vec2> = Vec::with_capacity(points.len());
        for p in points {
            if deduped.last().is_none_or(|q| q.distance(p) > crate::EPS) {
                deduped.push(p);
            }
        }
        let mut cumulative = Vec::with_capacity(deduped.len());
        let mut acc = 0.0;
        for (i, p) in deduped.iter().enumerate() {
            if i > 0 {
                acc += deduped[i - 1].distance(*p);
            }
            cumulative.push(acc);
        }
        Polyline {
            points: deduped,
            cumulative,
        }
    }

    /// The points of the polyline.
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the polyline has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        self.cumulative.last().copied().unwrap_or(0.0)
    }

    /// Point at arc length `s` (clamped to `[0, length]`).
    ///
    /// # Panics
    ///
    /// Panics when the polyline is empty.
    pub fn point_at(&self, s: f64) -> Vec2 {
        assert!(!self.points.is_empty(), "point_at on empty polyline");
        if self.points.len() == 1 {
            return self.points[0];
        }
        let s = s.clamp(0.0, self.length());
        let i = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let i = i.min(self.points.len() - 2);
        let seg_len = self.cumulative[i + 1] - self.cumulative[i];
        if seg_len <= crate::EPS {
            return self.points[i];
        }
        let t = (s - self.cumulative[i]) / seg_len;
        self.points[i].lerp(self.points[i + 1], t)
    }

    /// Tangent heading (radians) at arc length `s`.
    ///
    /// # Panics
    ///
    /// Panics when the polyline has fewer than two points.
    pub fn heading_at(&self, s: f64) -> f64 {
        assert!(self.points.len() >= 2, "heading needs two or more points");
        let s = s.clamp(0.0, self.length());
        let i = self
            .cumulative
            .iter()
            .rposition(|&c| c <= s + crate::EPS)
            .unwrap_or(0)
            .min(self.points.len() - 2);
        (self.points[i + 1] - self.points[i]).angle()
    }

    /// Pose (point + tangent heading) at arc length `s`.
    pub fn pose_at(&self, s: f64) -> Pose2 {
        let p = self.point_at(s);
        Pose2::from_parts(p, self.heading_at(s))
    }

    /// Arc length of the point on the path closest to `p`.
    pub fn project(&self, p: Vec2) -> f64 {
        let mut best_s = 0.0;
        let mut best_d = f64::INFINITY;
        for i in 0..self.points.len().saturating_sub(1) {
            let a = self.points[i];
            let b = self.points[i + 1];
            let d = b - a;
            let len_sq = d.norm_sq();
            let t = if len_sq < crate::EPS {
                0.0
            } else {
                ((p - a).dot(d) / len_sq).clamp(0.0, 1.0)
            };
            let q = a + d * t;
            let dist = q.distance(p);
            if dist < best_d {
                best_d = dist;
                best_s = self.cumulative[i] + t * (len_sq.sqrt());
            }
        }
        best_s
    }

    /// Distance from `p` to the nearest point on the path.
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        if self.points.is_empty() {
            return f64::INFINITY;
        }
        self.point_at(self.project(p)).distance(p)
    }

    /// Resamples the path so consecutive points are at most `step` apart.
    ///
    /// Original vertices are always kept, so corners (and therefore the
    /// exact path length) are preserved — important when the result feeds
    /// the CO reference-waypoint generator.
    ///
    /// # Panics
    ///
    /// Panics when `step` is not strictly positive.
    pub fn resample(&self, step: f64) -> Polyline {
        assert!(step > 0.0, "resample step must be positive");
        if self.points.len() < 2 {
            return self.clone();
        }
        let mut pts = vec![self.points[0]];
        for i in 0..self.points.len() - 1 {
            let a = self.points[i];
            let b = self.points[i + 1];
            let len = a.distance(b);
            let n = (len / step).ceil().max(1.0) as usize;
            for k in 1..=n {
                pts.push(a.lerp(b, k as f64 / n as f64));
            }
        }
        Polyline::new(pts)
    }

    /// Appends the points of another polyline.
    pub fn extend_with(&mut self, other: &Polyline) {
        let mut pts = std::mem::take(&mut self.points);
        pts.extend_from_slice(other.points());
        *self = Polyline::new(pts);
    }
}

impl FromIterator<Vec2> for Polyline {
    fn from_iter<I: IntoIterator<Item = Vec2>>(iter: I) -> Self {
        Polyline::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_path() -> Polyline {
        Polyline::new(vec![Vec2::ZERO, Vec2::new(3.0, 0.0), Vec2::new(3.0, 4.0)])
    }

    #[test]
    fn length_and_dedup() {
        let p = Polyline::new(vec![
            Vec2::ZERO,
            Vec2::ZERO,
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 0.0),
        ]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.length(), 1.0);
    }

    #[test]
    fn point_at_interpolates_and_clamps() {
        let p = l_path();
        assert_eq!(p.point_at(0.0), Vec2::ZERO);
        assert_eq!(p.point_at(1.5), Vec2::new(1.5, 0.0));
        assert_eq!(p.point_at(3.0), Vec2::new(3.0, 0.0));
        assert_eq!(p.point_at(5.0), Vec2::new(3.0, 2.0));
        assert_eq!(p.point_at(100.0), Vec2::new(3.0, 4.0));
        assert_eq!(p.point_at(-5.0), Vec2::ZERO);
    }

    #[test]
    fn heading_follows_segments() {
        let p = l_path();
        assert!((p.heading_at(1.0) - 0.0).abs() < 1e-12);
        assert!((p.heading_at(5.0) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn projection_finds_closest() {
        let p = l_path();
        // Point near the middle of the second leg.
        let s = p.project(Vec2::new(4.0, 2.0));
        assert!((s - 5.0).abs() < 1e-9);
        assert!((p.distance_to_point(Vec2::new(4.0, 2.0)) - 1.0).abs() < 1e-9);
        // Before the path start.
        assert_eq!(p.project(Vec2::new(-2.0, -1.0)), 0.0);
    }

    #[test]
    fn resample_preserves_endpoints_and_length() {
        let p = l_path();
        let r = p.resample(0.5);
        assert_eq!(*r.points().first().unwrap(), Vec2::ZERO);
        assert_eq!(*r.points().last().unwrap(), Vec2::new(3.0, 4.0));
        assert!((r.length() - p.length()).abs() < 1e-9);
        // step upper-bounds the spacing
        for w in r.points().windows(2) {
            assert!(w[0].distance(w[1]) <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn single_point_path() {
        let p = Polyline::new(vec![Vec2::new(2.0, 2.0)]);
        assert_eq!(p.length(), 0.0);
        assert_eq!(p.point_at(3.0), Vec2::new(2.0, 2.0));
        assert_eq!(p.resample(1.0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_point_at_panics() {
        let p = Polyline::default();
        let _ = p.point_at(0.0);
    }

    #[test]
    fn extend_joins_paths() {
        let mut p = Polyline::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]);
        let q = Polyline::new(vec![Vec2::new(1.0, 0.0), Vec2::new(1.0, 1.0)]);
        p.extend_with(&q);
        assert_eq!(p.len(), 3);
        assert!((p.length() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator() {
        let p: Polyline = (0..5).map(|i| Vec2::new(i as f64, 0.0)).collect();
        assert_eq!(p.length(), 4.0);
    }
}
