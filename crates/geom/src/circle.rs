//! Circles (disc obstacles and safety radii).

use crate::{Obb, Segment, Vec2};
use serde::{Deserialize, Serialize};

/// A circle given by center and radius.
///
/// # Example
///
/// ```
/// use icoil_geom::{Circle, Vec2};
///
/// let c = Circle::new(Vec2::ZERO, 2.0);
/// assert!(c.contains(Vec2::new(1.0, 1.0)));
/// assert_eq!(c.distance_to_point(Vec2::new(5.0, 0.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center point.
    pub center: Vec2,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn new(center: Vec2, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative"
        );
        Circle { center, radius }
    }

    /// Returns `true` when `p` lies inside or on the circle.
    pub fn contains(&self, p: Vec2) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius + crate::EPS
    }

    /// Distance from the circle boundary to a point (zero when inside).
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        (self.center.distance(p) - self.radius).max(0.0)
    }

    /// Returns `true` when two circles overlap (including touching).
    pub fn intersects(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_sq(other.center) <= r * r + crate::EPS
    }

    /// Returns `true` when the circle overlaps an oriented box.
    pub fn intersects_obb(&self, obb: &Obb) -> bool {
        obb.distance_to_point(self.center) <= self.radius + crate::EPS
    }

    /// Returns `true` when the circle touches a segment.
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        seg.distance_to_point(self.center) <= self.radius + crate::EPS
    }

    /// Circle area.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pose2;

    #[test]
    fn containment() {
        let c = Circle::new(Vec2::new(1.0, 1.0), 1.0);
        assert!(c.contains(Vec2::new(1.0, 1.0)));
        assert!(c.contains(Vec2::new(2.0, 1.0))); // boundary
        assert!(!c.contains(Vec2::new(2.5, 1.0)));
    }

    #[test]
    fn circle_circle() {
        let a = Circle::new(Vec2::ZERO, 1.0);
        let b = Circle::new(Vec2::new(1.9, 0.0), 1.0);
        let c = Circle::new(Vec2::new(2.1, 0.0), 1.0);
        let d = Circle::new(Vec2::new(5.0, 0.0), 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&d));
        // touching within EPS tolerance
        assert!(a.intersects(&Circle::new(Vec2::new(2.0, 0.0), 1.0)));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn circle_obb() {
        let c = Circle::new(Vec2::new(3.0, 0.0), 1.0);
        let near = Obb::from_pose(Pose2::new(0.0, 0.0, 0.0), 4.5, 1.0);
        let far = Obb::from_pose(Pose2::new(-3.0, 0.0, 0.0), 2.0, 1.0);
        assert!(c.intersects_obb(&near));
        assert!(!c.intersects_obb(&far));
    }

    #[test]
    fn circle_segment() {
        let c = Circle::new(Vec2::ZERO, 1.0);
        let hit = Segment::new(Vec2::new(-2.0, 0.5), Vec2::new(2.0, 0.5));
        let miss = Segment::new(Vec2::new(-2.0, 1.5), Vec2::new(2.0, 1.5));
        assert!(c.intersects_segment(&hit));
        assert!(!c.intersects_segment(&miss));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let _ = Circle::new(Vec2::ZERO, -1.0);
    }
}
