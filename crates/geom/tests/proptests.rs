//! Property-based tests for the geometry crate.

use icoil_geom::{
    angle_diff, normalize_angle, Aabb, Cell, Obb, OccupancyGrid, Polyline, Pose2, Segment, Vec2,
};
use proptest::prelude::*;
use std::f64::consts::PI;

fn finite(range: f64) -> impl Strategy<Value = f64> {
    -range..range
}

fn arb_vec2(range: f64) -> impl Strategy<Value = Vec2> {
    (finite(range), finite(range)).prop_map(|(x, y)| Vec2::new(x, y))
}

fn arb_pose(range: f64) -> impl Strategy<Value = Pose2> {
    (finite(range), finite(range), finite(10.0)).prop_map(|(x, y, t)| Pose2::new(x, y, t))
}

fn arb_obb() -> impl Strategy<Value = Obb> {
    (arb_pose(20.0), 0.1f64..8.0, 0.1f64..8.0)
        .prop_map(|(p, l, w)| Obb::from_pose(p, l, w))
}

proptest! {
    #[test]
    fn normalize_angle_in_range(a in finite(1e6)) {
        let n = normalize_angle(a);
        prop_assert!(n > -PI - 1e-9 && n <= PI + 1e-9);
        // idempotent
        prop_assert!((normalize_angle(n) - n).abs() < 1e-9);
        // same angle modulo 2π
        prop_assert!(((a - n) / (2.0 * PI)).rem_euclid(1.0) < 1e-6
            || ((a - n) / (2.0 * PI)).rem_euclid(1.0) > 1.0 - 1e-6);
    }

    #[test]
    fn angle_diff_bounded(a in finite(100.0), b in finite(100.0)) {
        let d = angle_diff(a, b);
        prop_assert!(d.abs() <= PI + 1e-9);
    }

    #[test]
    fn vec_rotation_preserves_norm(v in arb_vec2(1e3), a in finite(20.0)) {
        prop_assert!((v.rotated(a).norm() - v.norm()).abs() < 1e-6 * (1.0 + v.norm()));
    }

    #[test]
    fn pose_roundtrip(p in arb_pose(50.0), q in arb_vec2(50.0)) {
        let w = p.to_world(q);
        prop_assert!(p.to_local(w).distance(q) < 1e-9);
    }

    #[test]
    fn pose_inverse_composes_to_identity(p in arb_pose(50.0)) {
        let id = p.compose(p.inverse());
        prop_assert!(id.position().norm() < 1e-9);
        prop_assert!(id.theta.abs() < 1e-9);
    }

    #[test]
    fn obb_overlap_symmetric(a in arb_obb(), b in arb_obb()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn obb_distance_symmetric_and_consistent(a in arb_obb(), b in arb_obb()) {
        let dab = a.distance_to_obb(&b);
        let dba = b.distance_to_obb(&a);
        prop_assert!((dab - dba).abs() < 1e-6);
        // distance zero iff intersecting
        if a.intersects(&b) {
            prop_assert_eq!(dab, 0.0);
        } else {
            prop_assert!(dab > 0.0);
        }
    }

    #[test]
    fn obb_contains_center_and_corners(o in arb_obb()) {
        prop_assert!(o.contains(o.center));
        for c in o.corners() {
            prop_assert!(o.contains(c));
            prop_assert!(o.aabb().contains(c));
        }
    }

    #[test]
    fn obb_center_distance_lower_bound(a in arb_obb(), b in arb_obb()) {
        // boundary distance never exceeds center distance
        prop_assert!(a.distance_to_obb(&b) <= a.center.distance(b.center) + 1e-9);
    }

    #[test]
    fn segment_distance_triangle(s in (arb_vec2(50.0), arb_vec2(50.0)), p in arb_vec2(50.0)) {
        let seg = Segment::new(s.0, s.1);
        let d = seg.distance_to_point(p);
        prop_assert!(d <= seg.a.distance(p) + 1e-9);
        prop_assert!(d <= seg.b.distance(p) + 1e-9);
    }

    #[test]
    fn aabb_union_contains_both(
        a in (arb_vec2(50.0), arb_vec2(50.0)),
        b in (arb_vec2(50.0), arb_vec2(50.0)),
    ) {
        let x = Aabb::new(a.0, a.1);
        let y = Aabb::new(b.0, b.1);
        let u = x.union(&y);
        for c in x.corners().into_iter().chain(y.corners()) {
            prop_assert!(u.contains(c));
        }
    }

    #[test]
    fn polyline_point_at_on_path(
        pts in prop::collection::vec(arb_vec2(30.0), 2..10),
        frac in 0.0f64..1.0,
    ) {
        let p = Polyline::new(pts);
        if p.len() >= 2 {
            let s = frac * p.length();
            let q = p.point_at(s);
            // a point at arc length s is at distance ~0 from the path
            prop_assert!(p.distance_to_point(q) < 1e-6);
            // projection of that point recovers roughly s (up to self-crossings)
            let s2 = p.project(q);
            prop_assert!(p.point_at(s2).distance(q) < 1e-6);
        }
    }

    #[test]
    fn grid_world_cell_roundtrip(
        ox in -20.0f64..20.0,
        oy in -20.0f64..20.0,
        res in 0.1f64..2.0,
        px in -15.0f64..35.0,
        py in -15.0f64..35.0,
    ) {
        let g = OccupancyGrid::new(Vec2::new(ox, oy), res, 40, 40);
        let p = Vec2::new(ox + px.abs() % (40.0 * res), oy + py.abs() % (40.0 * res));
        let c = g.world_to_cell(p);
        if g.in_bounds(c) {
            let back = g.cell_to_world(c);
            // the cell center is within half a cell diagonal of the point
            prop_assert!(back.distance(p) <= res * std::f64::consts::SQRT_2 / 2.0 + 1e-9);
        }
    }

    #[test]
    fn grid_distance_map_triangle_inequality(
        seed_col in 1i64..9,
        seed_row in 1i64..9,
        obstacle_col in 1i64..9,
    ) {
        let mut g = OccupancyGrid::new(Vec2::ZERO, 1.0, 10, 10);
        // one obstacle cell somewhere
        g.set(Cell::new(obstacle_col, 5), 255);
        let seed = Cell::new(seed_col, seed_row);
        let dm = g.distance_map(|c| c == seed, 128);
        if seed != Cell::new(obstacle_col, 5) {
            prop_assert_eq!(dm.distance(seed), 0.0);
        }
        // every reachable cell's distance is at least the euclidean one
        for col in 0..10 {
            for row in 0..10 {
                let c = Cell::new(col, row);
                let d = dm.distance(c);
                if d.is_finite() {
                    let euclid = (((col - seed_col).pow(2) + (row - seed_row).pow(2)) as f64).sqrt();
                    prop_assert!(d + 1e-9 >= euclid, "cell {:?}: {} < {}", c, d, euclid);
                }
            }
        }
    }

    #[test]
    fn obb_point_distance_consistent_with_contains(o in arb_obb(), p in arb_vec2(30.0)) {
        let d = o.distance_to_point(p);
        if o.contains(p) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
            // distance is a lower bound on the distance to every corner
            for c in o.corners() {
                prop_assert!(d <= p.distance(c) + 1e-9);
            }
        }
    }

    #[test]
    fn polyline_resample_length_preserved(
        pts in prop::collection::vec(arb_vec2(30.0), 2..8),
        step in 0.05f64..2.0,
    ) {
        let p = Polyline::new(pts);
        if p.len() >= 2 && p.length() > 1e-6 {
            let r = p.resample(step);
            prop_assert!((r.length() - p.length()).abs() < 1e-6);
        }
    }
}
