//! Ego-centric bird's-eye-view rendering (the BEV transformer `g`).

use icoil_geom::{Obb, Vec2};
use icoil_vehicle::VehicleState;
use icoil_world::{NoiseConfig, ParkingMap};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// BEV image geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BevConfig {
    /// Image side length in pixels (must be divisible by 8 for the IL
    /// network's three pooling stages).
    pub size: usize,
    /// Half-extent of the square window around the ego vehicle (meters):
    /// the image spans `[-range, range]` in both ego-frame axes.
    pub range: f64,
}

impl Default for BevConfig {
    fn default() -> Self {
        BevConfig {
            size: 32,
            range: 8.0,
        }
    }
}

impl BevConfig {
    /// Meters per pixel.
    pub fn resolution(&self) -> f64 {
        2.0 * self.range / self.size as f64
    }
}

/// A three-channel ego-centric BEV image.
///
/// Layout is `[channel, row, col]` row-major: `channel 0` is the
/// obstacle/wall occupancy, `channel 1` the goal-bay mask, and
/// `channel 2` a constant plane encoding the ego's normalized signed
/// speed (the standard conditioning trick of camera-based IL — the
/// action depends on the current speed, which pixels alone cannot
/// reveal). Row 0 is the far left-front of the vehicle; the ego sits at
/// the image center facing +x (increasing column).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BevImage {
    /// Pixels per side.
    pub size: usize,
    /// Half-extent in meters.
    pub range: f64,
    /// `3 × size × size` pixel values (occupancy/goal in `[0, 1]`, speed
    /// plane in `[-1, 1]`).
    pub data: Vec<f32>,
}

impl BevImage {
    /// Number of channels (obstacles, goal, ego speed).
    pub const CHANNELS: usize = 3;

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range indices.
    pub fn at(&self, channel: usize, row: usize, col: usize) -> f32 {
        assert!(channel < Self::CHANNELS && row < self.size && col < self.size);
        self.data[(channel * self.size + row) * self.size + col]
    }

    /// Mean occupancy of the obstacle channel.
    pub fn obstacle_density(&self) -> f64 {
        let n = self.size * self.size;
        self.data[..n].iter().map(|&v| v as f64).sum::<f64>() / n as f64
    }
}

/// Renders ego-centric BEV images from ground truth.
#[derive(Debug, Clone)]
pub struct BevRenderer {
    config: BevConfig,
}

impl BevRenderer {
    /// Creates a renderer.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero, not divisible by 8, or `range` is not
    /// positive.
    pub fn new(config: BevConfig) -> Self {
        assert!(
            config.size > 0 && config.size.is_multiple_of(8),
            "BEV size must be a positive multiple of 8"
        );
        assert!(config.range > 0.0, "BEV range must be positive");
        BevRenderer { config }
    }

    /// The renderer configuration.
    pub fn config(&self) -> &BevConfig {
        &self.config
    }

    /// Renders the BEV image for the given ego state.
    ///
    /// `noise` perturbs pixels (additive Gaussian-ish noise plus dropout)
    /// using `rng`; pass [`NoiseConfig::none`] for clean rendering.
    pub fn render(
        &self,
        ego: &VehicleState,
        obstacles: &[Obb],
        map: &ParkingMap,
        noise: &NoiseConfig,
        rng: &mut SmallRng,
    ) -> BevImage {
        let s = self.config.size;
        let mut data = vec![0.0f32; BevImage::CHANNELS * s * s];
        let res = self.config.resolution();
        let bay = map.bay();
        let bounds = map.bounds();
        // channel 2: constant normalized-speed plane
        let v_norm = (ego.velocity / 2.5).clamp(-1.0, 1.0) as f32;
        data[2 * s * s..].iter_mut().for_each(|v| *v = v_norm);
        for row in 0..s {
            for col in 0..s {
                // ego frame: +x forward (columns), +y left (rows upward);
                // row 0 is the left-most (+y) edge.
                let ex = -self.config.range + (col as f64 + 0.5) * res;
                let ey = self.config.range - (row as f64 + 0.5) * res;
                let world = ego.pose.to_world(Vec2::new(ex, ey));
                let occupied = !bounds.contains(world)
                    || obstacles.iter().any(|o| o.contains(world));
                if occupied {
                    data[row * s + col] = 1.0;
                }
                if bay.contains(world) {
                    data[(s + row) * s + col] = 1.0;
                }
            }
        }
        let occupancy_len = 2 * s * s;
        apply_noise(&mut data[..occupancy_len], noise, rng);
        BevImage {
            size: s,
            range: self.config.range,
            data,
        }
    }
}

/// Adds per-pixel noise and dropout to a rendered image, clamping to
/// `[0, 1]`.
fn apply_noise(data: &mut [f32], noise: &NoiseConfig, rng: &mut SmallRng) {
    if noise.image_noise_std > 0.0 {
        let std = noise.image_noise_std as f32;
        for v in data.iter_mut() {
            // sum of three uniforms ≈ gaussian (Irwin–Hall), cheap and
            // bounded
            let g: f32 = (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).sum::<f32>() / 3.0;
            *v = (*v + g * std * 2.0).clamp(0.0, 1.0);
        }
    }
    if noise.pixel_dropout > 0.0 {
        for v in data.iter_mut() {
            if rng.gen_bool(noise.pixel_dropout) {
                *v = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::Pose2;
    use icoil_world::{Difficulty, ScenarioConfig};
    use rand::SeedableRng;

    fn setup() -> (BevRenderer, icoil_world::Scenario) {
        (
            BevRenderer::new(BevConfig::default()),
            ScenarioConfig::new(Difficulty::Easy, 5).build(),
        )
    }

    #[test]
    fn clean_render_is_deterministic() {
        let (r, s) = setup();
        let ego = s.start_state;
        let obs = s.obstacle_footprints(0.0);
        let mut rng1 = SmallRng::seed_from_u64(0);
        let mut rng2 = SmallRng::seed_from_u64(99);
        let a = r.render(&ego, &obs, &s.map, &NoiseConfig::none(), &mut rng1);
        let b = r.render(&ego, &obs, &s.map, &NoiseConfig::none(), &mut rng2);
        assert_eq!(a, b, "clean rendering must not consume randomness");
    }

    #[test]
    fn obstacle_appears_in_front_pixels() {
        let (r, s) = setup();
        // place ego right before the first obstacle, facing it
        let ego = icoil_vehicle::VehicleState::at_rest(Pose2::new(8.0, 6.0, 0.0));
        let obs = s.obstacle_footprints(0.0); // obstacle 0 at (12.5, 6.0)
        let mut rng = SmallRng::seed_from_u64(0);
        let img = r.render(&ego, &obs, &s.map, &NoiseConfig::none(), &mut rng);
        // pixel ahead of the car at ego-frame (4.5, 0): row center, col right of center
        let col = ((4.5 + r.config().range) / r.config().resolution()) as usize;
        let row = img.size / 2;
        assert_eq!(img.at(0, row, col), 1.0, "obstacle must be rendered ahead");
        // pixel just left of the car is free space
        let col_free = ((0.0 + r.config().range) / r.config().resolution()) as usize;
        let row_free = ((r.config().range - 3.0) / r.config().resolution()) as usize;
        assert_eq!(img.at(0, row_free, col_free), 0.0);
    }

    #[test]
    fn walls_render_as_occupied() {
        let (r, s) = setup();
        // ego close to the left wall, facing it: the out-of-bounds region
        // beyond the wall fills the front of the image
        let ego =
            icoil_vehicle::VehicleState::at_rest(Pose2::new(3.0, 10.0, std::f64::consts::PI));
        let mut rng = SmallRng::seed_from_u64(0);
        let img = r.render(&ego, &[], &s.map, &NoiseConfig::none(), &mut rng);
        // front at distance 5 m is outside the lot (x = -2)
        let col = ((5.0 + r.config().range) / r.config().resolution()) as usize;
        assert_eq!(img.at(0, img.size / 2, col), 1.0);
    }

    #[test]
    fn goal_channel_marks_bay() {
        let (r, s) = setup();
        // ego near the bay looking at it
        let ego = icoil_vehicle::VehicleState::at_rest(Pose2::new(20.0, 10.0, 0.0));
        let mut rng = SmallRng::seed_from_u64(0);
        let img = r.render(&ego, &[], &s.map, &NoiseConfig::none(), &mut rng);
        // bay center is ~6.8 m ahead
        let col = ((6.8 + r.config().range) / r.config().resolution()) as usize;
        assert_eq!(img.at(1, img.size / 2, col), 1.0);
        // behind the car there is no bay
        assert_eq!(img.at(1, img.size / 2, 2), 0.0);
    }

    #[test]
    fn rotation_invariance_of_ego_frame() {
        // the same relative geometry viewed at two different world
        // headings must produce the same image
        let (r, s) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let obs1 = vec![Obb::from_pose(Pose2::new(18.0, 10.0, 0.0), 2.0, 2.0)];
        let ego1 = icoil_vehicle::VehicleState::at_rest(Pose2::new(14.0, 10.0, 0.0));
        let img1 = r.render(&ego1, &obs1, &s.map, &NoiseConfig::none(), &mut rng);

        let ego2 = icoil_vehicle::VehicleState::at_rest(Pose2::new(
            15.0,
            8.0,
            std::f64::consts::FRAC_PI_2,
        ));
        let obs2 = vec![Obb::from_pose(
            Pose2::new(15.0, 12.0, std::f64::consts::FRAC_PI_2),
            2.0,
            2.0,
        )];
        let img2 = r.render(&ego2, &obs2, &s.map, &NoiseConfig::none(), &mut rng);
        // compare only the central obstacle-channel columns ahead (goal/bay
        // and walls differ between the two placements)
        let c = img1.size / 2;
        let res = r.config().resolution();
        let col = ((4.0 + r.config().range) / res) as usize;
        assert_eq!(img1.at(0, c, col), img2.at(0, c, col));
        assert_eq!(img1.at(0, c, col), 1.0);
    }

    #[test]
    fn noise_perturbs_pixels_deterministically() {
        let (r, s) = setup();
        let ego = s.start_state;
        let obs = s.obstacle_footprints(0.0);
        let noise = NoiseConfig::hard();
        let a = r.render(&ego, &obs, &s.map, &noise, &mut SmallRng::seed_from_u64(7));
        let b = r.render(&ego, &obs, &s.map, &noise, &mut SmallRng::seed_from_u64(7));
        let c = r.render(&ego, &obs, &s.map, &noise, &mut SmallRng::seed_from_u64(8));
        assert_eq!(a, b, "same seed, same noise");
        assert_ne!(a, c, "different seed, different noise");
        let clean = r.render(&ego, &obs, &s.map, &NoiseConfig::none(), &mut SmallRng::seed_from_u64(7));
        assert_ne!(a, clean);
        // values stay in range
        assert!(a.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn density_increases_near_clutter() {
        let (r, s) = setup();
        let mut rng = SmallRng::seed_from_u64(0);
        let near_wall =
            icoil_vehicle::VehicleState::at_rest(Pose2::new(3.0, 3.0, 0.0));
        let mid_lot = icoil_vehicle::VehicleState::at_rest(Pose2::new(15.0, 10.0, 0.0));
        let img_wall = r.render(&near_wall, &[], &s.map, &NoiseConfig::none(), &mut rng);
        let img_mid = r.render(&mid_lot, &[], &s.map, &NoiseConfig::none(), &mut rng);
        assert!(img_wall.obstacle_density() > img_mid.obstacle_density());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_size_panics() {
        let _ = BevRenderer::new(BevConfig { size: 30, range: 10.0 });
    }
}
