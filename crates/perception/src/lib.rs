//! Synthetic perception substrate: BEV transformer `g(·)` and object
//! detector `h(·)`.
//!
//! The paper uses off-the-shelf camera → BEV and object-detection nodes;
//! both are replaced here by ground-truth-driven synthetic equivalents
//! that preserve the properties the iCOIL algorithm depends on:
//!
//! * [`BevRenderer`] — renders an **ego-centric** bird's-eye-view
//!   occupancy image `y_i = g(x_i)` (obstacles/walls channel + goal-bay
//!   channel). The IL DNN and the HSA uncertainty consume this image.
//! * [`ObjectDetector`] — produces bounding boxes `z_i = h(y_i)` from the
//!   ground-truth footprints, with configurable jitter, misses and
//!   phantom boxes. The CO collision constraints consume these boxes.
//! * [`Perception`] — bundles both with a deterministic per-frame noise
//!   stream derived from the scenario seed, so hard-level noise
//!   (§V-B) is reproducible.
//!
//! # Example
//!
//! ```
//! use icoil_perception::{BevConfig, Perception};
//! use icoil_world::{Difficulty, ScenarioConfig, World};
//! use icoil_world::episode::Observation;
//!
//! let scenario = ScenarioConfig::new(Difficulty::Easy, 2).build();
//! let mut world = World::new(scenario);
//! let mut perception = Perception::new(BevConfig::default(), world.scenario());
//! let sensing = perception.observe(&Observation::new(&world));
//! assert_eq!(sensing.bev.data.len(), 3 * 32 * 32);
//! assert_eq!(sensing.boxes.len(), 3); // three static obstacles in range
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod bev;
pub mod detector;
pub mod pipeline;

pub use bev::{BevConfig, BevImage, BevRenderer};
pub use detector::ObjectDetector;
pub use pipeline::{Perception, Sensing};
