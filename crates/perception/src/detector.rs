//! Synthetic object detection (the detector `h`).

use icoil_geom::{Obb, Pose2, Vec2};
use icoil_vehicle::VehicleState;
use icoil_world::NoiseConfig;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Maximum detection distance from the ego rear axle (meters).
    pub range: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { range: 15.0 }
    }
}

/// Produces bounding boxes from ground-truth footprints with
/// configurable degradation (jitter / misses / phantoms) — the noise
/// source of the paper's *hard* difficulty level.
#[derive(Debug, Clone)]
pub struct ObjectDetector {
    config: DetectorConfig,
}

impl ObjectDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive range.
    pub fn new(config: DetectorConfig) -> Self {
        assert!(config.range > 0.0, "detector range must be positive");
        ObjectDetector { config }
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Detects obstacle boxes around the ego vehicle.
    ///
    /// Boxes beyond the detection range are dropped (real detectors have
    /// finite range); within range, noise may jitter the box pose, miss
    /// the box entirely, or hallucinate a phantom box ahead of the
    /// vehicle.
    pub fn detect(
        &self,
        ego: &VehicleState,
        truth: &[Obb],
        noise: &NoiseConfig,
        rng: &mut SmallRng,
    ) -> Vec<Obb> {
        let ego_pos = ego.pose.position();
        let mut out = Vec::with_capacity(truth.len());
        for obb in truth {
            if obb.distance_to_point(ego_pos) > self.config.range {
                continue;
            }
            if noise.false_negative_rate > 0.0 && rng.gen_bool(noise.false_negative_rate) {
                continue;
            }
            let mut detected = *obb;
            if noise.box_jitter > 0.0 {
                detected.center += Vec2::new(
                    rng.gen_range(-1.0..1.0) * noise.box_jitter,
                    rng.gen_range(-1.0..1.0) * noise.box_jitter,
                );
            }
            if noise.heading_jitter > 0.0 {
                detected = Obb::from_pose(
                    Pose2::new(
                        detected.center.x,
                        detected.center.y,
                        detected.theta + rng.gen_range(-1.0..1.0) * noise.heading_jitter,
                    ),
                    detected.length(),
                    detected.width(),
                );
            }
            out.push(detected);
        }
        if noise.phantom_rate > 0.0 && rng.gen_bool(noise.phantom_rate) {
            // phantom box somewhere in front of the vehicle
            let ahead = rng.gen_range(3.0..self.config.range * 0.8);
            let side = rng.gen_range(-3.0..3.0);
            let pos = ego.pose.to_world(Vec2::new(ahead, side));
            out.push(Obb::from_pose(
                Pose2::new(pos.x, pos.y, rng.gen_range(-3.0..3.0)),
                1.5,
                1.5,
            ));
        }
        out
    }
}

impl Default for ObjectDetector {
    fn default() -> Self {
        ObjectDetector::new(DetectorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ego_at(x: f64, y: f64) -> VehicleState {
        VehicleState::at_rest(Pose2::new(x, y, 0.0))
    }

    fn boxes() -> Vec<Obb> {
        vec![
            Obb::from_pose(Pose2::new(5.0, 0.0, 0.0), 2.0, 2.0),
            Obb::from_pose(Pose2::new(40.0, 0.0, 0.0), 2.0, 2.0), // far away
        ]
    }

    #[test]
    fn clean_detection_passes_through_in_range() {
        let d = ObjectDetector::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = d.detect(&ego_at(0.0, 0.0), &boxes(), &NoiseConfig::none(), &mut rng);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], boxes()[0]);
    }

    #[test]
    fn range_limit_respected() {
        let d = ObjectDetector::new(DetectorConfig { range: 50.0 });
        let mut rng = SmallRng::seed_from_u64(1);
        let out = d.detect(&ego_at(0.0, 0.0), &boxes(), &NoiseConfig::none(), &mut rng);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn jitter_moves_but_preserves_size() {
        let d = ObjectDetector::default();
        let noise = NoiseConfig {
            box_jitter: 0.3,
            heading_jitter: 0.1,
            ..NoiseConfig::none()
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let truth = boxes();
        let out = d.detect(&ego_at(0.0, 0.0), &truth, &noise, &mut rng);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].center, truth[0].center);
        assert!(out[0].center.distance(truth[0].center) <= 0.3 * 2f64.sqrt() + 1e-9);
        assert_eq!(out[0].length(), truth[0].length());
    }

    #[test]
    fn false_negatives_eventually_drop_boxes() {
        let d = ObjectDetector::default();
        let noise = NoiseConfig {
            false_negative_rate: 0.5,
            ..NoiseConfig::none()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let mut dropped = 0;
        for _ in 0..100 {
            if d.detect(&ego_at(0.0, 0.0), &boxes(), &noise, &mut rng).is_empty() {
                dropped += 1;
            }
        }
        assert!(dropped > 20 && dropped < 80, "dropped {dropped}/100");
    }

    #[test]
    fn phantoms_eventually_appear() {
        let d = ObjectDetector::default();
        let noise = NoiseConfig {
            phantom_rate: 0.5,
            ..NoiseConfig::none()
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let mut phantoms = 0;
        for _ in 0..100 {
            let out = d.detect(&ego_at(0.0, 0.0), &[], &noise, &mut rng);
            phantoms += out.len();
        }
        assert!(phantoms > 20, "phantoms {phantoms}/100");
    }

    #[test]
    fn deterministic_under_seed() {
        let d = ObjectDetector::default();
        let noise = NoiseConfig::hard();
        let a = d.detect(&ego_at(0.0, 0.0), &boxes(), &noise, &mut SmallRng::seed_from_u64(9));
        let b = d.detect(&ego_at(0.0, 0.0), &boxes(), &noise, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn zero_range_panics() {
        let _ = ObjectDetector::new(DetectorConfig { range: 0.0 });
    }
}
