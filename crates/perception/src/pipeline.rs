//! The full perception pipeline: one call per frame.

use crate::bev::{BevConfig, BevImage, BevRenderer};
use crate::detector::ObjectDetector;
use icoil_geom::Obb;
use icoil_world::episode::Observation;
use icoil_world::{NoiseConfig, Scenario};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// What perception hands to the planners each frame: the BEV image for
/// IL/HSA and the detected boxes for CO.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensing {
    /// Ego-centric BEV image `y_i = g(x_i)`.
    pub bev: BevImage,
    /// Detected obstacle boxes `z_i = h(y_i)`.
    pub boxes: Vec<Obb>,
}

/// Bundles the renderer and detector with the scenario's noise profile
/// and a per-frame deterministic noise stream.
///
/// The noise RNG is reseeded per frame from `(scenario seed, frame)` so a
/// frame's sensing is a pure function of the scenario and the frame
/// index — episodes replay bit-identically regardless of how many times
/// perception is called.
#[derive(Debug, Clone)]
pub struct Perception {
    renderer: BevRenderer,
    detector: ObjectDetector,
    noise: NoiseConfig,
    seed: u64,
}

impl Perception {
    /// Creates the pipeline for a scenario.
    pub fn new(bev: BevConfig, scenario: &Scenario) -> Self {
        Perception {
            renderer: BevRenderer::new(bev),
            detector: ObjectDetector::default(),
            noise: scenario.noise,
            seed: scenario.seed,
        }
    }

    /// Replaces the noise profile (used by failure-injection tests).
    pub fn set_noise(&mut self, noise: NoiseConfig) {
        self.noise = noise;
    }

    /// The BEV configuration in use.
    pub fn bev_config(&self) -> &BevConfig {
        self.renderer.config()
    }

    /// Runs perception for the current frame.
    pub fn observe(&mut self, obs: &Observation) -> Sensing {
        let ego = obs.ego();
        let truth = obs.obstacles();
        let map = &obs.world().scenario().map;
        let mut rng = self.frame_rng(obs.frame());
        let bev = self
            .renderer
            .render(&ego, &truth, map, &self.noise, &mut rng);
        let boxes = self.detector.detect(&ego, &truth, &self.noise, &mut rng);
        Sensing { bev, boxes }
    }

    fn frame_rng(&self, frame: usize) -> SmallRng {
        // splitmix-style mixing of (seed, frame)
        let mut z = self
            .seed
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(frame as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        SmallRng::seed_from_u64(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_world::{Difficulty, ScenarioConfig, World};

    fn world(difficulty: Difficulty) -> World {
        World::new(ScenarioConfig::new(difficulty, 11).build())
    }

    #[test]
    fn observe_is_reproducible_per_frame() {
        let w = world(Difficulty::Hard);
        let mut p1 = Perception::new(BevConfig::default(), w.scenario());
        let mut p2 = Perception::new(BevConfig::default(), w.scenario());
        let obs = Observation::new(&w);
        assert_eq!(p1.observe(&obs), p2.observe(&obs));
        // calling twice on the same frame gives the same answer
        assert_eq!(p1.observe(&obs), p1.observe(&obs));
    }

    #[test]
    fn different_frames_get_different_noise() {
        let mut w = world(Difficulty::Hard);
        let mut p = Perception::new(BevConfig::default(), w.scenario());
        let s0 = p.observe(&Observation::new(&w));
        w.step(&icoil_vehicle::Action::full_brake()); // ego barely moves
        let s1 = p.observe(&Observation::new(&w));
        // same pose (at rest braking), but the hard-level noise stream
        // differs between frames
        assert_ne!(s0.bev, s1.bev);
    }

    #[test]
    fn easy_level_is_noise_free() {
        let mut w = world(Difficulty::Easy);
        let mut p = Perception::new(BevConfig::default(), w.scenario());
        let s0 = p.observe(&Observation::new(&w));
        w.step(&icoil_vehicle::Action::full_brake());
        let s1 = p.observe(&Observation::new(&w));
        // ego stationary, statics only, no noise → identical sensing
        assert_eq!(s0, s1);
        assert_eq!(s0.boxes.len(), 3);
    }

    #[test]
    fn boxes_follow_dynamic_obstacles() {
        let mut w = world(Difficulty::Normal);
        let mut p = Perception::new(BevConfig::default(), w.scenario());
        let before = p.observe(&Observation::new(&w));
        for _ in 0..40 {
            w.step(&icoil_vehicle::Action::full_brake());
        }
        let after = p.observe(&Observation::new(&w));
        // at least one detected box center moved (a dynamic obstacle)
        let moved = before
            .boxes
            .iter()
            .zip(&after.boxes)
            .any(|(a, b)| a.center.distance(b.center) > 0.3);
        assert!(moved);
    }
}
