//! Property tests for the consistent-hash shard router:
//!
//! * **stability** — assignment is a pure function of `(id, shard
//!   count)`: independent router instances agree on every id, in any
//!   query order, and always return an in-range shard;
//! * **balance** — over a realistic id population (the handle allocates
//!   ids sequentially), no shard's load strays past twice the ideal
//!   share;
//! * **minimal movement** — growing the ring by one shard reassigns
//!   only a bounded fraction of a live population (the property that
//!   makes consistent hashing worth its vnodes over `id % shards`).

use icoil_serve::ShardRouter;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn assignment_is_a_pure_function_of_id_and_shard_count(
        shards in 1usize..9,
        ids in vec(any::<u64>(), 1..200),
    ) {
        let router = ShardRouter::new(shards);
        prop_assert_eq!(router.shards(), shards);
        // a naive map built from one pass of route calls…
        let model: HashMap<u64, usize> =
            ids.iter().map(|&id| (id, router.route(id))).collect();
        for &shard in model.values() {
            prop_assert!(shard < shards, "out-of-range shard {shard}");
        }
        // …must agree with a fresh instance queried in reverse order:
        // no hidden per-instance or query-history state
        let fresh = ShardRouter::new(shards);
        for &id in ids.iter().rev() {
            prop_assert_eq!(fresh.route(id), model[&id]);
        }
    }

    #[test]
    fn sequential_id_populations_stay_balanced(
        start in any::<u64>(),
        shards in 2usize..9,
    ) {
        // the serve handle allocates ids with fetch_add, so the live
        // population is always a contiguous run — the distribution the
        // balance bound actually has to hold for
        let n: u64 = 2048;
        let router = ShardRouter::new(shards);
        let mut counts = vec![0usize; shards];
        for offset in 0..n {
            counts[router.route(start.wrapping_add(offset))] += 1;
        }
        let ideal = n as usize / shards;
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                count <= ideal * 2,
                "shard {shard} holds {count} of {n} sessions (ideal {ideal}); \
                 128 vnodes per shard should keep skew under 2x"
            );
            prop_assert!(count > 0, "shard {shard} received no sessions at all");
        }
    }

    #[test]
    fn adding_a_shard_moves_a_bounded_fraction(
        start in any::<u64>(),
        shards in 1usize..8,
    ) {
        let n: u64 = 1024;
        let before = ShardRouter::new(shards);
        let after = ShardRouter::new(shards + 1);
        let moved = (0..n)
            .filter(|&offset| {
                let id = start.wrapping_add(offset);
                before.route(id) != after.route(id)
            })
            .count();
        // the ideal move fraction is 1/(shards+1); allow 3x for vnode
        // placement variance, capped below "basically everything"
        let bound = ((n as f64) * (3.0 / (shards as f64 + 1.0))).min(n as f64 * 0.9);
        prop_assert!(
            (moved as f64) <= bound,
            "growing {shards} -> {} shards moved {moved}/{n} sessions (bound {bound:.0})",
            shards + 1
        );
    }
}
