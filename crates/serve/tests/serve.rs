//! End-to-end server tests: determinism across worker counts, overload
//! shedding, and the TCP NDJSON front end.

use icoil_il::{IlModel, IlPrecision};
use icoil_perception::BevConfig;
use icoil_serve::{
    Request, Response, Serve, ServeConfig, ServeError, SessionConfig, ShardRouter, StepResponse,
};
use icoil_telemetry::{Counter, Series};
use icoil_vehicle::ActionCodec;
use icoil_world::Difficulty;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn test_model() -> IlModel {
    // untrained → near-uniform softmax → high uncertainty → the HSA
    // keeps sessions on the CO lane, which is the lane worth stressing
    IlModel::untrained(ActionCodec::default(), BevConfig::default(), 1)
}

/// Runs `sessions` episodes for `frames` frames each through one server
/// and returns every session's full response stream.
fn run_once(
    co_workers: usize,
    co_batch: usize,
    sessions: usize,
    frames: usize,
) -> (Vec<Vec<StepResponse>>, u64) {
    run_sharded(1, co_workers, co_batch, sessions, frames)
}

/// [`run_once`] with an explicit shard count.
fn run_sharded(
    shards: usize,
    co_workers: usize,
    co_batch: usize,
    sessions: usize,
    frames: usize,
) -> (Vec<Vec<StepResponse>>, u64) {
    let config = ServeConfig {
        shards,
        co_workers,
        co_batch,
        // generous deadline and queue: zero sheds, so trajectories are
        // the pure function of (difficulty, seed) the contract promises
        co_deadline: Duration::from_secs(30),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let server = Serve::start(config, test_model());
    let handle = server.handle();
    let ids: Vec<u64> = (0..sessions)
        .map(|i| {
            handle
                .create(SessionConfig {
                    difficulty: Difficulty::Easy,
                    seed: 100 + i as u64,
                })
                .expect("create session")
        })
        .collect();
    let mut streams: Vec<Vec<StepResponse>> = vec![Vec::new(); sessions];
    for _ in 0..frames {
        for (i, result) in handle.step_many(&ids).into_iter().enumerate() {
            streams[i].push(result.expect("step"));
        }
    }
    let shed = handle
        .metrics()
        .expect("metrics")
        .counter(Counter::CoShed);
    server.shutdown();
    (streams, shed)
}

#[test]
fn trajectories_are_identical_across_worker_counts() {
    let (serial, shed_serial) = run_once(1, 4, 3, 20);
    let (parallel, shed_parallel) = run_once(4, 4, 3, 20);
    assert_eq!(shed_serial, 0, "low load must not shed");
    assert_eq!(shed_parallel, 0, "low load must not shed");
    // StepResponse is PartialEq over every f64 it carries: this is a
    // bitwise trajectory comparison, not a tolerance check
    assert_eq!(serial, parallel);
    for stream in &serial {
        assert!(stream.iter().all(|r| !r.shed && !r.degraded));
    }
}

#[test]
fn trajectories_are_identical_across_batch_widths() {
    // one worker so every queued job funnels through the same drain loop:
    // co_batch=1 is the job-at-a-time baseline, wider drains pool frames
    // into block-diagonal batched solves
    let (solo, shed_solo) = run_once(1, 1, 4, 15);
    let (batched, shed_batched) = run_once(1, 8, 4, 15);
    assert_eq!(shed_solo, 0, "low load must not shed");
    assert_eq!(shed_batched, 0, "low load must not shed");
    assert_eq!(
        solo, batched,
        "batched CO solves must be bit-identical to job-at-a-time solves"
    );
}

#[test]
fn trajectories_are_identical_across_shard_counts() {
    let (one, shed_one) = run_sharded(1, 2, 4, 4, 15);
    let (four, shed_four) = run_sharded(4, 2, 4, 4, 15);
    assert_eq!(shed_one, 0, "low load must not shed");
    assert_eq!(shed_four, 0, "low load must not shed");
    assert_eq!(
        one, four,
        "shard assignment must be invisible to trajectories"
    );
}

/// A deadline-generous config for checkpoint tests (zero sheds keep the
/// replay deterministic).
fn snapshot_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        co_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    }
}

#[test]
fn restored_session_replays_bit_identically() {
    // reference: one uninterrupted session
    let server = Serve::start(snapshot_config(1), test_model());
    let handle = server.handle();
    let spec = SessionConfig {
        difficulty: Difficulty::Easy,
        seed: 314,
    };
    let id = handle.create(spec).expect("create");
    let reference: Vec<StepResponse> =
        (0..30).map(|_| handle.step(id).expect("step")).collect();

    // checkpointed twin: same spec, snapshot mid-episode…
    let id2 = handle.create(spec).expect("create twin");
    let mut twin: Vec<StepResponse> = (0..12).map(|_| handle.step(id2).expect("step")).collect();
    let bytes = handle.evict(id2).expect("evict");
    assert!(
        handle.step(id2).is_err(),
        "an evicted session must be gone"
    );

    // …restored into a FRESH server at a DIFFERENT shard count
    let server2 = Serve::start(snapshot_config(4), test_model());
    let handle2 = server2.handle();
    let restored = handle2.restore(&bytes).expect("restore");
    assert_eq!(restored, id2, "restore keeps the session id");
    twin.extend((0..18).map(|_| handle2.step(id2).expect("step restored")));

    // the twin's stream must match the reference frame-for-frame except
    // the session id field
    assert_eq!(reference.len(), twin.len());
    for (a, b) in reference.iter().zip(&twin) {
        let mut b = b.clone();
        b.session = a.session;
        assert_eq!(*a, b, "restored replay must be bit-identical");
    }
    let m2 = handle2.metrics().expect("metrics");
    assert_eq!(m2.counter(Counter::ServeRestores), 1);
    server2.shutdown();
    server.shutdown();
}

#[test]
fn snapshot_without_evict_leaves_the_session_live() {
    let server = Serve::start(snapshot_config(2), test_model());
    let handle = server.handle();
    let id = handle
        .create(SessionConfig {
            difficulty: Difficulty::Easy,
            seed: 77,
        })
        .expect("create");
    for _ in 0..5 {
        handle.step(id).expect("step");
    }
    let a = handle.snapshot(id).expect("snapshot");
    let b = handle.snapshot(id).expect("snapshot again");
    assert_eq!(a, b, "snapshotting must not disturb the session");
    handle.step(id).expect("still steppable");
    let metrics = handle.metrics().expect("metrics");
    assert_eq!(metrics.counter(Counter::ServeSnapshots), 2);
    assert_eq!(metrics.counter(Counter::ServeEvictions), 0);
    // restoring over a live id is refused
    assert_eq!(handle.restore(&a), Err(ServeError::SessionExists(id)));
    server.shutdown();
}

#[test]
fn malformed_snapshots_are_typed_errors() {
    let server = Serve::start(snapshot_config(1), test_model());
    let handle = server.handle();
    assert!(matches!(
        handle.restore(b"not a snapshot at all"),
        Err(ServeError::Snapshot(_))
    ));
    let id = handle
        .create(SessionConfig {
            difficulty: Difficulty::Easy,
            seed: 5,
        })
        .expect("create");
    handle.step(id).expect("step");
    let mut bytes = handle.evict(id).expect("evict");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assert!(matches!(
        handle.restore(&bytes),
        Err(ServeError::Snapshot(_))
    ));
    assert!(matches!(
        handle.restore(&bytes[..bytes.len() / 2]),
        Err(ServeError::Snapshot(_))
    ));
    assert_eq!(handle.snapshot(99), Err(ServeError::UnknownSession(99)));
    assert_eq!(handle.evict(99), Err(ServeError::UnknownSession(99)));
    server.shutdown();
}

#[test]
fn overload_sheds_degraded_full_brake_instead_of_blocking() {
    let config = ServeConfig {
        co_workers: 1,
        queue_capacity: 1,
        co_deadline: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server = Serve::start(config, test_model());
    let handle = server.handle();
    let ids: Vec<u64> = (0..8)
        .map(|i| {
            handle
                .create(SessionConfig {
                    difficulty: Difficulty::Normal,
                    seed: 500 + i,
                })
                .expect("create session")
        })
        .collect();
    let mut shed_frames = 0usize;
    for _ in 0..6 {
        // every request is answered — shedding degrades, it never blocks
        for result in handle.step_many(&ids) {
            let resp = result.expect("overloaded step still answers");
            if resp.shed {
                shed_frames += 1;
                assert!(resp.degraded, "a shed frame must carry the degraded brake");
                assert_eq!(resp.action, icoil_vehicle::Action::full_brake());
            }
        }
    }
    assert!(shed_frames > 0, "capacity 1 + zero deadline must shed");
    let metrics = handle.metrics().expect("metrics");
    assert_eq!(metrics.counter(Counter::CoShed), shed_frames as u64);
    server.shutdown();
}

/// A deadline-generous config serving the given IL precision.
fn precision_config(il_precision: IlPrecision) -> ServeConfig {
    ServeConfig {
        il_precision,
        co_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    }
}

#[test]
fn int8_server_serves_and_reports_the_quantized_lane() {
    let server = Serve::start(precision_config(IlPrecision::Int8), test_model());
    let handle = server.handle();
    assert_eq!(handle.il_precision(), IlPrecision::Int8);
    let ids: Vec<u64> = (0..3)
        .map(|i| {
            handle
                .create(SessionConfig {
                    difficulty: Difficulty::Easy,
                    seed: 900 + i,
                })
                .expect("create int8 session")
        })
        .collect();
    let mut frames = 0u64;
    for _ in 0..10 {
        for result in handle.step_many(&ids) {
            result.expect("int8 step");
            frames += 1;
        }
    }
    let metrics = handle.metrics().expect("metrics");
    assert_eq!(
        metrics.counter(Counter::IlFramesInt8),
        frames,
        "every frame of an int8-pinned session runs the quantized lane"
    );
    let errs = metrics.series(Series::IlQuantAbsErr);
    assert!(
        errs.count() > 0,
        "a shard that ran the int8 lane publishes its calibration error profile"
    );
    server.shutdown();
}

#[test]
fn int8_trajectories_are_unchanged_by_f32_batchmates() {
    // an f32-pinned snapshot, frozen at frame 0 on a default server
    let f32_server = Serve::start(precision_config(IlPrecision::F32), test_model());
    let f32_handle = f32_server.handle();
    let spec42 = SessionConfig {
        difficulty: Difficulty::Easy,
        seed: 42,
    };
    // burn id 1 so the donor's preserved id can't collide with the
    // mixed server's first create
    f32_handle.create(spec42).expect("create id burner");
    let donor = f32_handle.create(spec42).expect("create donor");
    let f32_bytes = f32_handle.evict(donor).expect("evict donor");
    f32_server.shutdown();

    // reference: the int8 session alone on an int8 server
    let spec = SessionConfig {
        difficulty: Difficulty::Easy,
        seed: 777,
    };
    let solo_server = Serve::start(precision_config(IlPrecision::Int8), test_model());
    let solo_handle = solo_server.handle();
    let solo_id = solo_handle.create(spec).expect("create solo");
    let solo: Vec<StepResponse> = (0..15)
        .map(|_| solo_handle.step(solo_id).expect("step solo"))
        .collect();
    solo_server.shutdown();

    // same int8 session sharing every tick with a restored f32 session
    let mixed_server = Serve::start(precision_config(IlPrecision::Int8), test_model());
    let mixed_handle = mixed_server.handle();
    let int8_id = mixed_handle.create(spec).expect("create mixed");
    let f32_id = mixed_handle.restore(&f32_bytes).expect("restore f32 donor");
    let mut mixed: Vec<StepResponse> = Vec::new();
    for _ in 0..15 {
        let mut results = mixed_handle.step_many(&[int8_id, f32_id]).into_iter();
        mixed.push(results.next().unwrap().expect("step int8"));
        results.next().unwrap().expect("step f32");
    }
    let frames_int8 = mixed_handle
        .metrics()
        .expect("metrics")
        .counter(Counter::IlFramesInt8);
    assert_eq!(
        frames_int8, 15,
        "only the int8-pinned session counts toward il_frames_int8"
    );
    mixed_server.shutdown();

    // precision is per-session and batching per-row: who shares the
    // tick must not change the int8 session's trajectory
    for (a, b) in solo.iter().zip(&mixed) {
        let mut b = b.clone();
        b.session = a.session;
        assert_eq!(*a, b, "f32 batchmates must not perturb an int8 session");
    }
}

#[test]
fn int8_snapshot_keeps_its_lane_on_an_f32_server() {
    // reference: uninterrupted int8 episode
    let server = Serve::start(precision_config(IlPrecision::Int8), test_model());
    let handle = server.handle();
    let spec = SessionConfig {
        difficulty: Difficulty::Normal,
        seed: 606,
    };
    let id = handle.create(spec).expect("create");
    let reference: Vec<StepResponse> =
        (0..24).map(|_| handle.step(id).expect("step")).collect();

    // twin: snapshot mid-episode, restore into an f32-DEFAULT server
    let id2 = handle.create(spec).expect("create twin");
    let mut twin: Vec<StepResponse> =
        (0..9).map(|_| handle.step(id2).expect("step twin")).collect();
    let bytes = handle.evict(id2).expect("evict twin");
    server.shutdown();

    let f32_server = Serve::start(precision_config(IlPrecision::F32), test_model());
    let f32_handle = f32_server.handle();
    let restored = f32_handle.restore(&bytes).expect("restore onto f32 server");
    assert_eq!(restored, id2);
    twin.extend((0..15).map(|_| f32_handle.step(id2).expect("step restored")));
    let metrics = f32_handle.metrics().expect("metrics");
    assert_eq!(
        metrics.counter(Counter::IlFramesInt8),
        15,
        "the restored session stays pinned to the int8 lane"
    );

    assert_eq!(reference.len(), twin.len());
    for (a, b) in reference.iter().zip(&twin) {
        let mut b = b.clone();
        b.session = a.session;
        assert_eq!(
            *a, b,
            "an int8 episode must replay bit-identically across an f32-server restore"
        );
    }
    f32_server.shutdown();
}

#[test]
fn session_lifecycle_errors() {
    let config = ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    };
    let server = Serve::start(config, test_model());
    let handle = server.handle();
    let spec = SessionConfig {
        difficulty: Difficulty::Easy,
        seed: 1,
    };
    assert_eq!(handle.step(99), Err(ServeError::UnknownSession(99)));
    let a = handle.create(spec).unwrap();
    let b = handle.create(spec).unwrap();
    assert_ne!(a, b);
    assert_eq!(handle.create(spec), Err(ServeError::SessionLimit));
    handle.close(a).unwrap();
    assert_eq!(handle.close(a), Err(ServeError::UnknownSession(a)));
    let c = handle.create(spec).unwrap();
    assert_ne!(c, a, "session ids are never reused");
    server.shutdown();
    assert_eq!(handle.step(b), Err(ServeError::Disconnected));
}

#[test]
fn global_session_cap_survives_shard_hash_skew() {
    // Find a prefix of the id sequence whose 4-shard routing is skewed:
    // some shard holding more than the old per-shard quota of
    // div_ceil(n, shards). The handle allocates ids sequentially from 1,
    // so this is exactly the id set a filled server holds.
    let shards = 4;
    let router = ShardRouter::new(shards);
    let n = (2..=32)
        .find(|&n: &usize| {
            let mut counts = vec![0usize; shards];
            for id in 1..=n as u64 {
                counts[router.route(id)] += 1;
            }
            counts.iter().any(|&c| c > n.div_ceil(shards))
        })
        .expect("some prefix of ids 1.. must route unevenly across 4 shards");

    let config = ServeConfig {
        shards,
        max_sessions: n,
        ..ServeConfig::default()
    };
    let server = Serve::start(config, test_model());
    let handle = server.handle();
    let spec = SessionConfig {
        difficulty: Difficulty::Easy,
        seed: 11,
    };
    // fill to exactly max_sessions: under the split per-shard cap the
    // overloaded shard would reject before the server is actually full
    let ids: Vec<u64> = (0..n)
        .map(|i| {
            handle
                .create(spec)
                .unwrap_or_else(|e| panic!("create {i} rejected under hash skew: {e}"))
        })
        .collect();
    assert_eq!(handle.create(spec), Err(ServeError::SessionLimit));

    // close frees exactly one slot
    handle.close(ids[0]).unwrap();
    let refill = handle.create(spec).expect("slot freed by close");
    assert_eq!(handle.create(spec), Err(ServeError::SessionLimit));

    // evict frees a slot; restore takes one back and respects the cap
    let bytes = handle.evict(ids[1]).expect("evict");
    let again = handle.create(spec).expect("slot freed by evict");
    assert_eq!(
        handle.restore(&bytes),
        Err(ServeError::SessionLimit),
        "restore must respect the global cap"
    );
    handle.close(again).unwrap();
    handle.restore(&bytes).expect("restore into the freed slot");

    // every live session still steps
    for id in ids.iter().skip(2).chain([&refill, &ids[1]]) {
        handle.step(*id).expect("step live session");
    }
    server.shutdown();
}

#[test]
fn tcp_front_end_round_trips() {
    let server = Serve::start(ServeConfig::default(), test_model());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let handle = server.handle();
    std::thread::spawn(move || {
        let _ = icoil_serve::run_server(listener, handle);
    });

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut exchange = |req: &Request| -> Response {
        let mut line = serde_json::to_string(req).expect("encode");
        line.push('\n');
        writer.write_all(line.as_bytes()).expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv");
        serde_json::from_str(&reply).expect("decode")
    };

    let created = exchange(&Request::create(Difficulty::Easy, 7));
    assert!(created.ok, "create failed: {:?}", created.error);
    let id = created.session.expect("session id");

    let stepped = exchange(&Request::step(id));
    assert!(stepped.ok);
    let frame = stepped.frame.expect("frame payload");
    assert_eq!(frame.session, id);
    assert_eq!(frame.frame, 1);

    let metrics = exchange(&Request::metrics());
    assert!(metrics.ok);
    assert_eq!(metrics.il_precision.as_deref(), Some("f32"));
    assert_eq!(
        metrics.kernel_backend.as_deref(),
        Some(icoil_nn::simd::dispatch_target())
    );
    assert_eq!(
        metrics.metrics.expect("metrics payload").counter(Counter::ServeSessions),
        1
    );

    let closed = exchange(&Request::close(id));
    assert!(closed.ok);
    let gone = exchange(&Request::step(id));
    assert!(!gone.ok);
    assert_eq!(gone.error.as_deref(), Some(&*format!("unknown session {id}")));

    let malformed_reply = exchange(&Request {
        op: "reboot".to_string(),
        difficulty: None,
        seed: None,
        session: None,
        snapshot: None,
    });
    assert!(!malformed_reply.ok, "unknown op must fail, not kill the connection");

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Weight hot-swap: sessions pin their generation for the whole episode.
// ---------------------------------------------------------------------------

#[test]
fn hot_swap_pins_running_sessions_and_versions_new_ones() {
    use icoil_adapt::WeightStore;
    use std::sync::Arc;

    let spec = SessionConfig {
        difficulty: Difficulty::Easy,
        seed: 314,
    };

    // reference: a server that never learns anything new
    let reference_server = Serve::start(snapshot_config(1), test_model());
    let reference_handle = reference_server.handle();
    let rid = reference_handle.create(spec).expect("create reference");
    let reference: Vec<StepResponse> = (0..30)
        .map(|_| reference_handle.step(rid).expect("step reference"))
        .collect();
    reference_server.shutdown();

    // hot-swap server: generation 1 (different weights) is published while
    // a generation-0 session is mid-episode
    let store = Arc::new(WeightStore::new(test_model()));
    let server = Serve::start_with_store(snapshot_config(1), Arc::clone(&store));
    let handle = server.handle();
    let pinned = handle.create(spec).expect("create pinned");
    let mut stream: Vec<StepResponse> = (0..10)
        .map(|_| handle.step(pinned).expect("step pinned"))
        .collect();

    let swapped = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 2);
    let published = store.publish(swapped, 64);
    assert_eq!(published, 1);
    assert_eq!(store.published(), 1);

    // a session created after the publish rides the new generation…
    let fresh = handle.create(spec).expect("create fresh");
    let fresh_step = handle.step(fresh).expect("step fresh");
    assert_eq!(fresh_step.weight_version, 1);

    // …while the pinned session finishes its episode on generation 0,
    // bit-identical to the server that never swapped
    stream.extend((0..20).map(|_| handle.step(pinned).expect("step pinned")));
    assert_eq!(reference.len(), stream.len());
    for (a, b) in reference.iter().zip(&stream) {
        let mut b = b.clone();
        b.session = a.session;
        assert_eq!(*a, b, "pinned session must be immune to the hot swap");
        assert_eq!(a.weight_version, 0);
    }
    server.shutdown();
}

#[test]
fn snapshots_carry_the_weight_version_and_refuse_unknown_generations() {
    use icoil_adapt::WeightStore;
    use std::sync::Arc;

    let store = Arc::new(WeightStore::new(test_model()));
    store.publish(
        IlModel::untrained(ActionCodec::default(), BevConfig::default(), 2),
        64,
    );
    let server = Serve::start_with_store(snapshot_config(1), Arc::clone(&store));
    let handle = server.handle();
    let spec = SessionConfig {
        difficulty: Difficulty::Easy,
        seed: 271,
    };
    // created after the publish → pinned to generation 1
    let id = handle.create(spec).expect("create");
    let reference: Vec<StepResponse> =
        (0..24).map(|_| handle.step(id).expect("step")).collect();

    let twin = handle.create(spec).expect("create twin");
    let mut stream: Vec<StepResponse> =
        (0..9).map(|_| handle.step(twin).expect("step twin")).collect();
    let bytes = handle.evict(twin).expect("evict");

    // a server without generation 1 must refuse the snapshot outright
    let stale = Serve::start(snapshot_config(1), test_model());
    match stale.handle().restore(&bytes) {
        Err(ServeError::UnknownWeightVersion(1)) => {}
        other => panic!("expected UnknownWeightVersion(1), got {other:?}"),
    }
    stale.shutdown();

    // a server sharing the store replays the rest of the episode bitwise
    let server2 = Serve::start_with_store(snapshot_config(2), Arc::clone(&store));
    let handle2 = server2.handle();
    let restored = handle2.restore(&bytes).expect("restore");
    assert_eq!(restored, twin);
    stream.extend((0..15).map(|_| handle2.step(twin).expect("step restored")));
    assert_eq!(reference.len(), stream.len());
    for (a, b) in reference.iter().zip(&stream) {
        let mut b = b.clone();
        b.session = a.session;
        assert_eq!(*a, b, "restored replay must be bit-identical");
        assert_eq!(a.weight_version, 1, "snapshot must carry the pinned generation");
    }
    server2.shutdown();
    server.shutdown();
}
