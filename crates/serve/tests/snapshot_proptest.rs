//! Property tests for the versioned binary snapshot codec:
//!
//! * **bit-exactness** — every `f64` payload round-trips by bit
//!   pattern, NaN payloads, negative zero and subnormals included (the
//!   determinism contract compares restored trajectories bitwise, so
//!   the codec may not normalize anything);
//! * **idempotence** — arbitrary serde `Value` trees re-encode to the
//!   same bytes after a decode round trip;
//! * **robustness** — any single-bit corruption, any truncation and
//!   random byte soup decode to a typed [`SnapshotError`]-backed
//!   failure; nothing panics, nothing silently succeeds.
//!
//! [`SnapshotError`]: icoil_serve::SnapshotError

use icoil_co::MpcMemorySnapshot;
use icoil_serve::{decode_snapshot, encode_snapshot};
use icoil_solver::{QpWarmStart, QpWorkspaceSnapshot};
use proptest::collection::vec;
use proptest::prelude::*;
use serde::Value;

/// Arbitrary [`Value`] trees: floats drawn from raw bit patterns so
/// NaNs and subnormals appear, nesting bounded well under the codec's
/// depth guard. (The vendored proptest subset has no recursive-strategy
/// combinator, so this is a hand-rolled [`Strategy`].)
struct ValueTreeStrategy;

fn gen_value(rng: &mut TestRng, depth: u64) -> Value {
    // below depth 4, containers stay on the menu; past it, leaves only
    let pick = if depth < 4 { rng.index(9) } else { rng.index(7) };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.next_u64() & 1 == 1),
        2 => Value::I64(rng.next_u64() as i64),
        3 => Value::U64(rng.next_u64()),
        4 => Value::F64(f64::from_bits(rng.next_u64())),
        5 => Value::F32(f32::from_bits(rng.next_u64() as u32)),
        6 => {
            let len = rng.index(12);
            let s: String = (0..len)
                .map(|_| char::from(b' ' + (rng.index(95) as u8)))
                .collect();
            Value::Str(s)
        }
        7 => Value::Seq(
            (0..rng.index(5))
                .map(|_| gen_value(rng, depth + 1))
                .collect(),
        ),
        _ => Value::Map(
            (0..rng.index(5))
                .map(|i| (format!("key_{i}"), gen_value(rng, depth + 1)))
                .collect(),
        ),
    }
}

impl Strategy for ValueTreeStrategy {
    type Value = Value;
    fn sample(&self, rng: &mut TestRng) -> Value {
        gen_value(rng, 0)
    }
}

/// Finite floats from scaled integers, so derived `PartialEq` on the
/// decoded struct is an exact comparison.
fn finite(v: i32) -> f64 {
    f64::from(v) * 1e-6
}

fn finite_vec(vs: Vec<i32>) -> Vec<f64> {
    vs.into_iter().map(finite).collect()
}

proptest! {
    #[test]
    fn f64_payloads_round_trip_bit_exactly(
        bits in vec(any::<u64>(), 0..64),
    ) {
        let payload: Vec<f64> = bits.iter().copied().map(f64::from_bits).collect();
        let encoded = encode_snapshot(&payload);
        let decoded: Vec<f64> = decode_snapshot(&encoded).expect("round trip");
        let back: Vec<u64> = decoded.iter().map(|v| v.to_bits()).collect();
        // to_bits comparison: NaN payloads and -0.0 must survive intact
        prop_assert_eq!(back, bits);
    }

    #[test]
    fn value_trees_re_encode_identically(tree in ValueTreeStrategy) {
        let encoded = encode_snapshot(&tree);
        let decoded: Value = decode_snapshot(&encoded).expect("round trip");
        // byte-level idempotence is NaN-proof where tree equality is not
        prop_assert_eq!(encode_snapshot(&decoded), encoded);
    }

    #[test]
    fn mpc_memory_snapshots_round_trip(
        has_controls in any::<bool>(),
        controls in vec((-1_000_000i32..1_000_000, -1_000_000i32..1_000_000), 0..5),
        has_warm in any::<bool>(),
        warm_x in vec(-1_000_000i32..1_000_000, 0..6),
        warm_y in vec(-1_000_000i32..1_000_000, 0..6),
        has_scaling in any::<bool>(),
        scale_d in vec(1i32..1_000_000, 0..4),
        scale_e in vec(1i32..1_000_000, 0..4),
        has_rho in any::<bool>(),
        rho in 1i32..1_000_000,
    ) {
        let snap = MpcMemorySnapshot {
            controls: has_controls.then(|| {
                controls
                    .into_iter()
                    .map(|(a, s)| [finite(a), finite(s)])
                    .collect()
            }),
            warm: has_warm.then(|| QpWarmStart {
                x: finite_vec(warm_x),
                y: finite_vec(warm_y),
            }),
            workspace: QpWorkspaceSnapshot {
                scaling: has_scaling.then(|| (finite_vec(scale_d), finite_vec(scale_e))),
                rho: has_rho.then(|| finite(rho)),
            },
        };
        let encoded = encode_snapshot(&snap);
        let decoded: MpcMemorySnapshot = decode_snapshot(&encoded).expect("round trip");
        prop_assert_eq!(decoded, snap);
    }

    #[test]
    fn single_bit_corruption_is_always_detected(
        bits in vec(any::<u64>(), 0..16),
        pos_sel in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let payload: Vec<f64> = bits.into_iter().map(f64::from_bits).collect();
        let mut bytes = encode_snapshot(&payload);
        let pos = pos_sel % bytes.len();
        bytes[pos] ^= 1 << bit;
        // every byte is load-bearing: magic, version and length are
        // validated, the payload is checksummed, and the checksum field
        // itself must match — so no flip may decode successfully
        prop_assert!(decode_snapshot::<Value>(&bytes).is_err());
    }

    #[test]
    fn truncation_is_always_detected(
        bits in vec(any::<u64>(), 0..16),
        keep_sel in 0usize..1_000_000,
    ) {
        let payload: Vec<f64> = bits.into_iter().map(f64::from_bits).collect();
        let bytes = encode_snapshot(&payload);
        let keep = keep_sel % bytes.len(); // strictly shorter than full
        prop_assert!(decode_snapshot::<Value>(&bytes[..keep]).is_err());
    }

    #[test]
    fn random_byte_soup_never_panics(noise in vec(any::<u8>(), 0..96)) {
        // typed error or (astronomically unlikely) a valid container —
        // the property under test is the absence of panics and of
        // unchecked allocations driven by hostile length fields
        let _ = decode_snapshot::<Value>(&noise);
        let _ = decode_snapshot::<MpcMemorySnapshot>(&noise);
    }
}
