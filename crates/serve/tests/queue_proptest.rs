//! Property tests for the deadline scheduler's core invariants:
//!
//! * **bound** — the queue never holds more than `capacity` items, and a
//!   push fails exactly when it is full;
//! * **priority** — among queued items, `pop` always returns one with
//!   the minimal deadline key;
//! * **no starvation** — every admitted item is eventually popped
//!   exactly once (FIFO among equal deadlines), and nothing is invented
//!   or lost under arbitrary interleavings of pushes and pops.
//!
//! The queue is driven against a naive reference model (a `Vec` scanned
//! for the stable minimum), so any divergence in content or order fails.

use icoil_serve::DeadlineQueue;
use proptest::collection::vec;
use proptest::prelude::*;

/// One scripted operation: `Some((key, id))` pushes (3-in-5 odds so
/// queues actually fill), `None` pops. Keys are drawn from a small range
/// so deadline ties actually occur.
fn op_strategy() -> impl Strategy<Value = Option<(u32, u64)>> {
    (0u32..5, 0u32..16, any::<u64>())
        .prop_map(|(sel, key, id)| if sel < 3 { Some((key, id)) } else { None })
}

/// The reference: a vector popped at the position of the stable minimum
/// key (first-arrived wins among ties, matching the FIFO guarantee).
fn model_pop(model: &mut Vec<(u32, u64)>) -> Option<(u32, u64)> {
    let best = model
        .iter()
        .enumerate()
        .min_by_key(|(i, (key, _))| (*key, *i))
        .map(|(i, _)| i)?;
    Some(model.remove(best))
}

proptest! {
    #[test]
    fn matches_reference_model_and_respects_bound(
        capacity in 1usize..8,
        ops in vec(op_strategy(), 0..200),
    ) {
        let mut queue: DeadlineQueue<u32, u64> = DeadlineQueue::new(capacity);
        let mut model: Vec<(u32, u64)> = Vec::new();
        for op in ops {
            match op {
                Some((key, id)) => {
                    let admitted = queue.push(key, id).is_ok();
                    prop_assert_eq!(
                        admitted,
                        model.len() < capacity,
                        "push must fail exactly when the queue is full"
                    );
                    if admitted {
                        model.push((key, id));
                    }
                }
                None => {
                    prop_assert_eq!(queue.pop(), model_pop(&mut model));
                }
            }
            prop_assert!(queue.len() <= capacity, "bound invariant violated");
            prop_assert_eq!(queue.len(), model.len());
            prop_assert_eq!(queue.is_empty(), model.is_empty());
        }
        // drain: everything admitted comes back out, in model order — no
        // admitted item is ever starved
        while let Some(got) = queue.pop() {
            prop_assert_eq!(Some(got), model_pop(&mut model));
        }
        prop_assert!(model.is_empty(), "queue starved {} admitted items", model.len());
    }

    #[test]
    fn pop_always_returns_a_minimal_ready_deadline(
        keys in vec(0u32..1000, 1..64),
    ) {
        let mut queue: DeadlineQueue<u32, usize> = DeadlineQueue::new(64);
        for (i, &key) in keys.iter().enumerate() {
            queue.push(key, i).unwrap();
        }
        let mut remaining: Vec<Option<u32>> = keys.into_iter().map(Some).collect();
        while let Some((key, id)) = queue.pop() {
            let min = remaining.iter().flatten().min().copied().unwrap();
            prop_assert_eq!(key, min, "popped a non-minimal deadline");
            prop_assert_eq!(remaining[id].take(), Some(key), "item popped twice or corrupted");
        }
        prop_assert!(
            remaining.iter().all(Option::is_none),
            "some admitted items were never popped"
        );
    }

    #[test]
    fn equal_deadlines_drain_fifo(count in 1usize..32) {
        let mut queue: DeadlineQueue<u32, usize> = DeadlineQueue::new(32);
        for i in 0..count {
            queue.push(7, i).unwrap();
        }
        for expected in 0..count {
            prop_assert_eq!(queue.pop(), Some((7, expected)));
        }
        prop_assert!(queue.is_empty());
    }
}
