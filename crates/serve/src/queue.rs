//! A bounded earliest-deadline-first queue.
//!
//! The CO lane's scheduling core, kept pure (no threads, no clocks) so
//! the proptests in `tests/queue_proptest.rs` can drive it directly:
//! the bound, the priority order and the FIFO tie-break are all
//! properties of this structure alone.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One queued item: ordered by `(key, seq)` so equal deadlines drain in
/// arrival (FIFO) order. `BinaryHeap` is a max-heap, so the `Ord`
/// implementation is reversed — the heap root is the *earliest* entry.
struct Entry<K, T> {
    key: K,
    seq: u64,
    item: T,
}

impl<K: Ord, T> PartialEq for Entry<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl<K: Ord, T> Eq for Entry<K, T> {}

impl<K: Ord, T> PartialOrd for Entry<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, T> Ord for Entry<K, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (&other.key, other.seq).cmp(&(&self.key, self.seq))
    }
}

/// A bounded priority queue drained in ascending key order, FIFO among
/// equal keys.
///
/// Keys are deadlines in the CO lane (`std::time::Instant` there, any
/// `Ord + Copy` type here); [`DeadlineQueue::push`] refuses — returning
/// the item so the caller can shed it — rather than grow past the
/// capacity or block.
///
/// # Example
///
/// ```
/// use icoil_serve::DeadlineQueue;
///
/// let mut q: DeadlineQueue<u64, &str> = DeadlineQueue::new(2);
/// assert!(q.push(20, "late").is_ok());
/// assert!(q.push(10, "early").is_ok());
/// assert_eq!(q.push(5, "overflow"), Err("overflow"));
/// assert_eq!(q.pop(), Some((10, "early")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct DeadlineQueue<K: Ord + Copy, T> {
    capacity: usize,
    seq: u64,
    heap: BinaryHeap<Entry<K, T>>,
}

impl<K: Ord + Copy, T> DeadlineQueue<K, T> {
    /// An empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics for a zero capacity (a queue that can only shed).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "DeadlineQueue needs a positive capacity");
        DeadlineQueue {
            capacity,
            seq: 0,
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Admits an item, or returns it unchanged when the queue is full —
    /// admission control, not back-pressure: the caller sheds instead of
    /// blocking.
    ///
    /// # Errors
    ///
    /// `Err(item)` when the queue already holds `capacity` items.
    pub fn push(&mut self, key: K, item: T) -> Result<(), T> {
        if self.heap.len() >= self.capacity {
            return Err(item);
        }
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { key, seq, item });
        Ok(())
    }

    /// Removes and returns the entry with the smallest key (earliest
    /// deadline), FIFO among ties, or `None` when empty.
    pub fn pop(&mut self) -> Option<(K, T)> {
        self.heap.pop().map(|e| (e.key, e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_key_order_fifo_on_ties() {
        let mut q: DeadlineQueue<u32, usize> = DeadlineQueue::new(8);
        for (i, key) in [5u32, 1, 5, 3, 1].into_iter().enumerate() {
            q.push(key, i).unwrap();
        }
        let order: Vec<(u32, usize)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, [(1, 1), (1, 4), (3, 3), (5, 0), (5, 2)]);
    }

    #[test]
    fn full_queue_rejects_without_dropping_queued_items() {
        let mut q: DeadlineQueue<u32, u32> = DeadlineQueue::new(2);
        q.push(1, 10).unwrap();
        q.push(2, 20).unwrap();
        assert_eq!(q.push(0, 30), Err(30), "even an earlier deadline sheds");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((1, 10)));
        assert!(q.push(0, 30).is_ok(), "space reopens after a pop");
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_is_rejected() {
        let _: DeadlineQueue<u32, u32> = DeadlineQueue::new(0);
    }
}
