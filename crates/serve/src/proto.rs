//! The NDJSON wire protocol: one JSON object per line, request then
//! response, mirroring the telemetry `FrameEvent` convention of flat,
//! line-oriented JSON.
//!
//! Requests and responses are plain structs with optional fields rather
//! than tagged enums, so the vendored `serde_derive` subset covers them
//! and clients in any language can build them by hand.

use crate::session::{ServeError, SessionConfig, StepResponse};
use icoil_telemetry::Metrics;
use icoil_world::Difficulty;
use serde::{Deserialize, Serialize};

/// One client request line.
///
/// `op` selects the operation; the other fields are its arguments:
///
/// | `op`        | required fields        |
/// |-------------|------------------------|
/// | `"create"`  | `difficulty`, `seed`   |
/// | `"step"`    | `session`              |
/// | `"close"`   | `session`              |
/// | `"metrics"` | —                      |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Operation name: `"create"`, `"step"`, `"close"` or `"metrics"`.
    pub op: String,
    /// Scenario difficulty for `"create"`.
    #[serde(default)]
    pub difficulty: Option<Difficulty>,
    /// Scenario seed for `"create"`.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Target session id for `"step"` / `"close"`.
    #[serde(default)]
    pub session: Option<u64>,
}

impl Request {
    /// A `"create"` request.
    pub fn create(difficulty: Difficulty, seed: u64) -> Self {
        Request {
            op: "create".to_string(),
            difficulty: Some(difficulty),
            seed: Some(seed),
            session: None,
        }
    }

    /// A `"step"` request.
    pub fn step(session: u64) -> Self {
        Request {
            op: "step".to_string(),
            difficulty: None,
            seed: None,
            session: Some(session),
        }
    }

    /// A `"close"` request.
    pub fn close(session: u64) -> Self {
        Request {
            op: "close".to_string(),
            difficulty: None,
            seed: None,
            session: Some(session),
        }
    }

    /// A `"metrics"` request.
    pub fn metrics() -> Self {
        Request {
            op: "metrics".to_string(),
            difficulty: None,
            seed: None,
            session: None,
        }
    }

    /// The session spec a `"create"` request describes, if complete.
    pub fn session_config(&self) -> Option<SessionConfig> {
        Some(SessionConfig {
            difficulty: self.difficulty?,
            seed: self.seed?,
        })
    }
}

/// One server response line. Exactly one of the payload fields is set on
/// success, matching the request's `op`; on failure `ok` is `false` and
/// `error` holds the reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Failure reason when `ok` is `false`.
    #[serde(default)]
    pub error: Option<String>,
    /// The new session id (`"create"` responses).
    #[serde(default)]
    pub session: Option<u64>,
    /// The served frame (`"step"` responses).
    #[serde(default)]
    pub frame: Option<StepResponse>,
    /// The telemetry snapshot (`"metrics"` responses).
    #[serde(default)]
    pub metrics: Option<Metrics>,
}

impl Response {
    fn empty_ok() -> Self {
        Response {
            ok: true,
            error: None,
            session: None,
            frame: None,
            metrics: None,
        }
    }

    /// A successful `"create"` response.
    pub fn created(session: u64) -> Self {
        Response {
            session: Some(session),
            ..Response::empty_ok()
        }
    }

    /// A successful `"step"` response.
    pub fn stepped(frame: StepResponse) -> Self {
        Response {
            frame: Some(frame),
            ..Response::empty_ok()
        }
    }

    /// A successful `"close"` response.
    pub fn closed() -> Self {
        Response::empty_ok()
    }

    /// A successful `"metrics"` response.
    pub fn with_metrics(metrics: Metrics) -> Self {
        Response {
            metrics: Some(metrics),
            ..Response::empty_ok()
        }
    }

    /// A failure response.
    pub fn failure(message: impl Into<String>) -> Self {
        Response {
            ok: false,
            error: Some(message.into()),
            session: None,
            frame: None,
            metrics: None,
        }
    }
}

impl From<ServeError> for Response {
    fn from(err: ServeError) -> Self {
        Response::failure(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        for req in [
            Request::create(Difficulty::Hard, 42),
            Request::step(7),
            Request::close(7),
            Request::metrics(),
        ] {
            let line = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn hand_written_requests_may_omit_unused_fields() {
        let req: Request =
            serde_json::from_str(r#"{"op":"create","difficulty":"Easy","seed":42}"#).unwrap();
        assert_eq!(req, Request::create(Difficulty::Easy, 42));
        let req: Request = serde_json::from_str(r#"{"op":"step","session":7}"#).unwrap();
        assert_eq!(req, Request::step(7));
        let req: Request = serde_json::from_str(r#"{"op":"metrics"}"#).unwrap();
        assert_eq!(req, Request::metrics());
    }

    #[test]
    fn create_spec_requires_both_fields() {
        let req = Request::create(Difficulty::Easy, 9);
        assert_eq!(
            req.session_config(),
            Some(SessionConfig {
                difficulty: Difficulty::Easy,
                seed: 9
            })
        );
        let partial = Request {
            seed: None,
            ..req
        };
        assert_eq!(partial.session_config(), None);
    }

    #[test]
    fn failure_response_carries_the_error() {
        let resp = Response::from(ServeError::UnknownSession(3));
        assert!(!resp.ok);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.error.as_deref(), Some("unknown session 3"));
    }
}
