//! The NDJSON wire protocol: one JSON object per line, request then
//! response, mirroring the telemetry `FrameEvent` convention of flat,
//! line-oriented JSON.
//!
//! Requests and responses are plain structs with optional fields rather
//! than tagged enums, so the vendored `serde_derive` subset covers them
//! and clients in any language can build them by hand.

use crate::session::{ServeError, SessionConfig, StepResponse};
use icoil_telemetry::Metrics;
use icoil_world::Difficulty;
use serde::{Deserialize, Serialize};

/// One client request line.
///
/// `op` selects the operation; the other fields are its arguments:
///
/// | `op`         | required fields        |
/// |--------------|------------------------|
/// | `"create"`   | `difficulty`, `seed`   |
/// | `"step"`     | `session`              |
/// | `"close"`    | `session`              |
/// | `"snapshot"` | `session`              |
/// | `"evict"`    | `session`              |
/// | `"restore"`  | `snapshot`             |
/// | `"metrics"`  | —                      |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Operation name: `"create"`, `"step"`, `"close"`, `"snapshot"`,
    /// `"evict"`, `"restore"` or `"metrics"`.
    pub op: String,
    /// Scenario difficulty for `"create"`.
    #[serde(default)]
    pub difficulty: Option<Difficulty>,
    /// Scenario seed for `"create"`.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Target session id for `"step"` / `"close"` / `"snapshot"` /
    /// `"evict"`.
    #[serde(default)]
    pub session: Option<u64>,
    /// Hex-encoded snapshot bytes for `"restore"` (the binary snapshot
    /// container can't ride NDJSON raw).
    #[serde(default)]
    pub snapshot: Option<String>,
}

impl Request {
    fn blank(op: &str) -> Self {
        Request {
            op: op.to_string(),
            difficulty: None,
            seed: None,
            session: None,
            snapshot: None,
        }
    }

    /// A `"create"` request.
    pub fn create(difficulty: Difficulty, seed: u64) -> Self {
        Request {
            difficulty: Some(difficulty),
            seed: Some(seed),
            ..Request::blank("create")
        }
    }

    /// A `"step"` request.
    pub fn step(session: u64) -> Self {
        Request {
            session: Some(session),
            ..Request::blank("step")
        }
    }

    /// A `"close"` request.
    pub fn close(session: u64) -> Self {
        Request {
            session: Some(session),
            ..Request::blank("close")
        }
    }

    /// A `"snapshot"` request (serialize a session without removing it).
    pub fn snapshot(session: u64) -> Self {
        Request {
            session: Some(session),
            ..Request::blank("snapshot")
        }
    }

    /// An `"evict"` request (serialize and remove a session).
    pub fn evict(session: u64) -> Self {
        Request {
            session: Some(session),
            ..Request::blank("evict")
        }
    }

    /// A `"restore"` request from raw snapshot bytes.
    pub fn restore(snapshot_bytes: &[u8]) -> Self {
        Request {
            snapshot: Some(hex_encode(snapshot_bytes)),
            ..Request::blank("restore")
        }
    }

    /// A `"metrics"` request.
    pub fn metrics() -> Self {
        Request::blank("metrics")
    }

    /// The session spec a `"create"` request describes, if complete.
    pub fn session_config(&self) -> Option<SessionConfig> {
        Some(SessionConfig {
            difficulty: self.difficulty?,
            seed: self.seed?,
        })
    }

    /// The snapshot bytes a `"restore"` request carries, if present and
    /// well-formed hex.
    pub fn snapshot_bytes(&self) -> Option<Vec<u8>> {
        hex_decode(self.snapshot.as_deref()?)
    }
}

/// Lowercase-hex encoding of arbitrary bytes (the snapshot transport on
/// the NDJSON wire).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
    }
    out
}

/// Inverse of [`hex_encode`]; `None` for odd length or non-hex digits.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u8> = s
        .chars()
        .map(|c| c.to_digit(16).map(|d| d as u8))
        .collect::<Option<_>>()?;
    Some(digits.chunks_exact(2).map(|p| (p[0] << 4) | p[1]).collect())
}

/// One server response line. Exactly one of the payload fields is set on
/// success, matching the request's `op`; on failure `ok` is `false` and
/// `error` holds the reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Failure reason when `ok` is `false`.
    #[serde(default)]
    pub error: Option<String>,
    /// The new session id (`"create"` responses).
    #[serde(default)]
    pub session: Option<u64>,
    /// The served frame (`"step"` responses).
    #[serde(default)]
    pub frame: Option<StepResponse>,
    /// The telemetry snapshot (`"metrics"` responses).
    #[serde(default)]
    pub metrics: Option<Metrics>,
    /// Hex-encoded session snapshot bytes (`"snapshot"` / `"evict"`
    /// responses).
    #[serde(default)]
    pub snapshot: Option<String>,
    /// The server's active IL-lane precision, `"f32"` or `"int8"`
    /// (`"metrics"` responses).
    #[serde(default)]
    pub il_precision: Option<String>,
    /// The SIMD kernel backend the IL lane dispatches to, e.g. `"avx2"`
    /// or `"scalar"` (`"metrics"` responses).
    #[serde(default)]
    pub kernel_backend: Option<String>,
}

impl Response {
    fn empty_ok() -> Self {
        Response {
            ok: true,
            error: None,
            session: None,
            frame: None,
            metrics: None,
            snapshot: None,
            il_precision: None,
            kernel_backend: None,
        }
    }

    /// A successful `"create"` response.
    pub fn created(session: u64) -> Self {
        Response {
            session: Some(session),
            ..Response::empty_ok()
        }
    }

    /// A successful `"step"` response.
    pub fn stepped(frame: StepResponse) -> Self {
        Response {
            frame: Some(frame),
            ..Response::empty_ok()
        }
    }

    /// A successful `"close"` response.
    pub fn closed() -> Self {
        Response::empty_ok()
    }

    /// A successful `"metrics"` response, stamped with the serving
    /// precision and the active SIMD kernel backend so a remote client
    /// can tell which inference lane its numbers came from.
    pub fn with_metrics(
        metrics: Metrics,
        il_precision: &str,
        kernel_backend: &str,
    ) -> Self {
        Response {
            metrics: Some(metrics),
            il_precision: Some(il_precision.to_string()),
            kernel_backend: Some(kernel_backend.to_string()),
            ..Response::empty_ok()
        }
    }

    /// A successful `"snapshot"` / `"evict"` response.
    pub fn with_snapshot(bytes: &[u8]) -> Self {
        Response {
            snapshot: Some(hex_encode(bytes)),
            ..Response::empty_ok()
        }
    }

    /// A successful `"restore"` response (the restored session's id).
    pub fn restored(session: u64) -> Self {
        Response {
            session: Some(session),
            ..Response::empty_ok()
        }
    }

    /// A failure response.
    pub fn failure(message: impl Into<String>) -> Self {
        Response {
            ok: false,
            error: Some(message.into()),
            ..Response::empty_ok()
        }
    }
}

impl From<ServeError> for Response {
    fn from(err: ServeError) -> Self {
        Response::failure(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        for req in [
            Request::create(Difficulty::Hard, 42),
            Request::step(7),
            Request::close(7),
            Request::snapshot(7),
            Request::evict(7),
            Request::restore(&[0x49, 0x43, 0x00, 0xff]),
            Request::metrics(),
        ] {
            let line = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)), Some(bytes));
        assert_eq!(hex_decode(""), Some(Vec::new()));
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex digit");
        let req = Request::restore(&[0xde, 0xad]);
        assert_eq!(req.snapshot_bytes(), Some(vec![0xde, 0xad]));
    }

    #[test]
    fn hand_written_requests_may_omit_unused_fields() {
        let req: Request =
            serde_json::from_str(r#"{"op":"create","difficulty":"Easy","seed":42}"#).unwrap();
        assert_eq!(req, Request::create(Difficulty::Easy, 42));
        let req: Request = serde_json::from_str(r#"{"op":"step","session":7}"#).unwrap();
        assert_eq!(req, Request::step(7));
        let req: Request = serde_json::from_str(r#"{"op":"metrics"}"#).unwrap();
        assert_eq!(req, Request::metrics());
    }

    #[test]
    fn create_spec_requires_both_fields() {
        let req = Request::create(Difficulty::Easy, 9);
        assert_eq!(
            req.session_config(),
            Some(SessionConfig {
                difficulty: Difficulty::Easy,
                seed: 9
            })
        );
        let partial = Request {
            seed: None,
            ..req
        };
        assert_eq!(partial.session_config(), None);
    }

    #[test]
    fn failure_response_carries_the_error() {
        let resp = Response::from(ServeError::UnknownSession(3));
        assert!(!resp.ok);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.error.as_deref(), Some("unknown session 3"));
    }
}
