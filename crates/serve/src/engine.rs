//! The serving engine: a command loop that owns every session, batches
//! the IL lane, and dispatches CO solves to a deadline-ordered worker
//! pool.
//!
//! Threading model: one engine thread owns the session table outright —
//! commands arrive over an mpsc channel, so session state is never
//! behind a lock. A session whose frame needs a CO solve is *moved*
//! (world, HSA window, warm-start memory and all) into the lane job;
//! the worker replies to the client directly and mails the session back
//! to the engine as a [`Command::CoDone`]. Step requests that land
//! while a session is in flight are deferred and replayed in arrival
//! order when it returns.

use crate::queue::DeadlineQueue;
use crate::session::{ServeError, Session, SessionConfig, StepResponse};
use crate::ServeConfig;
use icoil_co::CoOutput;
use icoil_hsa::{HsaDecision, Mode};
use icoil_il::IlModel;
use icoil_perception::{BevImage, Sensing};
use icoil_telemetry::{Counter, Metrics, Series};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Reply<T> = Sender<Result<T, ServeError>>;

enum Command {
    Create {
        spec: SessionConfig,
        reply: Reply<u64>,
    },
    Step {
        id: u64,
        reply: Reply<StepResponse>,
    },
    Close {
        id: u64,
        reply: Reply<()>,
    },
    Metrics {
        reply: Sender<Metrics>,
    },
    CoDone {
        session: Box<Session>,
        latency_s: f64,
        shed: bool,
    },
    Shutdown,
}

/// A CO-lane work item: the session itself plus everything its solve
/// frame needs. Deadline-keyed in the queue.
struct CoJob {
    session: Box<Session>,
    sensing: Sensing,
    hsa: HsaDecision,
    reply: Reply<StepResponse>,
    t0: Instant,
    deadline: Instant,
}

struct LaneState {
    queue: DeadlineQueue<Instant, Box<CoJob>>,
    closed: bool,
}

/// The shared CO lane: a bounded earliest-deadline queue behind one
/// mutex (jobs are coarse — a full path + MPC solve — so the lock is
/// never contended for long) plus a condvar waking idle workers.
struct Lane {
    state: Mutex<LaneState>,
    ready: Condvar,
}

impl Lane {
    fn new(capacity: usize) -> Self {
        Lane {
            state: Mutex::new(LaneState {
                queue: DeadlineQueue::new(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits a job or returns it when the queue is full (the caller
    /// sheds). Never blocks.
    fn submit(&self, job: Box<CoJob>) -> Result<(), Box<CoJob>> {
        let mut state = self.state.lock().expect("lane lock");
        if state.closed {
            return Err(job);
        }
        state.queue.push(job.deadline, job)?;
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    fn len(&self) -> usize {
        self.state.lock().expect("lane lock").queue.len()
    }

    /// Blocks until a job is available (earliest deadline first) or the
    /// lane is closed *and* drained — queued jobs are always finished,
    /// never dropped.
    fn pop_blocking(&self) -> Option<Box<CoJob>> {
        let mut state = self.state.lock().expect("lane lock");
        loop {
            if let Some((_, job)) = state.queue.pop() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("lane lock");
        }
    }

    /// Takes the next job if one is queued, never blocking — how a
    /// worker tops up its batch after the blocking first pop.
    fn try_pop(&self) -> Option<Box<CoJob>> {
        self.state
            .lock()
            .expect("lane lock")
            .queue
            .pop()
            .map(|(_, job)| job)
    }

    fn close(&self) {
        self.state.lock().expect("lane lock").closed = true;
        self.ready.notify_all();
    }
}

/// A CO worker: drains up to `co_batch` earliest-deadline jobs, sheds
/// the expired ones, solves the rest as one block-diagonal batched
/// program, then replies to each client and mails each session back to
/// the engine. The batched solve is bit-identical per session to a solo
/// solve, so batch composition never changes a trajectory. A panic
/// inside the batched solve falls back to per-job solo solves (each
/// itself panic-caught and degraded to the full-brake response), so one
/// poisoned scenario cannot take its batchmates — let alone the
/// server — down.
fn worker_loop(lane: Arc<Lane>, done: Sender<Command>, co_batch: usize) {
    while let Some(first) = lane.pop_blocking() {
        // top up the batch without blocking: under load this packs the
        // deadline queue's head into one shared factorization pass,
        // while an idle lane degrades to job-at-a-time service
        let mut jobs: Vec<Box<CoJob>> = vec![first];
        while jobs.len() < co_batch.max(1) {
            match lane.try_pop() {
                Some(job) => jobs.push(job),
                None => break,
            }
        }
        // shed decisions first, at the same point a solo worker would
        // make them: an expired job never consumes solve budget
        let mut outs: Vec<Option<(CoOutput, bool)>> = jobs
            .iter()
            .map(|job| {
                (Instant::now() > job.deadline).then(|| (CoOutput::degraded_brake(), true))
            })
            .collect();
        let live: Vec<usize> = (0..jobs.len()).filter(|&i| outs[i].is_none()).collect();
        if !live.is_empty() {
            let mut batch_jobs: Vec<(&mut Session, &Sensing)> = jobs
                .iter_mut()
                .zip(&outs)
                .filter(|(_, out)| out.is_none())
                .map(|(job, _)| {
                    let job = &mut **job;
                    (&mut *job.session, &job.sensing)
                })
                .collect();
            let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::session::solve_co_batch(&mut batch_jobs)
            }));
            drop(batch_jobs);
            match solved {
                Ok(results) => {
                    for (&i, out) in live.iter().zip(results) {
                        outs[i] = Some((out, false));
                    }
                }
                Err(_) => {
                    // a panic mid-batch leaves no way to tell the healthy
                    // jobs from the poisoned one: re-solve each alone,
                    // catching (and degrading) the one that panics again
                    for &i in &live {
                        let job = &mut *jobs[i];
                        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            job.session.solve_co(&job.sensing)
                        }));
                        outs[i] = Some(match solved {
                            Ok(out) => (out, false),
                            Err(_) => (CoOutput::degraded_brake(), false),
                        });
                    }
                }
            }
        }
        let mut done_ok = true;
        for (job, out) in jobs.into_iter().zip(outs) {
            let CoJob {
                mut session,
                hsa,
                reply,
                t0,
                ..
            } = *job;
            let (out, shed) = out.expect("every drained job resolves");
            let resp = session.advance(out.action, &hsa, Some(&out), shed);
            let latency_s = t0.elapsed().as_secs_f64();
            // mail the session home BEFORE replying: commands and CoDone
            // share one FIFO channel, so a client that has seen this reply
            // is guaranteed the engine settles this frame's bookkeeping
            // (shed counters, in-flight state) before processing any
            // command the client sends afterwards — e.g. a metrics snapshot
            done_ok &= done
                .send(Command::CoDone {
                    session,
                    latency_s,
                    shed,
                })
                .is_ok();
            let _ = reply.send(Ok(resp));
        }
        if !done_ok {
            break;
        }
    }
}

/// A step request drained from the channel, sensed and awaiting the IL
/// micro-batch.
struct PendingStep {
    session: Session,
    sensing: Sensing,
    reply: Reply<StepResponse>,
    t0: Instant,
}

struct Engine {
    config: ServeConfig,
    model: IlModel,
    rx: Receiver<Command>,
    lane: Arc<Lane>,
    workers: Vec<JoinHandle<()>>,
    sessions: HashMap<u64, Session>,
    in_flight: HashSet<u64>,
    deferred: HashMap<u64, VecDeque<Reply<StepResponse>>>,
    pending_close: HashMap<u64, Vec<Reply<()>>>,
    backlog: VecDeque<Command>,
    next_id: u64,
    metrics: Metrics,
    shutting_down: bool,
}

impl Engine {
    fn run(mut self) {
        loop {
            // one blocking command starts the tick; everything already
            // queued behind it joins the same IL micro-batch
            let first = match self.backlog.pop_front() {
                Some(cmd) => cmd,
                None => match self.rx.recv() {
                    Ok(cmd) => cmd,
                    Err(_) => break,
                },
            };
            let mut steps: Vec<PendingStep> = Vec::new();
            self.dispatch(first, &mut steps);
            while steps.len() < self.config.max_batch {
                match self.rx.try_recv() {
                    Ok(cmd) => self.dispatch(cmd, &mut steps),
                    Err(_) => break,
                }
            }
            if !steps.is_empty() {
                self.run_batch(steps);
            }
            if self.shutting_down && self.in_flight.is_empty() {
                break;
            }
        }
        self.lane.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn dispatch(&mut self, cmd: Command, steps: &mut Vec<PendingStep>) {
        match cmd {
            Command::Create { spec, reply } => {
                if self.shutting_down {
                    let _ = reply.send(Err(ServeError::ShuttingDown));
                } else if self.sessions.len() + self.in_flight.len() >= self.config.max_sessions {
                    let _ = reply.send(Err(ServeError::SessionLimit));
                } else {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.sessions.insert(id, Session::new(id, &self.config, &spec));
                    self.metrics.add(Counter::ServeSessions, 1);
                    let _ = reply.send(Ok(id));
                }
            }
            Command::Step { id, reply } => {
                if self.shutting_down {
                    let _ = reply.send(Err(ServeError::ShuttingDown));
                    return;
                }
                if self.in_flight.contains(&id) {
                    self.deferred.entry(id).or_default().push_back(reply);
                    return;
                }
                let Some(mut session) = self.sessions.remove(&id) else {
                    let _ = reply.send(Err(ServeError::UnknownSession(id)));
                    return;
                };
                if session.is_done() {
                    let resp = session.terminal_response();
                    self.sessions.insert(id, session);
                    let _ = reply.send(Ok(resp));
                    return;
                }
                let t0 = Instant::now();
                let sensing = session.sense();
                steps.push(PendingStep {
                    session,
                    sensing,
                    reply,
                    t0,
                });
            }
            Command::Close { id, reply } => {
                if self.in_flight.contains(&id) {
                    self.pending_close.entry(id).or_default().push(reply);
                } else if self.sessions.remove(&id).is_some() {
                    let _ = reply.send(Ok(()));
                } else {
                    let _ = reply.send(Err(ServeError::UnknownSession(id)));
                }
            }
            Command::Metrics { reply } => {
                let _ = reply.send(self.metrics.clone());
            }
            Command::CoDone {
                session,
                latency_s,
                shed,
            } => {
                let id = session.id;
                self.in_flight.remove(&id);
                self.metrics.observe(Series::ServeCoLane, latency_s);
                if shed {
                    self.metrics.add(Counter::CoShed, 1);
                }
                if let Some(replies) = self.pending_close.remove(&id) {
                    // the client closed the session mid-flight: drop it
                    for r in replies {
                        let _ = r.send(Ok(()));
                    }
                    if let Some(queue) = self.deferred.remove(&id) {
                        for r in queue {
                            let _ = r.send(Err(ServeError::UnknownSession(id)));
                        }
                    }
                    return;
                }
                self.sessions.insert(id, *session);
                if let Some(mut queue) = self.deferred.remove(&id) {
                    while let Some(reply) = queue.pop_front() {
                        self.backlog.push_back(Command::Step { id, reply });
                    }
                }
            }
            Command::Shutdown => {
                self.shutting_down = true;
            }
        }
    }

    /// One engine tick over the drained step requests: a single blocked
    /// IL pass over every pending frame (the HSA needs the softmax on
    /// every frame regardless of mode), then per-session HSA decisions —
    /// IL-mode frames finish inline, CO-mode frames go to the lane.
    fn run_batch(&mut self, steps: Vec<PendingStep>) {
        let bevs: Vec<&BevImage> = steps.iter().map(|s| &s.sensing.bev).collect();
        let il_results = self.model.infer_batch(&bevs);
        self.metrics.add(Counter::IlBatches, 1);
        self.metrics.observe(Series::IlBatchSize, bevs.len() as f64);
        drop(bevs);
        for (mut step, il) in steps.into_iter().zip(il_results) {
            let hsa = step.session.plan(&il.probs, &step.sensing);
            match hsa.mode {
                Mode::Il => {
                    let resp = step.session.advance(il.action, &hsa, None, false);
                    self.metrics
                        .observe(Series::ServeIlLane, step.t0.elapsed().as_secs_f64());
                    self.sessions.insert(step.session.id, step.session);
                    let _ = step.reply.send(Ok(resp));
                }
                Mode::Co => {
                    let id = step.session.id;
                    self.metrics
                        .observe(Series::CoQueueDepth, self.lane.len() as f64);
                    let job = Box::new(CoJob {
                        session: Box::new(step.session),
                        sensing: step.sensing,
                        hsa,
                        reply: step.reply,
                        t0: step.t0,
                        deadline: Instant::now() + self.config.co_deadline,
                    });
                    match self.lane.submit(job) {
                        Ok(()) => {
                            self.metrics.add(Counter::CoAdmitted, 1);
                            self.in_flight.insert(id);
                        }
                        Err(job) => {
                            // admission control: the queue is full, shed
                            // now rather than block the engine
                            let CoJob {
                                mut session,
                                hsa,
                                reply,
                                t0,
                                ..
                            } = *job;
                            let out = CoOutput::degraded_brake();
                            let resp = session.advance(out.action, &hsa, Some(&out), true);
                            self.metrics.add(Counter::CoShed, 1);
                            self.metrics
                                .observe(Series::ServeCoLane, t0.elapsed().as_secs_f64());
                            self.sessions.insert(id, *session);
                            let _ = reply.send(Ok(resp));
                        }
                    }
                }
            }
        }
    }
}

/// A running policy server: owns the engine thread. Dropping (or
/// calling [`Serve::shutdown`]) drains in-flight solves, stops the
/// workers and joins everything.
pub struct Serve {
    handle: ServeHandle,
    engine: Option<JoinHandle<()>>,
}

impl Serve {
    /// Starts the engine and CO worker threads.
    ///
    /// `model` is the IL network every session shares (weights are
    /// read-only at serve time; activations live in engine-owned
    /// buffers).
    ///
    /// # Panics
    ///
    /// Panics when a thread cannot be spawned.
    pub fn start(config: ServeConfig, model: IlModel) -> Serve {
        let (tx, rx) = channel();
        let lane = Arc::new(Lane::new(config.queue_capacity));
        let co_batch = config.co_batch;
        let workers = (0..config.co_workers.max(1))
            .map(|i| {
                let lane = Arc::clone(&lane);
                let done = tx.clone();
                std::thread::Builder::new()
                    .name(format!("icoil-co-{i}"))
                    .spawn(move || worker_loop(lane, done, co_batch))
                    .expect("spawn CO lane worker")
            })
            .collect();
        let engine = Engine {
            config,
            model,
            rx,
            lane,
            workers,
            sessions: HashMap::new(),
            in_flight: HashSet::new(),
            deferred: HashMap::new(),
            pending_close: HashMap::new(),
            backlog: VecDeque::new(),
            next_id: 1,
            metrics: Metrics::new(),
            shutting_down: false,
        };
        let engine = std::thread::Builder::new()
            .name("icoil-serve".to_string())
            .spawn(move || engine.run())
            .expect("spawn serve engine");
        Serve {
            handle: ServeHandle { tx },
            engine: Some(engine),
        }
    }

    /// A client handle; clone freely across threads and connections.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Stops accepting work, drains in-flight CO solves, and joins the
    /// engine and worker threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(engine) = self.engine.take() {
            let _ = self.handle.tx.send(Command::Shutdown);
            let _ = engine.join();
        }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The in-process client API: every method is a blocking round-trip to
/// the engine thread. Tests and the bench harness use this directly;
/// the TCP front end is one more caller of the same handle.
#[derive(Clone)]
pub struct ServeHandle {
    tx: Sender<Command>,
}

impl ServeHandle {
    fn request<T>(&self, make: impl FnOnce(Reply<T>) -> Command) -> Result<T, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(make(reply))
            .map_err(|_| ServeError::Disconnected)?;
        rx.recv().map_err(|_| ServeError::Disconnected)?
    }

    /// Opens a session; returns its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionLimit`] at capacity,
    /// [`ServeError::ShuttingDown`] / [`ServeError::Disconnected`]
    /// around shutdown.
    pub fn create(&self, spec: SessionConfig) -> Result<u64, ServeError> {
        self.request(|reply| Command::Create { spec, reply })
    }

    /// Advances a session one frame and returns the served action and
    /// resulting state. Stepping a finished episode reports the terminal
    /// state again without advancing.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead id, shutdown errors as
    /// on [`ServeHandle::create`].
    pub fn step(&self, id: u64) -> Result<StepResponse, ServeError> {
        self.request(|reply| Command::Step { id, reply })
    }

    /// Steps many sessions "concurrently" from one caller: all requests
    /// are enqueued before any reply is awaited, so they land in the
    /// same engine tick and share one IL micro-batch. Results are in
    /// input order.
    pub fn step_many(&self, ids: &[u64]) -> Vec<Result<StepResponse, ServeError>> {
        let receivers: Vec<_> = ids
            .iter()
            .map(|&id| {
                let (reply, rx) = channel();
                self.tx
                    .send(Command::Step { id, reply })
                    .ok()
                    .map(|_| rx)
            })
            .collect();
        receivers
            .into_iter()
            .map(|rx| match rx {
                None => Err(ServeError::Disconnected),
                Some(rx) => rx
                    .recv()
                    .map_err(|_| ServeError::Disconnected)
                    .and_then(|r| r),
            })
            .collect()
    }

    /// Closes a session, releasing its state. A session in flight on
    /// the CO lane is released as soon as its solve lands.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead id.
    pub fn close(&self, id: u64) -> Result<(), ServeError> {
        self.request(|reply| Command::Close { id, reply })
    }

    /// A snapshot of the server's telemetry (lane counters, batch-size
    /// and latency histograms).
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] after shutdown.
    pub fn metrics(&self) -> Result<Metrics, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(Command::Metrics { reply })
            .map_err(|_| ServeError::Disconnected)?;
        rx.recv().map_err(|_| ServeError::Disconnected)
    }
}
