//! The serving engine: N shard threads owning disjoint session sets,
//! each micro-batching its own IL lane, all feeding one deadline-ordered
//! CO worker pool.
//!
//! Threading model: sessions are pinned to shards by consistent hashing
//! on the session id ([`ShardRouter`]), and each shard thread owns its
//! session table outright — commands arrive over a per-shard mpsc
//! channel, so session state is never behind a lock. A session whose
//! frame needs a CO solve is *moved* (world, HSA window, warm-start
//! memory and all) into the lane job; the worker replies to the client
//! directly and mails the session back to its home shard as a
//! [`Command::CoDone`]. Requests that land while a session is in flight
//! are deferred and replayed in arrival order when it returns.
//!
//! Shard assignment is invisible to the computation: shards share no
//! per-session state, so trajectories are bit-identical at any shard
//! count. Checkpoint/restore rides the same command loop — a snapshot
//! is taken between frames on the owning shard, and a restore may land
//! on any shard of any process.

use crate::queue::DeadlineQueue;
use crate::session::{ServeError, Session, SessionSnapshot, SessionSpec, StepResponse};
use crate::shard::ShardRouter;
use crate::snapshot::{decode_snapshot, encode_snapshot};
use crate::ServeConfig;
use icoil_adapt::{SafetyProjector, WeightStore};
use icoil_co::CoOutput;
use icoil_hsa::{HsaDecision, Mode};
use icoil_il::{IlModel, IlPrecision, InferResult};
use icoil_perception::{BevImage, Perception, Sensing};
use icoil_telemetry::{Counter, Metrics, Series};
use icoil_vehicle::Action;
use icoil_world::episode::Observation;
use icoil_world::{Difficulty, ScenarioConfig, World};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Reply<T> = Sender<Result<T, ServeError>>;

enum Command {
    Create {
        id: u64,
        spec: Box<SessionSpec>,
        reply: Reply<u64>,
    },
    Step {
        id: u64,
        reply: Reply<StepResponse>,
    },
    Close {
        id: u64,
        reply: Reply<()>,
    },
    Snapshot {
        id: u64,
        reply: Reply<Vec<u8>>,
    },
    Evict {
        id: u64,
        reply: Reply<Vec<u8>>,
    },
    Restore {
        snapshot: Box<SessionSnapshot>,
        reply: Reply<u64>,
    },
    Metrics {
        reply: Sender<Metrics>,
    },
    CoDone {
        session: Box<Session>,
        latency_s: f64,
        shed: bool,
    },
    Shutdown,
}

impl Command {
    /// Answers a command's reply channel with an error — how deferred
    /// commands are settled when their session vanishes mid-flight.
    fn reject(self, err: ServeError) {
        match self {
            Command::Create { reply, .. } => {
                let _ = reply.send(Err(err));
            }
            Command::Step { reply, .. } => {
                let _ = reply.send(Err(err));
            }
            Command::Close { reply, .. } => {
                let _ = reply.send(Err(err));
            }
            Command::Snapshot { reply, .. } => {
                let _ = reply.send(Err(err));
            }
            Command::Evict { reply, .. } => {
                let _ = reply.send(Err(err));
            }
            Command::Restore { reply, .. } => {
                let _ = reply.send(Err(err));
            }
            Command::Metrics { .. } | Command::CoDone { .. } | Command::Shutdown => {}
        }
    }
}

/// A CO-lane work item: the session itself plus everything its solve
/// frame needs. Deadline-keyed in the queue; `home` is the owning
/// shard's command channel (the lane is shared by every shard).
struct CoJob {
    session: Box<Session>,
    sensing: Sensing,
    hsa: HsaDecision,
    reply: Reply<StepResponse>,
    t0: Instant,
    deadline: Instant,
    home: Sender<Command>,
}

struct LaneState {
    queue: DeadlineQueue<Instant, Box<CoJob>>,
    closed: bool,
}

/// The shared CO lane: a bounded earliest-deadline queue behind one
/// mutex (jobs are coarse — a full path + MPC solve — so the lock is
/// never contended for long) plus a condvar waking idle workers.
struct Lane {
    state: Mutex<LaneState>,
    ready: Condvar,
}

impl Lane {
    fn new(capacity: usize) -> Self {
        Lane {
            state: Mutex::new(LaneState {
                queue: DeadlineQueue::new(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits a job or returns it when the queue is full (the caller
    /// sheds). Never blocks.
    fn submit(&self, job: Box<CoJob>) -> Result<(), Box<CoJob>> {
        let mut state = self.state.lock().expect("lane lock");
        if state.closed {
            return Err(job);
        }
        state.queue.push(job.deadline, job)?;
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    fn len(&self) -> usize {
        self.state.lock().expect("lane lock").queue.len()
    }

    /// Blocks until a job is available (earliest deadline first) or the
    /// lane is closed *and* drained — queued jobs are always finished,
    /// never dropped.
    fn pop_blocking(&self) -> Option<Box<CoJob>> {
        let mut state = self.state.lock().expect("lane lock");
        loop {
            if let Some((_, job)) = state.queue.pop() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("lane lock");
        }
    }

    /// Takes the next job if one is queued, never blocking — how a
    /// worker tops up its batch after the blocking first pop.
    fn try_pop(&self) -> Option<Box<CoJob>> {
        self.state
            .lock()
            .expect("lane lock")
            .queue
            .pop()
            .map(|(_, job)| job)
    }

    fn close(&self) {
        self.state.lock().expect("lane lock").closed = true;
        self.ready.notify_all();
    }
}

/// A CO worker: drains up to `co_batch` earliest-deadline jobs, sheds
/// the expired ones, solves the rest as one block-diagonal batched
/// program, then replies to each client and mails each session back to
/// its home shard. The batched solve is bit-identical per session to a
/// solo solve, so batch composition — which may mix sessions from
/// different shards — never changes a trajectory. A panic inside the
/// batched solve falls back to per-job solo solves (each itself
/// panic-caught and degraded to the full-brake response), so one
/// poisoned scenario cannot take its batchmates — let alone the
/// server — down.
fn worker_loop(lane: Arc<Lane>, co_batch: usize) {
    while let Some(first) = lane.pop_blocking() {
        // top up the batch without blocking: under load this packs the
        // deadline queue's head into one shared factorization pass,
        // while an idle lane degrades to job-at-a-time service
        let mut jobs: Vec<Box<CoJob>> = vec![first];
        while jobs.len() < co_batch.max(1) {
            match lane.try_pop() {
                Some(job) => jobs.push(job),
                None => break,
            }
        }
        // shed decisions first, at the same point a solo worker would
        // make them: an expired job never consumes solve budget
        let mut outs: Vec<Option<(CoOutput, bool)>> = jobs
            .iter()
            .map(|job| {
                (Instant::now() > job.deadline).then(|| (CoOutput::degraded_brake(), true))
            })
            .collect();
        let live: Vec<usize> = (0..jobs.len()).filter(|&i| outs[i].is_none()).collect();
        if !live.is_empty() {
            let mut batch_jobs: Vec<(&mut Session, &Sensing)> = jobs
                .iter_mut()
                .zip(&outs)
                .filter(|(_, out)| out.is_none())
                .map(|(job, _)| {
                    let job = &mut **job;
                    (&mut *job.session, &job.sensing)
                })
                .collect();
            let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::session::solve_co_batch(&mut batch_jobs)
            }));
            drop(batch_jobs);
            match solved {
                Ok(results) => {
                    for (&i, out) in live.iter().zip(results) {
                        outs[i] = Some((out, false));
                    }
                }
                Err(_) => {
                    // a panic mid-batch leaves no way to tell the healthy
                    // jobs from the poisoned one: re-solve each alone,
                    // catching (and degrading) the one that panics again
                    for &i in &live {
                        let job = &mut *jobs[i];
                        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            job.session.solve_co(&job.sensing)
                        }));
                        outs[i] = Some(match solved {
                            Ok(out) => (out, false),
                            Err(_) => (CoOutput::degraded_brake(), false),
                        });
                    }
                }
            }
        }
        for (job, out) in jobs.into_iter().zip(outs) {
            let CoJob {
                mut session,
                hsa,
                reply,
                t0,
                home,
                ..
            } = *job;
            let (out, shed) = out.expect("every drained job resolves");
            let resp = session.advance(out.action, &hsa, Some(&out), shed);
            let latency_s = t0.elapsed().as_secs_f64();
            // mail the session home BEFORE replying: commands and CoDone
            // share the shard's FIFO channel, so a client that has seen
            // this reply is guaranteed the shard settles this frame's
            // bookkeeping (shed counters, in-flight state) before
            // processing any command the client sends afterwards — e.g.
            // a metrics or snapshot request
            let _ = home.send(Command::CoDone {
                session,
                latency_s,
                shed,
            });
            let _ = reply.send(Ok(resp));
        }
    }
}

/// The fixed BEV frame set the server calibrates int8 quantization on:
/// a few stepped frames from seeded scenarios cycling every difficulty
/// tier, rendered through the config's own perception pipeline. Purely
/// a function of `config.icoil`, so every shard of every process
/// derives the identical activation scales — a session migrated across
/// servers meets the same quantized network on both sides.
pub(crate) fn calibration_frames(config: &ServeConfig) -> Vec<BevImage> {
    let mut frames = Vec::new();
    for (tier, difficulty) in Difficulty::ALL.into_iter().enumerate() {
        for seed in 0..3u64 {
            let scenario = ScenarioConfig::new(difficulty, 100 + 10 * tier as u64 + seed).build();
            let mut perception = Perception::new(config.icoil.bev, &scenario);
            let mut world = World::new(scenario);
            for _ in 0..4 {
                let sensing = perception.observe(&Observation::new(&world));
                frames.push(sensing.bev);
                world.step(&Action::forward(0.3, 0.05));
            }
        }
    }
    frames
}

/// Calibrates `model` for the int8 lane on the deterministic
/// [`calibration_frames`] set.
fn calibrate_model(config: &ServeConfig, model: &mut IlModel) {
    let frames = calibration_frames(config);
    let refs: Vec<&BevImage> = frames.iter().collect();
    model.calibrate_int8(&refs);
}

/// A step request drained from the channel, sensed and awaiting the IL
/// micro-batch.
struct PendingStep {
    session: Session,
    sensing: Sensing,
    reply: Reply<StepResponse>,
    t0: Instant,
}

/// One engine shard: owns the sessions routed to it, runs their IL
/// micro-batches, and submits their CO solves to the shared lane.
struct Shard {
    config: ServeConfig,
    /// Backstop session cap (the global limit; the handle enforces it
    /// *before* routing, so under hash skew one shard may legitimately
    /// hold most of it).
    limit: usize,
    /// The shared versioned weight store new sessions pin from.
    store: Arc<WeightStore>,
    /// Generations this shard has materialized (cloned out of the
    /// store), keyed by version. A shard serving sessions pinned to
    /// different generations holds one working copy per generation;
    /// int8 calibration happens per copy, on the same deterministic
    /// frame set everywhere.
    models: HashMap<u32, IlModel>,
    /// Safety projection for IL-mode actions, present only when
    /// `config.icoil.safety.enabled`.
    projector: Option<SafetyProjector>,
    rx: Receiver<Command>,
    /// This shard's own command sender — workers mail sessions home
    /// through a clone carried in each [`CoJob`].
    home: Sender<Command>,
    lane: Arc<Lane>,
    sessions: HashMap<u64, Session>,
    in_flight: HashSet<u64>,
    /// Commands against in-flight sessions, replayed in arrival order
    /// when the session lands.
    deferred: HashMap<u64, VecDeque<Command>>,
    pending_close: HashMap<u64, Vec<Reply<()>>>,
    backlog: VecDeque<Command>,
    metrics: Metrics,
    shutting_down: bool,
    /// Whether this shard has published its model's quantization
    /// abs-error profile into [`Series::IlQuantAbsErr`] yet — recorded
    /// once per shard, the first time the int8 lane actually runs here.
    quant_err_recorded: bool,
}

impl Shard {
    fn run(mut self) {
        loop {
            // one blocking command starts the tick; everything already
            // queued behind it joins the same IL micro-batch
            let first = match self.backlog.pop_front() {
                Some(cmd) => cmd,
                None => match self.rx.recv() {
                    Ok(cmd) => cmd,
                    Err(_) => break,
                },
            };
            let mut steps: Vec<PendingStep> = Vec::new();
            self.dispatch(first, &mut steps);
            while steps.len() < self.config.max_batch {
                match self.rx.try_recv() {
                    Ok(cmd) => self.dispatch(cmd, &mut steps),
                    Err(_) => break,
                }
            }
            if !steps.is_empty() {
                self.run_batch(steps);
            }
            if self.shutting_down && self.in_flight.is_empty() {
                break;
            }
        }
    }

    fn dispatch(&mut self, cmd: Command, steps: &mut Vec<PendingStep>) {
        match cmd {
            Command::Create { id, spec, reply } => {
                if self.shutting_down {
                    let _ = reply.send(Err(ServeError::ShuttingDown));
                } else if self.sessions.len() + self.in_flight.len() >= self.limit {
                    let _ = reply.send(Err(ServeError::SessionLimit));
                } else {
                    // the session pins the newest generation at this
                    // instant for its whole episode; later publishes
                    // affect only sessions created after them
                    let version = self.store.published();
                    self.sessions
                        .insert(id, Session::new(id, &self.config, &spec, version));
                    self.metrics.add(Counter::ServeSessions, 1);
                    let _ = reply.send(Ok(id));
                }
            }
            Command::Step { id, reply } => {
                if self.shutting_down {
                    let _ = reply.send(Err(ServeError::ShuttingDown));
                    return;
                }
                if self.in_flight.contains(&id) {
                    self.defer(Command::Step { id, reply });
                    return;
                }
                let Some(mut session) = self.sessions.remove(&id) else {
                    let _ = reply.send(Err(ServeError::UnknownSession(id)));
                    return;
                };
                if session.is_done() {
                    let resp = session.terminal_response();
                    self.sessions.insert(id, session);
                    let _ = reply.send(Ok(resp));
                    return;
                }
                let t0 = Instant::now();
                let sensing = session.sense();
                steps.push(PendingStep {
                    session,
                    sensing,
                    reply,
                    t0,
                });
            }
            Command::Close { id, reply } => {
                if self.in_flight.contains(&id) {
                    self.pending_close.entry(id).or_default().push(reply);
                } else if self.sessions.remove(&id).is_some() {
                    let _ = reply.send(Ok(()));
                } else {
                    let _ = reply.send(Err(ServeError::UnknownSession(id)));
                }
            }
            Command::Snapshot { id, reply } => {
                if self.in_flight.contains(&id) {
                    self.defer(Command::Snapshot { id, reply });
                } else if let Some(session) = self.sessions.get(&id) {
                    self.metrics.add(Counter::ServeSnapshots, 1);
                    let _ = reply.send(Ok(encode_snapshot(&session.snapshot())));
                } else {
                    let _ = reply.send(Err(ServeError::UnknownSession(id)));
                }
            }
            Command::Evict { id, reply } => {
                if self.in_flight.contains(&id) {
                    self.defer(Command::Evict { id, reply });
                } else if let Some(session) = self.sessions.remove(&id) {
                    self.metrics.add(Counter::ServeSnapshots, 1);
                    self.metrics.add(Counter::ServeEvictions, 1);
                    let _ = reply.send(Ok(encode_snapshot(&session.snapshot())));
                } else {
                    let _ = reply.send(Err(ServeError::UnknownSession(id)));
                }
            }
            Command::Restore { snapshot, reply } => {
                let id = snapshot.id;
                if self.shutting_down {
                    let _ = reply.send(Err(ServeError::ShuttingDown));
                } else if self.sessions.contains_key(&id) || self.in_flight.contains(&id) {
                    let _ = reply.send(Err(ServeError::SessionExists(id)));
                } else if self.sessions.len() + self.in_flight.len() >= self.limit {
                    let _ = reply.send(Err(ServeError::SessionLimit));
                } else if self.store.get(snapshot.weight_version).is_none() {
                    // replaying under different weights would diverge
                    // silently — refuse instead
                    let _ = reply.send(Err(ServeError::UnknownWeightVersion(
                        snapshot.weight_version,
                    )));
                } else {
                    if snapshot.il_precision == IlPrecision::Int8 {
                        // an int8-pinned episode may migrate into an
                        // f32-default server: make the lane ready now so
                        // its first step isn't a calibration stall inside
                        // a latency-measured batch
                        self.ensure_calibrated(snapshot.weight_version);
                    }
                    self.sessions
                        .insert(id, Session::restore(&self.config, &snapshot));
                    self.metrics.add(Counter::ServeRestores, 1);
                    let _ = reply.send(Ok(id));
                }
            }
            Command::Metrics { reply } => {
                let _ = reply.send(self.metrics.clone());
            }
            Command::CoDone {
                session,
                latency_s,
                shed,
            } => {
                let id = session.id;
                self.in_flight.remove(&id);
                self.metrics.observe(Series::ServeCoLane, latency_s);
                if shed {
                    self.metrics.add(Counter::CoShed, 1);
                    if let Some(f) = session.family_index() {
                        self.metrics.add(Counter::CO_SHED_BY_FAMILY[f], 1);
                    }
                }
                if let Some(replies) = self.pending_close.remove(&id) {
                    // the client closed the session mid-flight: drop it
                    for r in replies {
                        let _ = r.send(Ok(()));
                    }
                    if let Some(queue) = self.deferred.remove(&id) {
                        for cmd in queue {
                            cmd.reject(ServeError::UnknownSession(id));
                        }
                    }
                    return;
                }
                self.sessions.insert(id, *session);
                if let Some(mut queue) = self.deferred.remove(&id) {
                    while let Some(cmd) = queue.pop_front() {
                        self.backlog.push_back(cmd);
                    }
                }
            }
            Command::Shutdown => {
                self.shutting_down = true;
            }
        }
    }

    fn defer(&mut self, cmd: Command) {
        let id = match &cmd {
            Command::Step { id, .. } | Command::Snapshot { id, .. } | Command::Evict { id, .. } => {
                *id
            }
            _ => unreachable!("only id-keyed commands are deferred"),
        };
        self.deferred.entry(id).or_default().push_back(cmd);
    }

    /// Materializes a weight generation into this shard's working set.
    /// The first copy beyond the shard's initial one counts as a hot
    /// swap — the shard is now serving weights it was not started with.
    fn ensure_model(&mut self, version: u32) {
        if self.models.contains_key(&version) {
            return;
        }
        let generation = self
            .store
            .get(version)
            .expect("sessions only pin published generations");
        if !self.models.is_empty() {
            self.metrics.add(Counter::WeightSwaps, 1);
        }
        self.models.insert(version, generation.model.clone());
    }

    /// Readies generation `version` for the int8 lane on this shard.
    /// Calibration runs per materialized generation, on the same
    /// deterministic [`calibration_frames`] set everywhere, so every
    /// shard of every process derives identical scales for a given
    /// generation. The first time a shard is int8-ready it also
    /// publishes the calibration's per-logit abs-error profile into
    /// [`Series::IlQuantAbsErr`].
    fn ensure_calibrated(&mut self, version: u32) {
        self.ensure_model(version);
        let model = self.models.get_mut(&version).expect("materialized above");
        if !model.is_calibrated() {
            calibrate_model(&self.config, model);
        }
        if !self.quant_err_recorded {
            self.quant_err_recorded = true;
            if let Some(errs) = model.quant_calibration_errors() {
                for &e in errs {
                    self.metrics.observe(Series::IlQuantAbsErr, f64::from(e));
                }
            }
        }
    }

    /// One shard tick over the drained step requests: a single blocked
    /// IL pass over every pending frame (the HSA needs the softmax on
    /// every frame regardless of mode), then per-session HSA decisions —
    /// IL-mode frames finish inline, CO-mode frames go to the lane.
    ///
    /// Sessions pin their IL precision *and* their weight generation,
    /// so a tick splits into one sub-batch per `(precision, version)`
    /// pair present (each counted as its own `IlBatches` entry); a tick
    /// of all-f32 sessions on one generation runs the exact
    /// pre-quantization single-pass path. Batching stays bit-identical
    /// per row because rows never cross models.
    fn run_batch(&mut self, steps: Vec<PendingStep>) {
        let mut results: Vec<Option<InferResult>> = Vec::new();
        results.resize_with(steps.len(), || None);
        for precision in [IlPrecision::F32, IlPrecision::Int8] {
            let mut versions: Vec<u32> = steps
                .iter()
                .filter(|s| s.session.precision == precision)
                .map(|s| s.session.weight_version)
                .collect();
            versions.sort_unstable();
            versions.dedup();
            for version in versions {
                let picked: Vec<usize> = steps
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| {
                        s.session.precision == precision && s.session.weight_version == version
                    })
                    .map(|(i, _)| i)
                    .collect();
                if precision == IlPrecision::Int8 {
                    self.ensure_calibrated(version);
                    self.metrics.add(Counter::IlFramesInt8, picked.len() as u64);
                } else {
                    self.ensure_model(version);
                }
                let model = self.models.get_mut(&version).expect("materialized above");
                model.set_precision(precision);
                let bevs: Vec<&BevImage> = picked.iter().map(|&i| &steps[i].sensing.bev).collect();
                let il_results = model.infer_batch(&bevs);
                self.metrics.add(Counter::IlBatches, 1);
                self.metrics.observe(Series::IlBatchSize, bevs.len() as f64);
                for (&i, il) in picked.iter().zip(il_results) {
                    results[i] = Some(il);
                }
            }
        }
        for (mut step, il) in steps.into_iter().zip(results) {
            let il = il.expect("every pending step ran in exactly one sub-batch");
            let hsa = step.session.plan(&il.probs, &step.sensing);
            match hsa.mode {
                Mode::Il => {
                    let mut action = il.action;
                    if let Some(projector) = &self.projector {
                        let world = step.session.world();
                        let proj = projector.project(
                            world.ego(),
                            &world.scenario().vehicle_params,
                            &step.sensing.boxes,
                            action,
                        );
                        if proj.clipped {
                            self.metrics.add(Counter::SafetyProjections, 1);
                            self.metrics
                                .observe(Series::SafetyClipMag, proj.clip_magnitude);
                        }
                        action = proj.action;
                    }
                    let resp = step.session.advance(action, &hsa, None, false);
                    self.metrics
                        .observe(Series::ServeIlLane, step.t0.elapsed().as_secs_f64());
                    self.sessions.insert(step.session.id, step.session);
                    let _ = step.reply.send(Ok(resp));
                }
                Mode::Co => {
                    let id = step.session.id;
                    let family = step.session.family_index();
                    self.metrics
                        .observe(Series::CoQueueDepth, self.lane.len() as f64);
                    let job = Box::new(CoJob {
                        session: Box::new(step.session),
                        sensing: step.sensing,
                        hsa,
                        reply: step.reply,
                        t0: step.t0,
                        deadline: Instant::now() + self.config.co_deadline,
                        home: self.home.clone(),
                    });
                    match self.lane.submit(job) {
                        Ok(()) => {
                            self.metrics.add(Counter::CoAdmitted, 1);
                            if let Some(f) = family {
                                self.metrics.add(Counter::CO_ADMITTED_BY_FAMILY[f], 1);
                            }
                            self.in_flight.insert(id);
                        }
                        Err(job) => {
                            // admission control: the queue is full, shed
                            // now rather than block the shard
                            let CoJob {
                                mut session,
                                hsa,
                                reply,
                                t0,
                                ..
                            } = *job;
                            let out = CoOutput::degraded_brake();
                            let resp = session.advance(out.action, &hsa, Some(&out), true);
                            self.metrics.add(Counter::CoShed, 1);
                            if let Some(f) = family {
                                self.metrics.add(Counter::CO_SHED_BY_FAMILY[f], 1);
                            }
                            self.metrics
                                .observe(Series::ServeCoLane, t0.elapsed().as_secs_f64());
                            self.sessions.insert(id, *session);
                            let _ = reply.send(Ok(resp));
                        }
                    }
                }
            }
        }
    }
}

/// A running policy server: owns the shard and worker threads. Dropping
/// (or calling [`Serve::shutdown`]) drains in-flight solves, stops the
/// workers and joins everything.
pub struct Serve {
    handle: ServeHandle,
    shards: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    lane: Arc<Lane>,
}

impl Serve {
    /// Starts the shard and CO worker threads with `model` as the sole
    /// (generation-0) entry of a fresh weight store.
    ///
    /// # Panics
    ///
    /// Panics when a thread cannot be spawned.
    pub fn start(config: ServeConfig, mut model: IlModel) -> Serve {
        if config.il_precision == IlPrecision::Int8 {
            // calibrate the prototype once, before it enters the store:
            // every shard materializes the identical quantized network
            // and scales for generation 0
            calibrate_model(&config, &mut model);
        }
        Serve::start_with_store(config, Arc::new(WeightStore::new(model)))
    }

    /// Starts the shard and CO worker threads against an existing
    /// versioned weight store — the online-adaptation entry point.
    ///
    /// Each session pins [`WeightStore::published`] at creation for its
    /// whole episode; publishing a retrained generation to `store`
    /// hot-swaps the weights **between** episodes, never within one.
    /// Shards materialize (and, for the int8 lane, calibrate) each
    /// generation lazily the first time one of their sessions needs it.
    ///
    /// # Panics
    ///
    /// Panics when a thread cannot be spawned.
    pub fn start_with_store(config: ServeConfig, store: Arc<WeightStore>) -> Serve {
        let lane = Arc::new(Lane::new(config.queue_capacity));
        let co_batch = config.co_batch;
        let workers = (0..config.co_workers.max(1))
            .map(|i| {
                let lane = Arc::clone(&lane);
                std::thread::Builder::new()
                    .name(format!("icoil-co-{i}"))
                    .spawn(move || worker_loop(lane, co_batch))
                    .expect("spawn CO lane worker")
            })
            .collect();
        let shard_count = config.shards.max(1);
        // the global cap is enforced handle-side before routing; each
        // shard keeps the full limit as a backstop so consistent-hash
        // skew can never produce a spurious per-shard rejection
        let limit = config.max_sessions;
        let mut txs = Vec::with_capacity(shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let (tx, rx) = channel();
            let shard = Shard {
                config,
                limit,
                store: Arc::clone(&store),
                models: HashMap::new(),
                projector: config
                    .icoil
                    .safety
                    .enabled
                    .then(|| SafetyProjector::new(config.icoil.safety)),
                rx,
                home: tx.clone(),
                lane: Arc::clone(&lane),
                sessions: HashMap::new(),
                in_flight: HashSet::new(),
                deferred: HashMap::new(),
                pending_close: HashMap::new(),
                backlog: VecDeque::new(),
                metrics: Metrics::new(),
                shutting_down: false,
                quant_err_recorded: false,
            };
            txs.push(tx);
            shards.push(
                std::thread::Builder::new()
                    .name(format!("icoil-serve-{i}"))
                    .spawn(move || shard.run())
                    .expect("spawn serve shard"),
            );
        }
        Serve {
            handle: ServeHandle {
                txs: Arc::new(txs),
                router: Arc::new(ShardRouter::new(shard_count)),
                next_id: Arc::new(AtomicU64::new(1)),
                live: Arc::new(AtomicUsize::new(0)),
                max_sessions: config.max_sessions,
                il_precision: config.il_precision,
                store,
            },
            shards,
            workers,
            lane,
        }
    }

    /// A client handle; clone freely across threads and connections.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Stops accepting work, drains in-flight CO solves, and joins the
    /// shard and worker threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shards.is_empty() {
            return;
        }
        for tx in self.handle.txs.iter() {
            let _ = tx.send(Command::Shutdown);
        }
        // a shard exits only once its in-flight set is empty, i.e. every
        // one of its lane jobs has come home — so after joining all
        // shards the lane is drained and the workers park on the
        // (now-closed) condvar
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
        self.lane.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The in-process client API: every method is a blocking round-trip to
/// the owning shard thread. Tests and the bench harness use this
/// directly; the TCP front end is one more caller of the same handle.
///
/// Session ids are allocated handle-side from one shared counter, then
/// routed: the id → shard mapping is a pure function of the id and the
/// shard count, so every handle (and every process with the same shard
/// count) agrees where a session lives.
#[derive(Clone)]
pub struct ServeHandle {
    txs: Arc<Vec<Sender<Command>>>,
    router: Arc<ShardRouter>,
    next_id: Arc<AtomicU64>,
    /// Live-session count across all shards, maintained handle-side so
    /// the global `max_sessions` cap holds exactly no matter how the
    /// id → shard hash distributes sessions.
    live: Arc<AtomicUsize>,
    max_sessions: usize,
    il_precision: IlPrecision,
    store: Arc<WeightStore>,
}

impl ServeHandle {
    /// The number of engine shards behind this handle.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// The versioned weight store behind this server. Publish a
    /// retrained generation here to hot-swap: sessions created after
    /// the publish pin the new generation; running sessions finish on
    /// the one they started with.
    pub fn weight_store(&self) -> &Arc<WeightStore> {
        &self.store
    }

    /// The IL-lane precision sessions created through this handle pin
    /// (the server config's [`ServeConfig::il_precision`]). Restored
    /// sessions keep whatever precision their snapshot carries instead.
    pub fn il_precision(&self) -> IlPrecision {
        self.il_precision
    }

    fn tx_for(&self, id: u64) -> &Sender<Command> {
        &self.txs[self.router.route(id)]
    }

    fn request<T>(
        &self,
        id: u64,
        make: impl FnOnce(Reply<T>) -> Command,
    ) -> Result<T, ServeError> {
        let (reply, rx) = channel();
        self.tx_for(id)
            .send(make(reply))
            .map_err(|_| ServeError::Disconnected)?;
        rx.recv().map_err(|_| ServeError::Disconnected)?
    }

    /// Opens a session; returns its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionLimit`] at capacity,
    /// [`ServeError::ShuttingDown`] / [`ServeError::Disconnected`]
    /// around shutdown.
    pub fn create(&self, spec: impl Into<SessionSpec>) -> Result<u64, ServeError> {
        self.reserve_slot()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let spec = Box::new(spec.into());
        let result = self.request(id, |reply| Command::Create { id, spec, reply });
        if result.is_err() {
            self.release_slot();
        }
        result
    }

    /// Advances a session one frame and returns the served action and
    /// resulting state. Stepping a finished episode reports the terminal
    /// state again without advancing.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead id, shutdown errors as
    /// on [`ServeHandle::create`].
    pub fn step(&self, id: u64) -> Result<StepResponse, ServeError> {
        self.request(id, |reply| Command::Step { id, reply })
    }

    /// Steps many sessions "concurrently" from one caller: all requests
    /// are enqueued before any reply is awaited, so same-shard sessions
    /// land in the same engine tick and share one IL micro-batch.
    /// Results are in input order.
    pub fn step_many(&self, ids: &[u64]) -> Vec<Result<StepResponse, ServeError>> {
        let receivers: Vec<_> = ids
            .iter()
            .map(|&id| {
                let (reply, rx) = channel();
                self.tx_for(id)
                    .send(Command::Step { id, reply })
                    .ok()
                    .map(|_| rx)
            })
            .collect();
        receivers
            .into_iter()
            .map(|rx| match rx {
                None => Err(ServeError::Disconnected),
                Some(rx) => rx
                    .recv()
                    .map_err(|_| ServeError::Disconnected)
                    .and_then(|r| r),
            })
            .collect()
    }

    /// Closes a session, releasing its state. A session in flight on
    /// the CO lane is released as soon as its solve lands.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead id.
    pub fn close(&self, id: u64) -> Result<(), ServeError> {
        let result = self.request(id, |reply| Command::Close { id, reply });
        if result.is_ok() {
            self.release_slot();
        }
        result
    }

    /// Serializes a session's complete state into the versioned binary
    /// snapshot format without disturbing it. The snapshot is taken
    /// between frames (after any in-flight solve lands), so restoring it
    /// replays the remaining episode bit-identically.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead id.
    pub fn snapshot(&self, id: u64) -> Result<Vec<u8>, ServeError> {
        self.request(id, |reply| Command::Snapshot { id, reply })
    }

    /// Snapshots a session and removes it from the server — the idle
    /// eviction / migration primitive. The returned bytes restore the
    /// session (here or elsewhere) exactly where it left off.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a dead id.
    pub fn evict(&self, id: u64) -> Result<Vec<u8>, ServeError> {
        let result = self.request(id, |reply| Command::Evict { id, reply });
        if result.is_ok() {
            self.release_slot();
        }
        result
    }

    /// Restores a session from snapshot bytes, keeping its original id,
    /// and routes it to that id's home shard. The restored session
    /// replays bit-identically to the uninterrupted one — on any shard
    /// count and in any process with the same `icoil` config.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] for malformed bytes,
    /// [`ServeError::SessionExists`] when the id is already live,
    /// [`ServeError::SessionLimit`] at capacity.
    pub fn restore(&self, bytes: &[u8]) -> Result<u64, ServeError> {
        let snapshot: SessionSnapshot =
            decode_snapshot(bytes).map_err(|e| ServeError::Snapshot(e.to_string()))?;
        let id = snapshot.id;
        self.reserve_slot()?;
        // keep the allocator ahead of every restored id so future
        // creates never collide
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        let result = self.request(id, |reply| Command::Restore {
            snapshot: Box::new(snapshot),
            reply,
        });
        if result.is_err() {
            self.release_slot();
        }
        result
    }

    /// Atomically claims one of the `max_sessions` slots, or reports
    /// [`ServeError::SessionLimit`] when the server is full.
    fn reserve_slot(&self) -> Result<(), ServeError> {
        self.live
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |live| {
                (live < self.max_sessions).then_some(live + 1)
            })
            .map(|_| ())
            .map_err(|_| ServeError::SessionLimit)
    }

    fn release_slot(&self) {
        self.live.fetch_sub(1, Ordering::AcqRel);
    }

    /// A snapshot of the server's telemetry, merged across shards in
    /// shard order (counters sum; histograms merge element-wise).
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] after shutdown.
    pub fn metrics(&self) -> Result<Metrics, ServeError> {
        let mut merged = Metrics::new();
        for shard in self.shard_metrics()? {
            merged.merge(&shard);
        }
        Ok(merged)
    }

    /// Per-shard telemetry, indexed by shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] after shutdown.
    pub fn shard_metrics(&self) -> Result<Vec<Metrics>, ServeError> {
        // enqueue every request before awaiting any reply
        let receivers: Vec<_> = self
            .txs
            .iter()
            .map(|tx| {
                let (reply, rx) = channel();
                tx.send(Command::Metrics { reply }).ok().map(|_| rx)
            })
            .collect();
        receivers
            .into_iter()
            .map(|rx| {
                rx.ok_or(ServeError::Disconnected)?
                    .recv()
                    .map_err(|_| ServeError::Disconnected)
            })
            .collect()
    }
}
