//! Multi-session policy serving for the iCOIL stack.
//!
//! The paper's hybrid split — a cheap IL network queried every frame and
//! an expensive CO solve queried only when the scenario demands it — is
//! exactly the shape of a policy *server*: the IL lane batches trivially
//! across clients, while the CO lane is the slow, contended resource
//! that needs admission control. This crate turns the offline library
//! into that long-running, multi-tenant server:
//!
//! * [`Serve`] / [`ServeHandle`] — N shard threads, each owning the
//!   sessions consistent-hashed to it ([`ShardRouter`]) with their full
//!   state (world, HSA window, warm-start `MpcMemory`) behind a
//!   per-shard command channel; the handle is the in-process client API
//!   (create/step/snapshot/evict/restore/close/metrics) that tests and
//!   the bench harness use directly.
//! * **Checkpoint/restore** — [`ServeHandle::snapshot`] serializes a
//!   session's complete state ([`SessionSnapshot`]) into a versioned
//!   binary format (raw IEEE-754 bit patterns, FNV-1a checksummed;
//!   see [`SnapshotError`] for the typed rejection set), and
//!   [`ServeHandle::restore`] resumes it — on any shard, at any shard
//!   count, in any process — with a bit-identical remaining trajectory.
//! * **Micro-batched IL lane** — each engine tick drains all pending
//!   step requests, stacks their BEV images and runs one blocked
//!   [`icoil_nn::Network::forward_batch_into`] pass. Batching is
//!   bit-identical per row to single-sample inference, so per-session
//!   trajectories do not depend on who else is being served. With
//!   [`ServeConfig::il_precision`] set to `Int8` the lane runs the
//!   calibrated quantized network instead; sessions pin their precision
//!   at creation (snapshots carry it), and a tick serving both kinds
//!   splits into one sub-batch per precision.
//! * **Deadline-aware CO lane** — sessions whose HSA decision is CO
//!   mode are handed (state and all) to a worker pool draining a
//!   bounded [`DeadlineQueue`] in earliest-deadline order. A worker
//!   drains up to [`ServeConfig::co_batch`] queued jobs at once and
//!   solves them as one block-diagonal batched program
//!   ([`icoil_co::solve_mpc_batch`] over the solver's `QpBatch`) —
//!   one symbolic factorization phase and one numeric refactor pass
//!   shared across same-structure frames. A full queue or an expired
//!   deadline sheds the request with the existing
//!   [`icoil_co::CoOutput::degraded_brake`] full-brake response — the
//!   lane never blocks the engine and never panics under overload.
//! * **NDJSON TCP front end** ([`run_server`]) — newline-delimited
//!   JSON requests/responses over `std::net`, mirroring the telemetry
//!   `FrameEvent` conventions, for clients that are not in-process.
//!
//! Determinism contract: a session's trajectory is a pure function of
//! its own `(difficulty, seed)` as long as none of its frames are shed
//! — batch composition cannot change IL rows (bit-identical batching),
//! each CO solve runs on session-local state wherever the worker
//! happens to be scheduled, and the batched CO solve is bit-identical
//! per block to solo solves (the solver's batched-vs-sequential
//! contract), so *who shares a worker's drain* cannot change a
//! session's trajectory either. Sharding adds nothing to this list —
//! shards share no per-session state — and checkpoint/restore removes
//! nothing: a snapshot carries every bit of episode state the next
//! frame reads. `scripts/check.sh` holds the server to that standard
//! across worker counts, batch widths, shard counts and a
//! kill-snapshot-restore cycle.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod engine;
mod net;
mod proto;
mod queue;
mod session;
mod shard;
mod snapshot;

pub use engine::{Serve, ServeHandle};
pub use net::run_server;
pub use proto::{Request, Response};
pub use queue::DeadlineQueue;
pub use session::{
    ServeError, SessionConfig, SessionSnapshot, SessionSpec, StepResponse,
};
pub use shard::ShardRouter;
pub use snapshot::{decode_snapshot, encode_snapshot, SnapshotError};

use icoil_core::ICoilConfig;
use icoil_il::IlPrecision;
use std::time::Duration;

/// Server-wide tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// The policy configuration every session runs with.
    pub icoil: ICoilConfig,
    /// Numeric precision of the IL lane for sessions created under this
    /// config. Each session pins the precision it was created with for
    /// its whole episode (snapshots carry it), so mixed-precision
    /// serving is per-session, never per-frame. `Int8` calibrates the
    /// model once at startup from a fixed, deterministic frame set —
    /// every shard serves the identical quantized network.
    pub il_precision: IlPrecision,
    /// Engine shard threads; sessions are consistent-hashed across them
    /// by id. `1` reproduces the single-engine behaviour exactly.
    pub shards: usize,
    /// Worker threads draining the CO lane (shared by all shards).
    pub co_workers: usize,
    /// Bound of the CO lane queue; admission beyond it sheds.
    pub queue_capacity: usize,
    /// Per-request CO deadline: a queued request still unserved past it
    /// is shed by the worker that pops it.
    pub co_deadline: Duration,
    /// Most queued CO jobs one worker drains into a single batched
    /// solve. `1` reproduces job-at-a-time behaviour exactly; larger
    /// values amortize factorization work across same-structure frames
    /// under load without changing any session's trajectory.
    pub co_batch: usize,
    /// Most step requests drained into one IL micro-batch.
    pub max_batch: usize,
    /// Most concurrently live sessions; creation beyond it is refused.
    /// Enforced globally at the handle *before* routing, so the limit
    /// holds exactly however consistent hashing skews sessions across
    /// shards.
    pub max_sessions: usize,
    /// Simulated-seconds budget per session episode.
    pub max_time: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            icoil: ICoilConfig::default(),
            il_precision: IlPrecision::F32,
            shards: 1,
            co_workers: 2,
            queue_capacity: 64,
            co_deadline: Duration::from_millis(250),
            co_batch: 4,
            max_batch: 32,
            max_sessions: 256,
            max_time: 60.0,
        }
    }
}
