//! The TCP front end: a thread per connection, newline-delimited JSON
//! ([`Request`] in, [`Response`] out) over `std::net`, all funnelling
//! into the same [`ServeHandle`] the in-process API uses.

use crate::proto::{Request, Response};
use crate::ServeHandle;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

/// Serves NDJSON requests on `listener` until the engine shuts down.
///
/// Each accepted connection gets its own thread reading one request per
/// line and writing one response per line. A malformed line yields a
/// failure response (the connection survives); the loop ends when the
/// client disconnects or the engine goes away.
///
/// # Errors
///
/// Propagates `accept` errors from the listener.
pub fn run_server(listener: TcpListener, handle: ServeHandle) -> std::io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        let handle = handle.clone();
        std::thread::Builder::new()
            .name("icoil-serve-conn".to_string())
            .spawn(move || serve_connection(stream, handle))
            .map_err(std::io::Error::other)?;
    }
}

fn serve_connection(stream: TcpStream, handle: ServeHandle) {
    let reader = match stream.try_clone() {
        Ok(read_half) => BufReader::new(read_half),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(&line, &handle);
        let Ok(mut encoded) = serde_json::to_string(&response) else {
            break;
        };
        encoded.push('\n');
        if writer.write_all(encoded.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
}

/// Dispatches one request line; pure with respect to the connection, so
/// tests can drive it without a socket.
pub(crate) fn handle_line(line: &str, handle: &ServeHandle) -> Response {
    let request: Request = match serde_json::from_str(line) {
        Ok(req) => req,
        Err(err) => return Response::failure(format!("malformed request: {err}")),
    };
    match request.op.as_str() {
        "create" => match request.session_config() {
            Some(spec) => match handle.create(spec) {
                Ok(id) => Response::created(id),
                Err(err) => err.into(),
            },
            None => Response::failure("create needs difficulty and seed"),
        },
        "step" => match request.session {
            Some(id) => match handle.step(id) {
                Ok(frame) => Response::stepped(frame),
                Err(err) => err.into(),
            },
            None => Response::failure("step needs a session id"),
        },
        "close" => match request.session {
            Some(id) => match handle.close(id) {
                Ok(()) => Response::closed(),
                Err(err) => err.into(),
            },
            None => Response::failure("close needs a session id"),
        },
        "snapshot" => match request.session {
            Some(id) => match handle.snapshot(id) {
                Ok(bytes) => Response::with_snapshot(&bytes),
                Err(err) => err.into(),
            },
            None => Response::failure("snapshot needs a session id"),
        },
        "evict" => match request.session {
            Some(id) => match handle.evict(id) {
                Ok(bytes) => Response::with_snapshot(&bytes),
                Err(err) => err.into(),
            },
            None => Response::failure("evict needs a session id"),
        },
        "restore" => match request.snapshot_bytes() {
            Some(bytes) => match handle.restore(&bytes) {
                Ok(id) => Response::restored(id),
                Err(err) => err.into(),
            },
            None => Response::failure("restore needs hex snapshot bytes"),
        },
        "metrics" => match handle.metrics() {
            Ok(metrics) => Response::with_metrics(
                metrics,
                handle.il_precision().label(),
                icoil_nn::simd::dispatch_target(),
            ),
            Err(err) => err.into(),
        },
        other => Response::failure(format!("unknown op {other:?}")),
    }
}
