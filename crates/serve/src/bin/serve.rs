//! Stand-alone policy server: binds a TCP listener and serves NDJSON
//! [`icoil_serve::Request`] lines until killed.
//!
//! ```text
//! cargo run --release -p icoil-serve --bin serve
//! ```
//!
//! Environment:
//!
//! * `ICOIL_SERVE_ADDR` — bind address (default `127.0.0.1:7333`);
//! * `ICOIL_MODEL` — path to a trained IL model JSON; when unset an
//!   untrained network is served (every session then leans on the CO
//!   lane, which is the interesting load anyway);
//! * `ICOIL_CO_WORKERS` — CO lane worker threads (default 2);
//! * `ICOIL_SHARDS` — engine shard threads (default 1); sessions are
//!   consistent-hashed across shards by id;
//! * `ICOIL_IL_PRECISION` — IL-lane precision, `f32` (default) or
//!   `int8`; `int8` calibrates the model at startup and pins every
//!   session created by this server to the quantized lane.

use icoil_il::{IlModel, IlPrecision};
use icoil_perception::BevConfig;
use icoil_serve::{run_server, Serve, ServeConfig};
use icoil_vehicle::ActionCodec;
use std::net::TcpListener;

fn main() -> std::io::Result<()> {
    let addr =
        std::env::var("ICOIL_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7333".to_string());
    let mut config = ServeConfig::default();
    if let Ok(workers) = std::env::var("ICOIL_CO_WORKERS") {
        config.co_workers = workers
            .parse()
            .expect("ICOIL_CO_WORKERS must be a positive integer");
    }
    if let Ok(shards) = std::env::var("ICOIL_SHARDS") {
        config.shards = shards
            .parse()
            .expect("ICOIL_SHARDS must be a positive integer");
    }
    config.il_precision = IlPrecision::from_env();
    let model = match std::env::var("ICOIL_MODEL") {
        Ok(path) => {
            let json = std::fs::read_to_string(&path)?;
            IlModel::from_json(&json)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        }
        Err(_) => IlModel::untrained(ActionCodec::default(), BevConfig::default(), 1),
    };
    let listener = TcpListener::bind(&addr)?;
    eprintln!(
        "icoil-serve listening on {addr} ({} shards, {} CO workers, queue {}, il {})",
        config.shards.max(1),
        config.co_workers,
        config.queue_capacity,
        config.il_precision.label()
    );
    let server = Serve::start(config, model);
    let result = run_server(listener, server.handle());
    server.shutdown();
    result
}
