//! Consistent-hash routing of sessions onto engine shards.
//!
//! Each shard is an independent engine thread owning its sessions' state
//! and IL micro-batch lane. Sessions are pinned to shards by consistent
//! hashing on the session id: a ring of `VNODES` virtual points per
//! shard, a session landing on the first point at or clockwise of its
//! own hash. The assignment is a pure function of `(session id, shard
//! count)` — stable across processes and restarts — and, unlike
//! `id % shards`, moves only ~`1/n` of sessions when the shard count
//! changes.
//!
//! Routing never affects trajectories: shards share no per-session
//! state, so *which* thread steps a session is invisible to the
//! deterministic computation. The router only has to be balanced and
//! stable.

/// Virtual ring points per shard. More points → tighter balance; 128
/// keeps the worst shard within ~2× the mean over random id sets (see
/// the proptests) at negligible ring-build cost.
const VNODES: usize = 128;

/// Consistent-hash ring mapping session ids to shard indices.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// Ring points sorted by hash: `(point_hash, shard_index)`.
    ring: Vec<(u64, usize)>,
    shards: usize,
}

impl ShardRouter {
    /// Builds a ring for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics for a zero shard count.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let mut ring = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                // distinct, well-mixed point per (shard, vnode)
                let point = splitmix64((shard as u64) << 32 | vnode as u64);
                ring.push((point, shard));
            }
        }
        ring.sort_unstable();
        // duplicate point hashes would make the assignment depend on the
        // sort's tie order; with 64-bit splitmix points a collision is
        // ~impossible, but make the contract explicit
        ring.dedup_by_key(|&mut (point, _)| point);
        ShardRouter { ring, shards }
    }

    /// The shard count this ring was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a session id routes to: the first ring point at or
    /// clockwise of the id's hash.
    pub fn route(&self, session: u64) -> usize {
        let h = splitmix64(session);
        let idx = self.ring.partition_point(|&(point, _)| point < h);
        let (_, shard) = self.ring[idx % self.ring.len()];
        shard
    }
}

/// SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for id in 0..1000u64 {
            assert_eq!(r.route(id), 0);
        }
    }

    #[test]
    fn routes_are_in_range_and_all_shards_used() {
        let r = ShardRouter::new(4);
        let mut seen = [false; 4];
        for id in 0..10_000u64 {
            let s = r.route(id);
            assert!(s < 4);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards take traffic");
    }

    #[test]
    fn routing_is_stable_across_ring_rebuilds() {
        let a = ShardRouter::new(8);
        let b = ShardRouter::new(8);
        for id in (0..50_000u64).step_by(7) {
            assert_eq!(a.route(id), b.route(id));
        }
    }

    #[test]
    fn growing_the_ring_moves_few_sessions() {
        // consistent hashing's point: 4 → 5 shards should remap roughly
        // 1/5 of ids, not 4/5 like `id % n` would
        let four = ShardRouter::new(4);
        let five = ShardRouter::new(5);
        let total = 20_000u64;
        let moved = (0..total).filter(|&id| four.route(id) != five.route(id)).count();
        let frac = moved as f64 / total as f64;
        assert!(frac < 0.35, "moved fraction {frac}");
    }
}
