//! Per-client episode state and its frame lifecycle.

use crate::ServeConfig;
use icoil_co::{CoController, CoOutput, CoSnapshot};
use icoil_hsa::{Hsa, HsaDecision, Mode};
use icoil_il::IlPrecision;
use icoil_perception::{Perception, Sensing};
use icoil_vehicle::Action;
use icoil_world::episode::{Observation, Outcome};
use icoil_world::{Difficulty, MapFamilyKind, Scenario, ScenarioConfig, World};
use serde::{Deserialize, Serialize};

/// What a client asks for when opening a session: deterministic
/// per-session seeding — the same `(difficulty, seed)` always replays
/// the same scenario, perception noise stream and warm-start history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Scenario difficulty tier.
    pub difficulty: Difficulty,
    /// Scenario seed; every random choice in the session derives from it.
    pub seed: u64,
}

/// What a session runs: either the standard difficulty/seed scenario
/// family, or an explicit [`Scenario`] (the conformance fuzzer's entry
/// point — procedurally generated cases step through the full serving
/// path this way).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionSpec {
    /// A `(difficulty, seed)`-derived scenario.
    Seeded(SessionConfig),
    /// An explicit, fully-specified scenario.
    Scenario(Box<Scenario>),
}

impl SessionSpec {
    fn build_scenario(&self) -> Scenario {
        match self {
            SessionSpec::Seeded(cfg) => ScenarioConfig::new(cfg.difficulty, cfg.seed).build(),
            SessionSpec::Scenario(s) => (**s).clone(),
        }
    }
}

impl From<SessionConfig> for SessionSpec {
    fn from(cfg: SessionConfig) -> Self {
        SessionSpec::Seeded(cfg)
    }
}

/// Why a serving request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No live session has this id.
    UnknownSession(u64),
    /// A restore named a session id that is already live.
    SessionExists(u64),
    /// The server is at its configured session limit.
    SessionLimit,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The engine thread is gone (server already shut down).
    Disconnected,
    /// A snapshot failed to decode (bad magic, version, checksum or
    /// shape); the message is the underlying
    /// [`SnapshotError`](crate::SnapshotError).
    Snapshot(String),
    /// A restored snapshot pinned a weight-store generation this server
    /// has not published — restoring it here would silently change the
    /// policy mid-episode.
    UnknownWeightVersion(u32),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::SessionExists(id) => write!(f, "session {id} already exists"),
            ServeError::SessionLimit => write!(f, "session limit reached"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Disconnected => write!(f, "server engine is gone"),
            ServeError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            ServeError::UnknownWeightVersion(v) => {
                write!(f, "weight generation {v} is not published on this server")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One served frame, mirroring the telemetry `FrameEvent` fields that
/// are deterministic: everything here is a pure function of the
/// session's `(difficulty, seed)` and frame count — no wall-clock
/// content — so recorded response streams can be compared bitwise
/// across runs and worker counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepResponse {
    /// The session that was stepped.
    pub session: u64,
    /// Frame index after applying the action.
    pub frame: usize,
    /// Simulated time (seconds) after applying the action.
    pub time: f64,
    /// Which lane produced the action: `"IL"`, `"CO"`, or `"DONE"` for
    /// a step request on an already-finished episode.
    pub mode: String,
    /// HSA scenario uncertainty `U_i` this frame.
    pub uncertainty: f64,
    /// HSA scenario complexity `C_i` this frame.
    pub complexity: f64,
    /// The executed action.
    pub action: Action,
    /// Ego rear-axle x after the step (meters).
    pub x: f64,
    /// Ego rear-axle y after the step (meters).
    pub y: f64,
    /// Ego heading after the step (radians).
    pub heading: f64,
    /// Signed ego speed after the step (m/s).
    pub velocity: f64,
    /// Whether the CO controller fell back to an emergency brake.
    pub emergency: bool,
    /// Whether the action is the degraded full brake (numerical failure
    /// or a shed request).
    pub degraded: bool,
    /// Whether this frame's CO request was shed by the deadline lane
    /// (queue full or deadline expired) instead of solved.
    pub shed: bool,
    /// Set once the episode has ended: `"success"`, `"collision"` or
    /// `"timeout"`.
    pub outcome: Option<String>,
    /// The weight-store generation that produced this frame's IL
    /// inference — pinned for the whole episode, so it is constant
    /// across a session's stream. Streams recorded before the weight
    /// store existed decode as 0 (the startup model).
    #[serde(default)]
    pub weight_version: u32,
}

/// The CO leg for several sessions at once: pools their MPC solves
/// through [`icoil_co::control_batch`], which hands same-structure QPs
/// to the solver's block-diagonal batched path. Each session's outcome
/// — output, controller state, warm-start memory — is bit-identical to
/// calling [`Session::solve_co`] on it alone; only factorization work
/// is shared. Results are in job order.
pub(crate) fn solve_co_batch(jobs: &mut [(&mut Session, &Sensing)]) -> Vec<CoOutput> {
    let mut parts: Vec<(&mut CoController, Observation<'_>, &[icoil_geom::Obb])> = jobs
        .iter_mut()
        .map(|(session, sensing)| {
            let s = &mut **session;
            (&mut s.co, Observation::new(&s.world), sensing.boxes.as_slice())
        })
        .collect();
    let mut co_jobs: Vec<(&mut CoController, &Observation, &[icoil_geom::Obb])> = parts
        .iter_mut()
        .map(|(co, obs, boxes)| (&mut **co, &*obs, *boxes))
        .collect();
    icoil_co::control_batch(&mut co_jobs)
}

/// The complete serializable state of a live session — everything
/// needed to resume it bit-identically on any shard or a fresh process.
///
/// The world carries the scenario (including its seed, from which the
/// per-frame perception noise streams derive), so the stateless
/// perception pipeline is rebuilt rather than stored. The CO side is
/// the [`CoSnapshot`] episode state including the MPC warm-start
/// memory; the HSA module serializes whole (sliding windows + debounce
/// state).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The session id (preserved across restore).
    pub id: u64,
    /// World state: scenario, ego, simulated time, frame counter.
    pub world: World,
    /// HSA state: uncertainty/complexity windows, mode, pending switch.
    pub hsa: Hsa,
    /// CO controller episode state incl. MPC warm-start memory.
    pub co: CoSnapshot,
    /// The episode time limit the session was created under.
    pub max_time: f64,
    /// Terminal outcome, when the episode has already ended.
    pub outcome: Option<Outcome>,
    /// The IL-lane precision the session was created under. Absent in
    /// snapshots taken before the int8 lane existed; those decode as
    /// [`IlPrecision::F32`], which is what produced them.
    #[serde(default)]
    pub il_precision: IlPrecision,
    /// The weight-store generation the session pinned at creation.
    /// Restore refuses snapshots whose generation the target server has
    /// not published ([`ServeError::UnknownWeightVersion`]) — replaying
    /// under different weights would diverge silently. Snapshots taken
    /// before the weight store existed decode as 0, the startup model.
    #[serde(default)]
    pub weight_version: u32,
}

/// A live episode owned by the serving engine: the world, the sensing
/// pipeline, the HSA window state and the CO controller (whose
/// `MpcMemory` carries warm starts across this session's frames). Moved
/// wholesale to a CO worker for solve frames, so no lock ever guards
/// session state.
pub(crate) struct Session {
    pub(crate) id: u64,
    world: World,
    perception: Perception,
    hsa: Hsa,
    co: CoController,
    max_time: f64,
    outcome: Option<Outcome>,
    /// IL-lane precision, pinned for the whole episode at creation (or
    /// carried over by restore): the serving engine groups a tick's
    /// step requests by this field, so one episode never mixes f32 and
    /// int8 frames even if the server config changes around it.
    pub(crate) precision: IlPrecision,
    /// Weight-store generation, pinned for the whole episode at
    /// creation (or carried over by restore): mid-episode publishes
    /// change which generation *new* sessions get, never this one's.
    pub(crate) weight_version: u32,
}

impl Session {
    pub(crate) fn new(
        id: u64,
        config: &ServeConfig,
        spec: &SessionSpec,
        weight_version: u32,
    ) -> Self {
        let scenario = spec.build_scenario();
        let perception = Perception::new(config.icoil.bev, &scenario);
        let co = CoController::new(config.icoil.co, scenario.vehicle_params);
        let hsa = Hsa::new(config.icoil.hsa);
        let world = World::new(scenario);
        // a scenario that spawns in collision is finished before frame 0,
        // mirroring `run_episode`
        let outcome = world.collision_cause().map(|_| Outcome::Collision);
        Session {
            id,
            world,
            perception,
            hsa,
            co,
            max_time: config.max_time,
            outcome,
            precision: config.il_precision,
            weight_version,
        }
    }

    /// Position of this session's map family in [`MapFamilyKind::ALL`]
    /// — the index into the telemetry per-family counter arrays. `None`
    /// for fixed (non-procedural) scenarios.
    pub(crate) fn family_index(&self) -> Option<usize> {
        self.world.scenario().family.map(MapFamilyKind::index)
    }

    /// The session's world (read-only — the safety projector needs the
    /// ego state and vehicle parameters).
    pub(crate) fn world(&self) -> &World {
        &self.world
    }

    /// Captures the session's complete state (see [`SessionSnapshot`]).
    pub(crate) fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            id: self.id,
            world: self.world.clone(),
            hsa: self.hsa.clone(),
            co: self.co.snapshot(),
            max_time: self.max_time,
            outcome: self.outcome,
            il_precision: self.precision,
            weight_version: self.weight_version,
        }
    }

    /// Rebuilds a session from a snapshot under the given server config.
    ///
    /// The perception pipeline is reconstructed from the config's BEV
    /// settings and the snapshot's scenario (it is stateless per frame —
    /// its noise stream derives from the scenario seed and frame index),
    /// and the CO controller from the config plus the snapshot's episode
    /// state. The restored session replays bit-identically to the
    /// uninterrupted one as long as `config.icoil` matches the serving
    /// config the snapshot was taken under. The IL precision comes from
    /// the snapshot, not the config: an int8 episode stays int8 after
    /// migrating to a server whose default is f32, and vice versa.
    pub(crate) fn restore(config: &ServeConfig, snap: &SessionSnapshot) -> Self {
        let perception = Perception::new(config.icoil.bev, snap.world.scenario());
        let mut co =
            CoController::new(config.icoil.co, snap.world.scenario().vehicle_params);
        co.restore(&snap.co);
        Session {
            id: snap.id,
            world: snap.world.clone(),
            perception,
            hsa: snap.hsa.clone(),
            co,
            max_time: snap.max_time,
            outcome: snap.outcome,
            precision: snap.il_precision,
            weight_version: snap.weight_version,
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    /// Perception for the upcoming frame (input to the IL micro-batch).
    pub(crate) fn sense(&mut self) -> Sensing {
        self.perception.observe(&Observation::new(&self.world))
    }

    /// HSA decision from this frame's IL softmax distribution.
    pub(crate) fn plan(&mut self, probs: &[f64], sensing: &Sensing) -> HsaDecision {
        self.hsa
            .set_ego_position(self.world.ego().pose.position());
        self.hsa.update(probs, &sensing.boxes)
    }

    /// The CO leg, run on a lane worker: hybrid-A* path + warm-started
    /// SCP MPC against the detected boxes. Session-local state only.
    pub(crate) fn solve_co(&mut self, sensing: &Sensing) -> CoOutput {
        self.co.control(&Observation::new(&self.world), &sensing.boxes)
    }

    /// Applies `action`, advancing the world one frame and settling the
    /// episode outcome, and builds the client response.
    pub(crate) fn advance(
        &mut self,
        action: Action,
        hsa: &HsaDecision,
        co_out: Option<&CoOutput>,
        shed: bool,
    ) -> StepResponse {
        self.world.step(&action);
        if self.world.collision_cause().is_some() {
            self.outcome = Some(Outcome::Collision);
        } else if self.world.at_goal() {
            self.outcome = Some(Outcome::Success);
        } else if self.world.time() >= self.max_time {
            self.outcome = Some(Outcome::Timeout);
        }
        let mode = match hsa.mode {
            Mode::Il => "IL",
            Mode::Co => "CO",
        };
        self.response(
            mode,
            hsa.uncertainty,
            hsa.complexity,
            action,
            co_out.is_some_and(|o| o.emergency),
            co_out.is_some_and(|o| o.degraded),
            shed,
        )
    }

    /// The response for a step request on an already-finished episode:
    /// nothing advances, the terminal state is reported again.
    pub(crate) fn terminal_response(&self) -> StepResponse {
        self.response("DONE", 0.0, 0.0, Action::full_brake(), false, false, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn response(
        &self,
        mode: &str,
        uncertainty: f64,
        complexity: f64,
        action: Action,
        emergency: bool,
        degraded: bool,
        shed: bool,
    ) -> StepResponse {
        let ego = self.world.ego();
        StepResponse {
            session: self.id,
            frame: self.world.frame(),
            time: self.world.time(),
            mode: mode.to_string(),
            uncertainty,
            complexity,
            action,
            x: ego.pose.x,
            y: ego.pose.y,
            heading: ego.pose.theta,
            velocity: ego.velocity,
            emergency,
            degraded,
            shed,
            outcome: self.outcome.map(|o| o.to_string()),
            weight_version: self.weight_version,
        }
    }
}
