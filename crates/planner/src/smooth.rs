//! Gradient-based path smoothing.
//!
//! Hybrid-A* output is built from a handful of primitive arcs and shows
//! small heading kinks at node boundaries. This pass relaxes the interior
//! points of each same-gear segment with a curvature term while pushing
//! away from nearby obstacles — the classic conjugate of lattice planners
//! (cf. Dolgov et al., "Practical search techniques in path planning for
//! autonomous driving").

use crate::hybrid_astar::PlannedPath;
use icoil_geom::{angle_diff, Obb, Pose2, Vec2};
use serde::{Deserialize, Serialize};

/// Smoothing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmoothConfig {
    /// Weight of the second-difference (curvature) term.
    pub w_smooth: f64,
    /// Weight of the obstacle-repulsion term.
    pub w_obstacle: f64,
    /// Repulsion acts within this clearance (meters).
    pub clearance: f64,
    /// Gradient-descent step size.
    pub step: f64,
    /// Number of iterations.
    pub iterations: usize,
}

impl Default for SmoothConfig {
    fn default() -> Self {
        SmoothConfig {
            w_smooth: 0.4,
            w_obstacle: 0.3,
            clearance: 1.2,
            step: 0.2,
            iterations: 60,
        }
    }
}

/// Smooths a planned path in place, segment by segment.
///
/// Endpoints and gear-change points (cusps) are pinned: they carry the
/// maneuver's structure. Headings are recomputed from the smoothed
/// tangents, flipped on reverse segments so they stay *vehicle* headings.
pub fn smooth_path(path: &PlannedPath, obstacles: &[Obb], config: &SmoothConfig) -> PlannedPath {
    let n = path.poses.len();
    if n < 3 {
        return path.clone();
    }
    let mut points: Vec<Vec2> = path.poses.iter().map(|p| p.position()).collect();
    // pinned: endpoints and cusps
    let mut pinned = vec![false; n];
    pinned[0] = true;
    pinned[n - 1] = true;
    for i in 1..n {
        if path.directions[i] != path.directions[i - 1] {
            pinned[i] = true;
            pinned[i - 1] = true;
        }
    }

    for _ in 0..config.iterations {
        for i in 1..n - 1 {
            if pinned[i] {
                continue;
            }
            // curvature gradient: d/dp_i ||p_{i-1} - 2 p_i + p_{i+1}||²
            let second = points[i - 1] - points[i] * 2.0 + points[i + 1];
            let mut grad = second * (-2.0 * config.w_smooth) * -1.0;
            // obstacle repulsion within the clearance band
            for obb in obstacles {
                let d = obb.distance_to_point(points[i]);
                if d < config.clearance {
                    let away = (points[i] - obb.center).normalized();
                    grad += away * (config.w_obstacle * (config.clearance - d));
                }
            }
            points[i] += grad * config.step;
        }
    }

    // rebuild poses with tangent-consistent headings
    let mut poses = Vec::with_capacity(n);
    for i in 0..n {
        let tangent = if i + 1 < n {
            points[i + 1] - points[i]
        } else {
            points[i] - points[i - 1]
        };
        let dir = path.directions[i.min(path.directions.len() - 1)];
        let theta = if tangent.norm() < 1e-9 {
            path.poses[i].theta
        } else if dir > 0.0 {
            tangent.angle()
        } else {
            (-tangent).angle()
        };
        poses.push(Pose2::from_parts(points[i], theta));
    }
    PlannedPath {
        poses,
        directions: path.directions.clone(),
    }
}

/// Mean absolute heading change between consecutive poses — a roughness
/// measure used to verify smoothing does its job.
pub fn heading_roughness(path: &PlannedPath) -> f64 {
    if path.poses.len() < 2 {
        return 0.0;
    }
    let sum: f64 = path
        .poses
        .windows(2)
        .map(|w| angle_diff(w[1].theta, w[0].theta).abs())
        .sum();
    sum / (path.poses.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A zig-zag forward path that should smooth toward a straight line.
    fn zigzag() -> PlannedPath {
        let pts: Vec<Vec2> = (0..21)
            .map(|i| {
                Vec2::new(
                    i as f64 * 0.5,
                    if i % 2 == 0 { 0.0 } else { 0.3 },
                )
            })
            .collect();
        let poses: Vec<Pose2> = (0..21)
            .map(|i| {
                let t = if i + 1 < 21 {
                    pts[i + 1] - pts[i]
                } else {
                    pts[i] - pts[i - 1]
                };
                Pose2::from_parts(pts[i], t.angle())
            })
            .collect();
        PlannedPath {
            poses,
            directions: vec![1.0; 21],
        }
    }

    #[test]
    fn smoothing_reduces_roughness_and_length() {
        let raw = zigzag();
        let smoothed = smooth_path(&raw, &[], &SmoothConfig::default());
        assert!(smoothed.length() < raw.length());
        // zigzag amplitude shrinks
        let max_y = smoothed
            .poses
            .iter()
            .map(|p| p.y.abs())
            .fold(0.0f64, f64::max);
        assert!(max_y < 0.3);
    }

    #[test]
    fn endpoints_are_pinned() {
        let raw = zigzag();
        let smoothed = smooth_path(&raw, &[], &SmoothConfig::default());
        assert!(smoothed.poses[0].position().distance(raw.poses[0].position()) < 1e-12);
        assert!(
            smoothed
                .poses
                .last()
                .unwrap()
                .position()
                .distance(raw.poses.last().unwrap().position())
                < 1e-12
        );
    }

    #[test]
    fn cusps_are_pinned() {
        let mut raw = zigzag();
        for d in raw.directions.iter_mut().skip(10) {
            *d = -1.0;
        }
        let cusp_pos = raw.poses[10].position();
        let smoothed = smooth_path(&raw, &[], &SmoothConfig::default());
        // the 10th point is where the gear flips: it must not move
        assert!(smoothed.poses[10].position().distance(cusp_pos) < 1e-12);
        assert_eq!(smoothed.directions, raw.directions);
    }

    #[test]
    fn obstacle_repulsion_pushes_away() {
        let raw = PlannedPath {
            poses: (0..21)
                .map(|i| Pose2::new(i as f64 * 0.5, 0.0, 0.0))
                .collect(),
            directions: vec![1.0; 21],
        };
        // obstacle just below the path middle
        let obb = Obb::from_pose(Pose2::new(5.0, -0.6, 0.0), 1.0, 1.0);
        let smoothed = smooth_path(&raw, &[obb], &SmoothConfig::default());
        // the mid-path points move up, away from the obstacle
        let mid = &smoothed.poses[10];
        assert!(mid.y > 0.02, "midpoint pushed to y = {}", mid.y);
    }

    #[test]
    fn reverse_segment_headings_flip() {
        let raw = PlannedPath {
            poses: (0..10)
                .map(|i| Pose2::new(i as f64 * 0.5, 0.0, std::f64::consts::PI))
                .collect(),
            directions: vec![-1.0; 10],
        };
        // moving +x in reverse: vehicle heading must stay ≈ π
        let smoothed = smooth_path(&raw, &[], &SmoothConfig::default());
        for p in &smoothed.poses {
            assert!(
                p.theta.abs() > 3.0,
                "reverse heading flipped wrongly: {}",
                p.theta
            );
        }
    }

    #[test]
    fn tiny_paths_pass_through() {
        let raw = PlannedPath {
            poses: vec![Pose2::default(), Pose2::new(1.0, 0.0, 0.0)],
            directions: vec![1.0, 1.0],
        };
        assert_eq!(smooth_path(&raw, &[], &SmoothConfig::default()), raw);
    }

    #[test]
    fn roughness_metric_zero_for_straight_line() {
        let straight = PlannedPath {
            poses: (0..5).map(|i| Pose2::new(i as f64, 0.0, 0.0)).collect(),
            directions: vec![1.0; 5],
        };
        assert_eq!(heading_roughness(&straight), 0.0);
        assert!(heading_roughness(&zigzag()) > 0.0);
    }
}
