//! Reeds-Shepp curves: shortest curvature-bounded paths with forward and
//! reverse motion.
//!
//! Implements the classic CSC and CCC word families (LSL, LSR, LRL) under
//! the time-flip and reflection symmetries, which covers the maneuvers a
//! parking planner needs (including direction changes). For any pair of
//! poses at least one candidate exists, and the shortest candidate is
//! returned; candidate endpoints are exact (verified by integration in
//! the tests).

use icoil_geom::Pose2;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// The three primitive motions of a Reeds-Shepp word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Arc turning left at minimum radius.
    Left,
    /// Straight line.
    Straight,
    /// Arc turning right at minimum radius.
    Right,
}

/// One segment of a Reeds-Shepp path.
///
/// `length` is *signed* arc length in meters: negative drives in reverse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RsSegment {
    /// Steering primitive.
    pub kind: SegmentKind,
    /// Signed arc length (meters); negative means reverse gear.
    pub length: f64,
}

/// A Reeds-Shepp path: a short word of arcs and straights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RsPath {
    /// The segments in drive order.
    pub segments: Vec<RsSegment>,
    /// Minimum turning radius used (meters).
    pub radius: f64,
}

impl RsPath {
    /// Total (unsigned) path length in meters.
    pub fn length(&self) -> f64 {
        self.segments.iter().map(|s| s.length.abs()).sum()
    }

    /// Number of gear changes (sign flips between consecutive segments).
    pub fn direction_switches(&self) -> usize {
        self.segments
            .windows(2)
            .filter(|w| w[0].length.signum() != w[1].length.signum()
                && w[0].length != 0.0
                && w[1].length != 0.0)
            .count()
    }

    /// Samples poses along the path every `step` meters starting from
    /// `start`, including the exact segment endpoints. Returns
    /// `(pose, direction)` pairs where `direction` is ±1.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive step.
    pub fn sample(&self, start: Pose2, step: f64) -> Vec<(Pose2, f64)> {
        assert!(step > 0.0, "sample step must be positive");
        let mut out = vec![(start, self.segments.first().map_or(1.0, |s| s.length.signum()))];
        let mut pose = start;
        for seg in &self.segments {
            if seg.length.abs() < 1e-12 {
                continue;
            }
            let dir = seg.length.signum();
            let total = seg.length.abs();
            let n = (total / step).ceil().max(1.0) as usize;
            for k in 1..=n {
                let s = total * k as f64 / n as f64;
                out.push((advance(pose, seg.kind, dir * s, self.radius), dir));
            }
            pose = advance(pose, seg.kind, seg.length, self.radius);
        }
        out
    }

    /// Exact end pose of the path when driven from `start`.
    pub fn end_pose(&self, start: Pose2) -> Pose2 {
        let mut pose = start;
        for seg in &self.segments {
            pose = advance(pose, seg.kind, seg.length, self.radius);
        }
        pose
    }
}

/// Pose after driving `signed_len` meters along a primitive of the given
/// turning radius.
fn advance(pose: Pose2, kind: SegmentKind, signed_len: f64, radius: f64) -> Pose2 {
    if signed_len == 0.0 {
        return pose;
    }
    match kind {
        SegmentKind::Straight => Pose2::new(
            pose.x + signed_len * pose.theta.cos(),
            pose.y + signed_len * pose.theta.sin(),
            pose.theta,
        ),
        SegmentKind::Left | SegmentKind::Right => {
            let turn = if kind == SegmentKind::Left { 1.0 } else { -1.0 };
            let dtheta = turn * signed_len / radius;
            let theta_new = pose.theta + dtheta;
            // rotation about the circle center
            let cx = pose.x - turn * radius * pose.theta.sin();
            let cy = pose.y + turn * radius * pose.theta.cos();
            Pose2::new(
                cx + turn * radius * theta_new.sin(),
                cy - turn * radius * theta_new.cos(),
                theta_new,
            )
        }
    }
}

/// Shortest Reeds-Shepp path (over the implemented families) from `start`
/// to `goal` with minimum turning radius `radius`.
///
/// # Panics
///
/// Panics for a non-positive radius.
pub fn shortest_path(start: Pose2, goal: Pose2, radius: f64) -> RsPath {
    assert!(radius > 0.0, "turning radius must be positive");
    // normalize into the canonical frame, scaled by the radius
    let local = start.inverse().compose(goal);
    let x = local.x / radius;
    let y = local.y / radius;
    let phi = local.theta;

    let mut best: Option<(f64, Vec<RsSegment>)> = None;
    let consider = |cand: Vec<RsSegment>, best: &mut Option<(f64, Vec<RsSegment>)>| {
        let len: f64 = cand.iter().map(|s| s.length.abs()).sum();
        if len < best.as_ref().map_or(f64::INFINITY, |(l, _)| *l) {
            *best = Some((len, cand));
        }
    };
    for cand in candidates(x, y, phi) {
        consider(cand, &mut best);
    }
    // Time reversal: a word for the swapped problem (goal → start),
    // driven backwards (reversed order, negated lengths), solves the
    // original problem — this doubles the family coverage and often
    // finds much shorter maneuvers (e.g. for lateral shifts).
    let swapped = goal.inverse().compose(start);
    for cand in candidates(swapped.x / radius, swapped.y / radius, swapped.theta) {
        let reversed: Vec<RsSegment> = cand
            .into_iter()
            .rev()
            .map(|s| RsSegment {
                kind: s.kind,
                length: -s.length,
            })
            .collect();
        consider(reversed, &mut best);
    }
    let (_, mut segments) = best.expect("at least one RS family always succeeds");
    // scale unit-radius lengths back to meters (arcs and straights alike)
    for s in &mut segments {
        s.length *= radius;
    }
    RsPath { segments, radius }
}

/// All candidate words for the normalized problem `(x, y, phi)`.
///
/// Each closed-form word is expanded with every `±2π` re-branching of its
/// arc segments (an arc of `t ∈ [0, 2π)` can equivalently be driven as
/// `t − 2π`, i.e. the short way round in the other gear), and candidates
/// are kept only when they *verifiably* reach the goal — this recovers
/// the short cusped maneuvers (e.g. parallel-park shifts) that the three
/// base formulas alone miss.
fn candidates(x: f64, y: f64, phi: f64) -> Vec<Vec<RsSegment>> {
    let mut out = Vec::new();
    // base transforms: identity, timeflip, reflect, both
    let transforms: [(f64, f64, f64, bool, bool); 4] = [
        (x, y, phi, false, false),
        (-x, y, -phi, true, false),
        (x, -y, -phi, false, true),
        (-x, -y, phi, true, true),
    ];
    for (tx, ty, tphi, timeflip, reflect) in transforms {
        for word in [lsl(tx, ty, tphi), lsr(tx, ty, tphi), lrl(tx, ty, tphi)]
            .into_iter()
            .flatten()
        {
            let base = apply_symmetry(word, timeflip, reflect);
            for variant in rebranch_arcs(&base) {
                if reaches(&variant, x, y, phi) {
                    out.push(variant);
                }
            }
        }
    }
    out
}

/// Enumerates every combination of driving each arc the long or the
/// short way round (`l` vs `l ∓ 2π`).
fn rebranch_arcs(word: &[RsSegment]) -> Vec<Vec<RsSegment>> {
    let mut variants: Vec<Vec<RsSegment>> = vec![Vec::new()];
    for seg in word {
        let options: Vec<f64> = match seg.kind {
            SegmentKind::Straight => vec![seg.length],
            _ => {
                let alt = if seg.length >= 0.0 {
                    seg.length - 2.0 * PI
                } else {
                    seg.length + 2.0 * PI
                };
                vec![seg.length, alt]
            }
        };
        let mut next = Vec::with_capacity(variants.len() * options.len());
        for v in &variants {
            for &l in &options {
                let mut w = v.clone();
                w.push(RsSegment {
                    kind: seg.kind,
                    length: l,
                });
                next.push(w);
            }
        }
        variants = next;
    }
    variants
}

/// Integrates a normalized (unit-radius) word and checks it ends at
/// `(x, y, phi)`.
fn reaches(word: &[RsSegment], x: f64, y: f64, phi: f64) -> bool {
    let mut pose = Pose2::new(0.0, 0.0, 0.0);
    for seg in word {
        pose = advance(pose, seg.kind, seg.length, 1.0);
    }
    (pose.x - x).abs() < 1e-6
        && (pose.y - y).abs() < 1e-6
        && icoil_geom::angle_diff(pose.theta, phi).abs() < 1e-6
}

fn apply_symmetry(mut word: Vec<RsSegment>, timeflip: bool, reflect: bool) -> Vec<RsSegment> {
    for s in &mut word {
        if timeflip {
            s.length = -s.length;
        }
        if reflect {
            s.kind = match s.kind {
                SegmentKind::Left => SegmentKind::Right,
                SegmentKind::Right => SegmentKind::Left,
                SegmentKind::Straight => SegmentKind::Straight,
            };
        }
    }
    word
}

fn polar(x: f64, y: f64) -> (f64, f64) {
    (x.hypot(y), y.atan2(x))
}

fn mod2pi(a: f64) -> f64 {
    let mut v = a % (2.0 * PI);
    if v < 0.0 {
        v += 2.0 * PI;
    }
    v
}

/// L(t) S(u) L(v)
fn lsl(x: f64, y: f64, phi: f64) -> Option<Vec<RsSegment>> {
    let (u, t) = polar(x - phi.sin(), y - 1.0 + phi.cos());
    let t = mod2pi(t);
    let v = mod2pi(phi - t);
    Some(vec![
        RsSegment { kind: SegmentKind::Left, length: t },
        RsSegment { kind: SegmentKind::Straight, length: u },
        RsSegment { kind: SegmentKind::Left, length: v },
    ])
}

/// L(t) S(u) R(v)
fn lsr(x: f64, y: f64, phi: f64) -> Option<Vec<RsSegment>> {
    let (u1, t1) = polar(x + phi.sin(), y - 1.0 - phi.cos());
    let u1_sq = u1 * u1;
    if u1_sq < 4.0 {
        return None;
    }
    let u = (u1_sq - 4.0).sqrt();
    let theta = 2.0f64.atan2(u);
    let t = mod2pi(t1 + theta);
    let v = mod2pi(t - phi);
    Some(vec![
        RsSegment { kind: SegmentKind::Left, length: t },
        RsSegment { kind: SegmentKind::Straight, length: u },
        RsSegment { kind: SegmentKind::Right, length: v },
    ])
}

/// L(t) R(u) L(v) — the CCC family with a reversed middle arc.
fn lrl(x: f64, y: f64, phi: f64) -> Option<Vec<RsSegment>> {
    let (u1, t1) = polar(x - phi.sin(), y - 1.0 + phi.cos());
    if u1 > 4.0 {
        return None;
    }
    let a = (u1 / 4.0).asin();
    let u = -2.0 * a; // middle arc driven in reverse
    let t = mod2pi(t1 + 0.5 * u + PI);
    let v = mod2pi(phi - t + u);
    Some(vec![
        RsSegment { kind: SegmentKind::Left, length: t },
        RsSegment { kind: SegmentKind::Right, length: u },
        RsSegment { kind: SegmentKind::Left, length: v },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::Vec2;

    fn check_reaches(start: Pose2, goal: Pose2, radius: f64) -> RsPath {
        let path = shortest_path(start, goal, radius);
        let end = path.end_pose(start);
        assert!(
            end.position().distance(goal.position()) < 1e-6,
            "position error {} for goal {goal}",
            end.position().distance(goal.position())
        );
        assert!(
            end.heading_error(&goal) < 1e-6,
            "heading error {}",
            end.heading_error(&goal)
        );
        path
    }

    #[test]
    fn straight_ahead_is_a_straight_line() {
        let start = Pose2::new(0.0, 0.0, 0.0);
        let goal = Pose2::new(10.0, 0.0, 0.0);
        let path = check_reaches(start, goal, 4.0);
        assert!((path.length() - 10.0).abs() < 1e-6);
        assert_eq!(path.direction_switches(), 0);
    }

    #[test]
    fn straight_behind_uses_reverse() {
        let start = Pose2::new(0.0, 0.0, 0.0);
        let goal = Pose2::new(-6.0, 0.0, 0.0);
        let path = check_reaches(start, goal, 4.0);
        assert!((path.length() - 6.0).abs() < 1e-6);
        // all motion is in reverse
        assert!(path.segments.iter().all(|s| s.length <= 1e-9));
    }

    #[test]
    fn quarter_turn() {
        let r = 4.0;
        let start = Pose2::new(0.0, 0.0, 0.0);
        // a pure left quarter arc ends at (r sin90, r (1-cos90)) = (4, 4)
        let goal = Pose2::new(4.0, 4.0, std::f64::consts::FRAC_PI_2);
        let path = check_reaches(start, goal, r);
        let arc = r * std::f64::consts::FRAC_PI_2;
        assert!((path.length() - arc).abs() < 1e-6, "len {}", path.length());
    }

    #[test]
    fn length_lower_bounded_by_euclidean() {
        let starts = [
            Pose2::new(0.0, 0.0, 0.0),
            Pose2::new(1.0, 2.0, 1.0),
            Pose2::new(-3.0, 4.0, -2.0),
        ];
        let goals = [
            Pose2::new(5.0, 5.0, 1.5),
            Pose2::new(-2.0, 3.0, 0.0),
            Pose2::new(0.5, -0.5, 3.0),
        ];
        for s in starts {
            for g in goals {
                let p = check_reaches(s, g, 3.0);
                assert!(p.length() >= s.distance(&g) - 1e-6);
            }
        }
    }

    #[test]
    fn parallel_park_shift_requires_maneuvering() {
        // pure lateral displacement: the classic parallel-park problem
        let start = Pose2::new(0.0, 0.0, 0.0);
        let goal = Pose2::new(0.0, 2.0, 0.0);
        let path = check_reaches(start, goal, 4.0);
        assert!(path.length() > 2.0);
        // it must involve arcs, not straights only
        assert!(path
            .segments
            .iter()
            .any(|s| s.kind != SegmentKind::Straight && s.length.abs() > 1e-6));
    }

    #[test]
    fn identity_path_is_empty_length() {
        let p = Pose2::new(2.0, 3.0, 1.0);
        let path = shortest_path(p, p, 4.0);
        assert!(path.length() < 1e-9);
    }

    #[test]
    fn sampled_poses_end_at_goal_and_step_bounded() {
        let start = Pose2::new(0.0, 0.0, 0.5);
        let goal = Pose2::new(6.0, -3.0, -1.0);
        let path = check_reaches(start, goal, 3.5);
        let samples = path.sample(start, 0.25);
        let (last, _) = samples.last().unwrap();
        assert!(last.position().distance(goal.position()) < 1e-6);
        for w in samples.windows(2) {
            let d = w[0].0.position().distance(w[1].0.position());
            assert!(d <= 0.26, "step {d}");
        }
    }

    #[test]
    fn grid_of_goals_all_reachable() {
        // integration check over a grid of goals and headings
        let start = Pose2::new(0.0, 0.0, 0.0);
        for gx in [-8.0, -2.0, 0.0, 3.0, 9.0] {
            for gy in [-6.0, 0.0, 4.0] {
                for gth in [-2.5, -1.0, 0.0, 1.3, 3.0] {
                    if Vec2::new(gx, gy).norm() < 1e-9 && gth == 0.0 {
                        continue;
                    }
                    check_reaches(start, Pose2::new(gx, gy, gth), 4.3);
                }
            }
        }
    }

    #[test]
    fn direction_switch_count() {
        let segs = vec![
            RsSegment { kind: SegmentKind::Left, length: 1.0 },
            RsSegment { kind: SegmentKind::Right, length: -1.0 },
            RsSegment { kind: SegmentKind::Left, length: 1.0 },
        ];
        let p = RsPath { segments: segs, radius: 1.0 };
        assert_eq!(p.direction_switches(), 2);
    }

    #[test]
    #[should_panic(expected = "turning radius")]
    fn zero_radius_panics() {
        let _ = shortest_path(Pose2::default(), Pose2::new(1.0, 0.0, 0.0), 0.0);
    }
}
