//! Hybrid A*: kinematically-feasible search over `(x, y, θ)`.
//!
//! The algorithm expands motion primitives (short forward/reverse arcs at
//! a few steering angles) from each node, prunes by a discretized state
//! grid, guides the search with the maximum of two admissible heuristics
//! (obstacle-aware holonomic distance and obstacle-free Reeds-Shepp
//! length), and periodically attempts a Reeds-Shepp *analytic expansion*
//! straight to the goal — the standard recipe used by production parking
//! planners.

use crate::reeds_shepp::{self, RsPath};
use icoil_geom::{Aabb, Cell, Obb, OccupancyGrid, Polyline, Pose2, Vec2};
use icoil_vehicle::VehicleParams;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// Planner tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Grid cell size for state deduplication and the heuristic map (m).
    pub xy_resolution: f64,
    /// Number of heading bins for state deduplication.
    pub theta_bins: usize,
    /// Arc length of one motion primitive (m).
    pub step: f64,
    /// Multiplier on reverse-gear arc length.
    pub reverse_penalty: f64,
    /// Additive cost for a gear change.
    pub switch_penalty: f64,
    /// Additive cost per radian of steering.
    pub steer_penalty: f64,
    /// Try a Reeds-Shepp analytic expansion every `analytic_period`
    /// expansions.
    pub analytic_period: usize,
    /// Maximum node expansions before giving up.
    pub max_expansions: usize,
    /// Goal tolerance: position (m).
    pub goal_pos_tol: f64,
    /// Goal tolerance: heading (rad).
    pub goal_heading_tol: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            xy_resolution: 0.5,
            theta_bins: 24,
            step: 0.8,
            reverse_penalty: 1.5,
            switch_penalty: 2.0,
            steer_penalty: 0.2,
            analytic_period: 8,
            max_expansions: 60_000,
            goal_pos_tol: 0.3,
            goal_heading_tol: 0.25,
        }
    }
}

/// A planning query.
#[derive(Debug, Clone)]
pub struct PlanningProblem<'a> {
    /// Start rear-axle pose.
    pub start: Pose2,
    /// Goal rear-axle pose.
    pub goal: Pose2,
    /// Drivable area (the lot bounds).
    pub bounds: Aabb,
    /// Static obstacle footprints to avoid.
    pub obstacles: &'a [Obb],
    /// Vehicle geometry/limits.
    pub vehicle: &'a VehicleParams,
    /// Extra clearance kept around the footprint (m).
    pub safety_margin: f64,
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The start pose is already in collision.
    StartInCollision,
    /// The goal pose is in collision.
    GoalInCollision,
    /// Search exhausted its expansion budget.
    NoPathFound,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::StartInCollision => write!(f, "start pose is in collision"),
            PlanError::GoalInCollision => write!(f, "goal pose is in collision"),
            PlanError::NoPathFound => write!(f, "no collision-free path found"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The planned reference path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedPath {
    /// Rear-axle poses along the path, densely sampled.
    pub poses: Vec<Pose2>,
    /// Drive direction per pose (±1).
    pub directions: Vec<f64>,
}

impl PlannedPath {
    /// Total path length (meters).
    pub fn length(&self) -> f64 {
        self.poses
            .windows(2)
            .map(|w| w[0].position().distance(w[1].position()))
            .sum()
    }

    /// The path positions as a polyline.
    pub fn polyline(&self) -> Polyline {
        self.poses.iter().map(|p| p.position()).collect()
    }

    /// Number of gear changes along the path.
    pub fn direction_switches(&self) -> usize {
        self.directions
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count()
    }

    /// Index of the pose closest to `p`.
    ///
    /// # Panics
    ///
    /// Panics on an empty path.
    pub fn nearest_index(&self, p: Vec2) -> usize {
        assert!(!self.poses.is_empty(), "nearest_index on empty path");
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, pose) in self.poses.iter().enumerate() {
            let d = pose.position().distance_sq(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NodeKey {
    cx: i64,
    cy: i64,
    theta_bin: usize,
    reversing: bool,
}

#[derive(Debug, Clone)]
struct Node {
    pose: Pose2,
    direction: f64,
    cost: f64,
    parent: Option<usize>,
}

struct OpenItem {
    f: f64,
    index: usize,
}

impl PartialEq for OpenItem {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for OpenItem {}
impl Ord for OpenItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}
impl PartialOrd for OpenItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Checks a pose against bounds and obstacles using the vehicle's
/// three-circle coverage model (the same approximation the MPC enforces,
/// so planned paths are feasible for the tracking layer by construction).
fn pose_free(problem: &PlanningProblem, pose: Pose2) -> bool {
    let heading = Vec2::from_angle(pose.theta);
    for (off, radius) in problem.vehicle.coverage_circles() {
        let c = pose.position() + heading * off;
        let r = radius + problem.safety_margin;
        let b = &problem.bounds;
        if c.x - b.min.x < r || b.max.x - c.x < r || c.y - b.min.y < r || b.max.y - c.y < r {
            return false;
        }
        for o in problem.obstacles {
            if o.distance_to_point(c) < r {
                return false;
            }
        }
    }
    true
}

/// Plans a collision-free kinematic path from start to goal.
///
/// # Errors
///
/// Returns a [`PlanError`] when start/goal are blocked or the search
/// budget is exhausted.
pub fn plan(problem: &PlanningProblem, config: &PlannerConfig) -> Result<PlannedPath, PlanError> {
    if !pose_free(problem, problem.start) {
        return Err(PlanError::StartInCollision);
    }
    if !pose_free(problem, problem.goal) {
        return Err(PlanError::GoalInCollision);
    }

    let heuristic_map = build_heuristic_map(problem, config);
    let radius = problem.vehicle.min_turning_radius();

    let mut nodes: Vec<Node> = vec![Node {
        pose: problem.start,
        direction: 1.0,
        cost: 0.0,
        parent: None,
    }];
    let mut open = BinaryHeap::new();
    let mut best_cost: HashMap<NodeKey, f64> = HashMap::new();

    let key_of = |pose: Pose2, dir: f64| -> NodeKey {
        let bin = ((pose.theta + std::f64::consts::PI) / (2.0 * std::f64::consts::PI)
            * config.theta_bins as f64)
            .floor() as usize
            % config.theta_bins;
        NodeKey {
            cx: (pose.x / config.xy_resolution).floor() as i64,
            cy: (pose.y / config.xy_resolution).floor() as i64,
            theta_bin: bin,
            reversing: dir < 0.0,
        }
    };
    let h = |pose: Pose2| heuristic(problem, config, &heuristic_map, pose, radius);

    open.push(OpenItem {
        f: h(problem.start),
        index: 0,
    });
    best_cost.insert(key_of(problem.start, 1.0), 0.0);

    let steers = [-problem.vehicle.max_steer, 0.0, problem.vehicle.max_steer];
    let mut expansions = 0usize;

    while let Some(OpenItem { index, .. }) = open.pop() {
        let (pose, dir, cost) = {
            let n = &nodes[index];
            (n.pose, n.direction, n.cost)
        };
        // stale heap entry?
        if cost > best_cost.get(&key_of(pose, dir)).copied().unwrap_or(f64::INFINITY) + 1e-9 {
            continue;
        }
        expansions += 1;
        if expansions > config.max_expansions {
            return Err(PlanError::NoPathFound);
        }

        // direct goal test
        if pose.distance(&problem.goal) <= config.goal_pos_tol
            && pose.heading_error(&problem.goal) <= config.goal_heading_tol
        {
            return Ok(extract(&nodes, index, config, None, problem));
        }

        // analytic expansion
        if expansions.is_multiple_of(config.analytic_period) {
            let rs = reeds_shepp::shortest_path(pose, problem.goal, radius);
            if rs_collision_free(problem, &rs, pose, config) {
                return Ok(extract(&nodes, index, config, Some(rs), problem));
            }
        }

        for direction in [1.0f64, -1.0] {
            for &steer in &steers {
                let next_pose = primitive(pose, direction, steer, config.step, problem.vehicle);
                // collision-check intermediate poses of the primitive
                let mid = primitive(pose, direction, steer, config.step * 0.5, problem.vehicle);
                if !pose_free(problem, next_pose) || !pose_free(problem, mid) {
                    continue;
                }
                let mut step_cost = config.step
                    * if direction < 0.0 {
                        config.reverse_penalty
                    } else {
                        1.0
                    };
                if direction != dir {
                    step_cost += config.switch_penalty;
                }
                step_cost += config.steer_penalty * steer.abs();
                let new_cost = cost + step_cost;
                let key = key_of(next_pose, direction);
                if new_cost + 1e-9 < best_cost.get(&key).copied().unwrap_or(f64::INFINITY) {
                    best_cost.insert(key, new_cost);
                    nodes.push(Node {
                        pose: next_pose,
                        direction,
                        cost: new_cost,
                        parent: Some(index),
                    });
                    open.push(OpenItem {
                        f: new_cost + h(next_pose),
                        index: nodes.len() - 1,
                    });
                }
            }
        }
    }

    Err(PlanError::NoPathFound)
}

/// Integrates one motion primitive (constant steer, fixed arc length).
fn primitive(pose: Pose2, direction: f64, steer: f64, arc_len: f64, vehicle: &VehicleParams) -> Pose2 {
    let n = 4; // sub-steps for smooth integration
    let ds = direction * arc_len / n as f64;
    let mut p = pose;
    for _ in 0..n {
        let dtheta = ds * steer.tan() / vehicle.wheelbase;
        let theta_mid = p.theta + 0.5 * dtheta;
        p = Pose2::new(
            p.x + ds * theta_mid.cos(),
            p.y + ds * theta_mid.sin(),
            p.theta + dtheta,
        );
    }
    p
}

fn rs_collision_free(
    problem: &PlanningProblem,
    rs: &RsPath,
    from: Pose2,
    config: &PlannerConfig,
) -> bool {
    let step = (config.xy_resolution * 0.5).max(0.1);
    rs.sample(from, step)
        .iter()
        .all(|(pose, _)| pose_free(problem, *pose))
}

/// Obstacle-aware holonomic distance map seeded at the goal.
fn build_heuristic_map(problem: &PlanningProblem, config: &PlannerConfig) -> icoil_geom::grid::DistanceMap {
    let mut grid = OccupancyGrid::covering(&problem.bounds, config.xy_resolution);
    for o in problem.obstacles {
        grid.fill_obb(o, 255);
    }
    // inflate by half the vehicle width so corridors narrower than the car
    // read as blocked
    grid.inflate(problem.vehicle.width * 0.5, 128);
    let goal_cell = grid.world_to_cell(problem.goal.position());
    grid.distance_map(|c: Cell| c == goal_cell, 128)
}

fn heuristic(
    problem: &PlanningProblem,
    _config: &PlannerConfig,
    map: &icoil_geom::grid::DistanceMap,
    pose: Pose2,
    radius: f64,
) -> f64 {
    let holonomic = map.distance_at(pose.position());
    let holonomic = if holonomic.is_finite() {
        holonomic
    } else {
        // unreachable cell in the coarse map (e.g. inside inflation);
        // fall back to euclidean so the search can still make progress
        pose.distance(&problem.goal)
    };
    let rs = reeds_shepp::shortest_path(pose, problem.goal, radius).length();
    holonomic.max(rs)
}

/// Reconstructs the path from the node chain plus an optional analytic
/// Reeds-Shepp tail.
fn extract(
    nodes: &[Node],
    index: usize,
    config: &PlannerConfig,
    tail: Option<RsPath>,
    problem: &PlanningProblem,
) -> PlannedPath {
    let mut chain = Vec::new();
    let mut cur = Some(index);
    while let Some(i) = cur {
        chain.push(i);
        cur = nodes[i].parent;
    }
    chain.reverse();
    let mut poses: Vec<Pose2> = Vec::new();
    let mut directions: Vec<f64> = Vec::new();
    for &i in &chain {
        poses.push(nodes[i].pose);
        directions.push(nodes[i].direction);
    }
    // first node direction mirrors the first move
    if directions.len() > 1 {
        directions[0] = directions[1];
    }
    if let Some(rs) = tail {
        let from = *poses.last().expect("chain is never empty");
        let samples = rs.sample(from, (config.xy_resolution * 0.5).max(0.1));
        for (pose, dir) in samples.into_iter().skip(1) {
            poses.push(pose);
            directions.push(dir);
        }
    } else {
        // close the gap to the exact goal with a Reeds-Shepp tail when a
        // collision-free one exists (an abrupt snap leaves a kink the
        // tracker cannot follow in tight quarters)
        let from = *poses.last().expect("chain is never empty");
        let rs = reeds_shepp::shortest_path(
            from,
            problem.goal,
            problem.vehicle.min_turning_radius(),
        );
        if rs.length() < 3.0 && rs_collision_free(problem, &rs, from, config) {
            for (pose, dir) in rs
                .sample(from, (config.xy_resolution * 0.5).max(0.1))
                .into_iter()
                .skip(1)
            {
                poses.push(pose);
                directions.push(dir);
            }
        } else {
            poses.push(problem.goal);
            directions.push(*directions.last().unwrap_or(&1.0));
        }
    }
    PlannedPath { poses, directions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_lot() -> (Aabb, Vec<Obb>, VehicleParams) {
        (
            Aabb::new(Vec2::ZERO, Vec2::new(30.0, 20.0)),
            Vec::new(),
            VehicleParams::default(),
        )
    }

    fn solve(
        start: Pose2,
        goal: Pose2,
        bounds: Aabb,
        obstacles: &[Obb],
        vehicle: &VehicleParams,
    ) -> Result<PlannedPath, PlanError> {
        let problem = PlanningProblem {
            start,
            goal,
            bounds,
            obstacles,
            vehicle,
            safety_margin: 0.15,
        };
        plan(&problem, &PlannerConfig::default())
    }

    fn assert_path_valid(path: &PlannedPath, problem_obstacles: &[Obb], bounds: &Aabb, v: &VehicleParams) {
        for pose in &path.poses {
            let fp = icoil_vehicle::VehicleState::at_rest(*pose).footprint(v);
            assert!(fp.corners().iter().all(|c| bounds.contains(*c)), "pose {pose} leaves bounds");
            for o in problem_obstacles {
                assert!(!o.intersects(&fp), "pose {pose} collides");
            }
        }
    }

    #[test]
    fn straight_corridor_plan() {
        let (bounds, obs, v) = empty_lot();
        let start = Pose2::new(4.0, 10.0, 0.0);
        let goal = Pose2::new(24.0, 10.0, 0.0);
        let path = solve(start, goal, bounds, &obs, &v).unwrap();
        assert!(path.length() >= 19.0 && path.length() < 26.0, "len {}", path.length());
        assert_path_valid(&path, &obs, &bounds, &v);
        let last = path.poses.last().unwrap();
        assert!(last.distance(&goal) < 0.5);
        assert!(last.heading_error(&goal) < 0.3);
    }

    #[test]
    fn plans_around_obstacle() {
        let (bounds, _, v) = empty_lot();
        // a wall with a gap forces a detour
        let obs = vec![
            Obb::from_pose(Pose2::new(15.0, 7.0, 0.0), 1.0, 14.0),
        ];
        let start = Pose2::new(4.0, 10.0, 0.0);
        let goal = Pose2::new(25.5, 10.0, 0.0);
        let path = solve(start, goal, bounds, &obs, &v).unwrap();
        assert_path_valid(&path, &obs, &bounds, &v);
        // detour is longer than the straight line
        assert!(path.length() > 22.5, "len {}", path.length());
    }

    #[test]
    fn reverse_into_tight_goal() {
        let (bounds, obs, v) = empty_lot();
        // goal heading opposite travel direction: must reverse or turn
        let start = Pose2::new(10.0, 10.0, 0.0);
        let goal = Pose2::new(16.0, 10.0, std::f64::consts::PI);
        let path = solve(start, goal, bounds, &obs, &v).unwrap();
        assert_path_valid(&path, &obs, &bounds, &v);
        let last = path.poses.last().unwrap();
        assert!(last.heading_error(&goal) < 0.3);
    }

    #[test]
    fn start_in_collision_detected() {
        let (bounds, _, v) = empty_lot();
        let obs = vec![Obb::from_pose(Pose2::new(5.0, 10.0, 0.0), 6.0, 6.0)];
        let err = solve(
            Pose2::new(5.0, 10.0, 0.0),
            Pose2::new(25.0, 10.0, 0.0),
            bounds,
            &obs,
            &v,
        )
        .unwrap_err();
        assert_eq!(err, PlanError::StartInCollision);
    }

    #[test]
    fn goal_in_collision_detected() {
        let (bounds, _, v) = empty_lot();
        let obs = vec![Obb::from_pose(Pose2::new(25.0, 10.0, 0.0), 6.0, 6.0)];
        let err = solve(
            Pose2::new(5.0, 10.0, 0.0),
            Pose2::new(25.0, 10.0, 0.0),
            bounds,
            &obs,
            &v,
        )
        .unwrap_err();
        assert_eq!(err, PlanError::GoalInCollision);
    }

    #[test]
    fn fully_walled_goal_is_unreachable() {
        let (bounds, _, v) = empty_lot();
        // box the goal in with three walls; the lot boundary at x = 30
        // seals the fourth side (the goal pose itself stays clear)
        let obs = vec![
            Obb::from_pose(Pose2::new(25.0, 5.0, 0.0), 10.0, 1.0),
            Obb::from_pose(Pose2::new(25.0, 15.0, 0.0), 10.0, 1.0),
            Obb::from_pose(Pose2::new(20.0, 10.0, 0.0), 1.0, 9.0),
        ];
        let config = PlannerConfig {
            max_expansions: 20_000,
            ..PlannerConfig::default()
        };
        let problem = PlanningProblem {
            start: Pose2::new(5.0, 10.0, 0.0),
            goal: Pose2::new(25.0, 10.0, 0.0),
            bounds,
            obstacles: &obs,
            vehicle: &v,
            safety_margin: 0.15,
        };
        assert_eq!(plan(&problem, &config).unwrap_err(), PlanError::NoPathFound);
    }

    #[test]
    fn path_direction_annotations_consistent() {
        let (bounds, obs, v) = empty_lot();
        let path = solve(
            Pose2::new(6.0, 6.0, 0.3),
            Pose2::new(24.0, 14.0, 0.0),
            bounds,
            &obs,
            &v,
        )
        .unwrap();
        assert_eq!(path.poses.len(), path.directions.len());
        assert!(path.directions.iter().all(|&d| d == 1.0 || d == -1.0));
    }

    #[test]
    fn nearest_index_finds_closest() {
        let path = PlannedPath {
            poses: vec![
                Pose2::new(0.0, 0.0, 0.0),
                Pose2::new(1.0, 0.0, 0.0),
                Pose2::new(2.0, 0.0, 0.0),
            ],
            directions: vec![1.0, 1.0, 1.0],
        };
        assert_eq!(path.nearest_index(Vec2::new(1.2, 0.5)), 1);
        assert_eq!(path.nearest_index(Vec2::new(9.0, 0.0)), 2);
    }
}
