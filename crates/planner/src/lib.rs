//! Global path planning for iCOIL: Reeds-Shepp curves and hybrid A*.
//!
//! The paper's CO module tracks "the shortest path from the current
//! position to the target parking space" (§IV-B). This crate produces
//! that reference path:
//!
//! * [`reeds_shepp`] — shortest curvature-bounded forward/reverse curves
//!   between two poses (used as the hybrid-A* analytic expansion and as an
//!   admissible heuristic);
//! * [`hybrid_astar`] — a kinematically-feasible lattice search over
//!   `(x, y, θ)` with motion primitives, a holonomic-with-obstacles
//!   heuristic from a grid distance map, and Reeds-Shepp analytic
//!   expansion (the standard autonomous-parking planner, cf. Apollo).
//!
//! # Example
//!
//! ```
//! use icoil_geom::{Aabb, Pose2, Vec2};
//! use icoil_planner::{hybrid_astar, PlannerConfig, PlanningProblem};
//! use icoil_vehicle::VehicleParams;
//!
//! let params = VehicleParams::default();
//! let problem = PlanningProblem {
//!     start: Pose2::new(4.0, 4.0, 0.0),
//!     goal: Pose2::new(15.0, 7.0, 0.0),
//!     bounds: Aabb::new(Vec2::ZERO, Vec2::new(20.0, 14.0)),
//!     obstacles: &[],
//!     vehicle: &params,
//!     safety_margin: 0.2,
//! };
//! let path = hybrid_astar::plan(&problem, &PlannerConfig::default()).unwrap();
//! assert!(path.length() >= 11.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod hybrid_astar;
pub mod reeds_shepp;
pub mod smooth;

pub use hybrid_astar::{plan, PlanError, PlannedPath, PlannerConfig, PlanningProblem};
pub use reeds_shepp::{RsPath, RsSegment, SegmentKind};
pub use smooth::{heading_roughness, smooth_path, SmoothConfig};
