//! Property-based tests for the vehicle model.

use icoil_geom::Pose2;
use icoil_vehicle::{kinematics, Action, ActionCodec, VehicleParams, VehicleState};
use proptest::prelude::*;

fn arb_action() -> impl Strategy<Value = Action> {
    (0.0f64..1.0, 0.0f64..1.0, -1.0f64..1.0, any::<bool>()).prop_map(
        |(throttle, brake, steer, reverse)| Action {
            throttle,
            brake,
            steer,
            reverse,
        },
    )
}

fn arb_state() -> impl Strategy<Value = VehicleState> {
    (-20.0f64..20.0, -20.0f64..20.0, -4.0f64..4.0, -1.5f64..2.5)
        .prop_map(|(x, y, t, v)| VehicleState::new(Pose2::new(x, y, t), v))
}

proptest! {
    #[test]
    fn step_keeps_state_finite_and_speed_bounded(s in arb_state(), a in arb_action()) {
        let p = VehicleParams::default();
        let mut st = s;
        for _ in 0..50 {
            st = kinematics::step(&st, &a, &p, 0.05);
            prop_assert!(st.is_finite());
            prop_assert!(st.velocity <= p.max_speed + 1e-9);
            prop_assert!(st.velocity >= -p.max_reverse_speed - 1e-9);
        }
    }

    #[test]
    fn displacement_bounded_by_speed_limit(s in arb_state(), a in arb_action()) {
        let p = VehicleParams::default();
        let dt = 0.05;
        let next = kinematics::step(&s, &a, &p, dt);
        let moved = next.pose.position().distance(s.pose.position());
        let vmax = p.max_speed.max(p.max_reverse_speed).max(s.velocity.abs());
        prop_assert!(moved <= vmax * dt + 1e-9);
    }

    #[test]
    fn braking_never_flips_direction(v in 0.1f64..2.5, brake in 0.5f64..1.0) {
        let p = VehicleParams::default();
        let mut s = VehicleState::new(Pose2::default(), v);
        let a = Action { throttle: 0.0, brake, steer: 0.0, reverse: false };
        for _ in 0..500 {
            s = kinematics::step(&s, &a, &p, 0.05);
            prop_assert!(s.velocity >= 0.0);
        }
        prop_assert!(s.velocity.abs() < 1e-6);
    }

    #[test]
    fn codec_encode_decode_identity(bins in prop::sample::select(vec![3usize, 5, 7, 9, 11]),
                                    throttle in 0.1f64..1.0) {
        let c = ActionCodec::new(bins, throttle).unwrap();
        for class in 0..c.num_classes() {
            prop_assert_eq!(c.encode(&c.decode(class)), class);
        }
    }

    #[test]
    fn codec_decode_within_bounds(a in arb_action()) {
        let c = ActionCodec::default();
        let q = c.decode(c.encode(&a));
        prop_assert!(q.validate().is_ok());
        // steer quantization error bounded by half a bin width
        let bin_width = 2.0 / (c.steer_bins() - 1) as f64;
        prop_assert!((q.steer - a.steer.clamp(-1.0, 1.0)).abs() <= bin_width / 2.0 + 1e-9);
    }

    #[test]
    fn footprint_area_constant_under_motion(s in arb_state(), a in arb_action()) {
        let p = VehicleParams::default();
        let before = s.footprint(&p).area();
        let after = kinematics::step(&s, &a, &p, 0.05).footprint(&p).area();
        prop_assert!((before - after).abs() < 1e-9);
    }
}
