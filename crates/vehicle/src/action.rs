//! The driving-action vector.

use serde::{Deserialize, Serialize};

/// A CARLA-style control command: the action vector `a_i` of the paper,
/// containing throttle, brake, steer and reverse elements (§III).
///
/// All continuous elements are normalized; the vehicle parameters scale
/// them to physical quantities inside [`crate::kinematics`].
///
/// # Example
///
/// ```
/// use icoil_vehicle::Action;
///
/// let a = Action { throttle: 0.6, brake: 0.0, steer: -0.3, reverse: true };
/// assert!(a.validate().is_ok());
/// assert!(Action::coast().is_coasting());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Action {
    /// Drive command in `[0, 1]`.
    pub throttle: f64,
    /// Brake command in `[0, 1]`.
    pub brake: f64,
    /// Steering command in `[-1, 1]`; positive steers left
    /// (counter-clockwise).
    pub steer: f64,
    /// Gear direction: `true` drives backwards.
    pub reverse: bool,
}

impl Action {
    /// An all-zero action (coasting, wheels straight).
    pub fn coast() -> Self {
        Action::default()
    }

    /// Full brake, wheels straight.
    pub fn full_brake() -> Self {
        Action {
            brake: 1.0,
            ..Action::default()
        }
    }

    /// Forward drive at the given throttle and steer.
    pub fn forward(throttle: f64, steer: f64) -> Self {
        Action {
            throttle,
            brake: 0.0,
            steer,
            reverse: false,
        }
    }

    /// Reverse drive at the given throttle and steer.
    pub fn backward(throttle: f64, steer: f64) -> Self {
        Action {
            throttle,
            brake: 0.0,
            steer,
            reverse: true,
        }
    }

    /// Returns `true` when neither throttle nor brake is applied.
    pub fn is_coasting(&self) -> bool {
        self.throttle == 0.0 && self.brake == 0.0
    }

    /// Checks that every element is finite and within its normalized range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range element.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.throttle) || !self.throttle.is_finite() {
            return Err(format!("throttle {} outside [0, 1]", self.throttle));
        }
        if !(0.0..=1.0).contains(&self.brake) || !self.brake.is_finite() {
            return Err(format!("brake {} outside [0, 1]", self.brake));
        }
        if !(-1.0..=1.0).contains(&self.steer) || !self.steer.is_finite() {
            return Err(format!("steer {} outside [-1, 1]", self.steer));
        }
        Ok(())
    }

    /// Returns the action with every element clamped into range.
    pub fn clamped(&self) -> Action {
        Action {
            throttle: self.throttle.clamp(0.0, 1.0),
            brake: self.brake.clamp(0.0, 1.0),
            steer: self.steer.clamp(-1.0, 1.0),
            reverse: self.reverse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Action::coast().is_coasting());
        assert_eq!(Action::full_brake().brake, 1.0);
        let f = Action::forward(0.5, 0.2);
        assert!(!f.reverse && f.throttle == 0.5);
        let b = Action::backward(0.5, 0.0);
        assert!(b.reverse);
    }

    #[test]
    fn validation() {
        assert!(Action::coast().validate().is_ok());
        assert!(Action {
            throttle: 1.5,
            ..Action::default()
        }
        .validate()
        .is_err());
        assert!(Action {
            steer: -2.0,
            ..Action::default()
        }
        .validate()
        .is_err());
        assert!(Action {
            brake: f64::NAN,
            ..Action::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn clamping() {
        let a = Action {
            throttle: 3.0,
            brake: -1.0,
            steer: 9.0,
            reverse: true,
        }
        .clamped();
        assert_eq!(a.throttle, 1.0);
        assert_eq!(a.brake, 0.0);
        assert_eq!(a.steer, 1.0);
        assert!(a.validate().is_ok());
    }
}
