//! Ackermann vehicle model, action space and discretization for iCOIL.
//!
//! This crate defines the ego-vehicle vocabulary used across the workspace:
//!
//! * [`VehicleParams`] — geometric and dynamic limits of the car;
//! * [`VehicleState`] — rear-axle pose plus signed longitudinal speed;
//! * [`Action`] — the CARLA-style control vector of the paper
//!   (throttle / brake / steer / reverse);
//! * [`kinematics`] — the Ackermann (kinematic-bicycle) state-evolution
//!   model `s_{i+1} = u(s_i, a_i)` of §IV-B, used both by the simulator and
//!   by the CO module's linearization;
//! * [`ActionCodec`] — the continuous↔discrete action conversion of §IV-A
//!   that turns imitation learning into `M`-way classification.
//!
//! # Example
//!
//! ```
//! use icoil_vehicle::{Action, VehicleParams, VehicleState, kinematics};
//! use icoil_geom::Pose2;
//!
//! let params = VehicleParams::default();
//! let mut state = VehicleState::new(Pose2::new(0.0, 0.0, 0.0), 0.0);
//! let forward = Action { throttle: 1.0, brake: 0.0, steer: 0.0, reverse: false };
//! for _ in 0..100 {
//!     state = kinematics::step(&state, &forward, &params, 0.05);
//! }
//! assert!(state.pose.x > 1.0); // the car moved forward
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod action;
pub mod codec;
pub mod kinematics;
pub mod params;
pub mod state;

pub use action::Action;
pub use codec::{ActionCodec, SpeedMode};
pub use kinematics::{step, step_continuous};
pub use params::VehicleParams;
pub use state::VehicleState;
