//! Ackermann (kinematic-bicycle) state evolution: `s_{i+1} = u(s_i, a_i)`.
//!
//! Two entry points are provided:
//!
//! * [`step`] integrates a full [`Action`] (throttle/brake/steer/reverse),
//!   mapping normalized commands to physical accelerations — this is what
//!   the simulator in `icoil-world` runs every frame;
//! * [`step_continuous`] integrates raw `(acceleration, steering angle)`
//!   inputs — this is the smooth model the CO module linearizes in its
//!   sequential-convexification loop (§IV-B).

use crate::{Action, VehicleParams, VehicleState};
use icoil_geom::Pose2;

/// Integrates one simulation step under a normalized [`Action`].
///
/// The longitudinal model applies drive force in the gear direction,
/// braking opposed to the current motion (a brake never pushes the car
/// through zero speed), and linear rolling drag. The lateral model is the
/// kinematic bicycle: `θ̇ = v·tan(δ)/L` about the rear axle.
///
/// The returned speed is clamped to
/// `[-max_reverse_speed, max_speed]`.
pub fn step(state: &VehicleState, action: &Action, params: &VehicleParams, dt: f64) -> VehicleState {
    let a = action.clamped();
    let dir = if a.reverse { -1.0 } else { 1.0 };
    let v = state.velocity;

    let drive = a.throttle * params.max_accel * dir;
    let drag = -params.drag * v;
    let mut v_next = v + (drive + drag) * dt;

    // Brakes oppose motion and saturate at zero speed.
    if a.brake > 0.0 && v.abs() > 0.0 {
        let dv = a.brake * params.max_brake * dt;
        if dv >= v_next.abs() && v_next.signum() == v.signum() {
            v_next = 0.0;
        } else {
            v_next -= dv * v.signum();
            // Crossing zero by braking is not allowed.
            if v_next.signum() != v.signum() && v_next != 0.0 {
                v_next = 0.0;
            }
        }
    }
    v_next = v_next.clamp(-params.max_reverse_speed, params.max_speed);

    let steer_angle = a.steer * params.max_steer;
    integrate_pose(state, v_next, steer_angle, params, dt, v_next)
}

/// Integrates one step of the smooth control model used by CO:
/// longitudinal acceleration `accel` (m/s², signed) and front-wheel
/// steering angle `steer_angle` (radians, clamped to `±max_steer`).
pub fn step_continuous(
    state: &VehicleState,
    accel: f64,
    steer_angle: f64,
    params: &VehicleParams,
    dt: f64,
) -> VehicleState {
    let v_next = (state.velocity + accel * dt).clamp(-params.max_reverse_speed, params.max_speed);
    let steer = steer_angle.clamp(-params.max_steer, params.max_steer);
    integrate_pose(state, v_next, steer, params, dt, v_next)
}

/// Midpoint (2nd-order) integration of the bicycle pose update.
fn integrate_pose(
    state: &VehicleState,
    v: f64,
    steer_angle: f64,
    params: &VehicleParams,
    dt: f64,
    v_next: f64,
) -> VehicleState {
    let omega = v * steer_angle.tan() / params.wheelbase;
    let theta_mid = state.pose.theta + 0.5 * omega * dt;
    let pose = Pose2::new(
        state.pose.x + v * theta_mid.cos() * dt,
        state.pose.y + v * theta_mid.sin() * dt,
        state.pose.theta + omega * dt,
    );
    VehicleState {
        pose,
        velocity: v_next,
    }
}

/// Rolls out a sequence of actions from an initial state, returning every
/// intermediate state (length `actions.len() + 1`, starting with `state`).
pub fn rollout(
    state: &VehicleState,
    actions: &[Action],
    params: &VehicleParams,
    dt: f64,
) -> Vec<VehicleState> {
    let mut out = Vec::with_capacity(actions.len() + 1);
    out.push(*state);
    let mut s = *state;
    for a in actions {
        s = step(&s, a, params, dt);
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icoil_geom::Vec2;

    const DT: f64 = 0.05;

    fn params() -> VehicleParams {
        VehicleParams::default()
    }

    #[test]
    fn straight_forward_moves_along_heading() {
        let p = params();
        let mut s = VehicleState::at_rest(Pose2::new(0.0, 0.0, 0.3));
        for _ in 0..200 {
            s = step(&s, &Action::forward(1.0, 0.0), &p, DT);
        }
        assert!(s.velocity > 0.0);
        let dir = s.pose.position().normalized();
        assert!(dir.distance(Vec2::from_angle(0.3)) < 1e-6);
        assert!((s.pose.theta - 0.3).abs() < 1e-9);
    }

    #[test]
    fn speed_saturates_at_limit() {
        let p = params();
        let mut s = VehicleState::at_rest(Pose2::default());
        for _ in 0..2000 {
            s = step(&s, &Action::forward(1.0, 0.0), &p, DT);
        }
        assert!(s.velocity <= p.max_speed + 1e-9);
        assert!(s.velocity > 0.9 * p.max_speed * (1.0 - p.drag));
    }

    #[test]
    fn reverse_moves_backwards() {
        let p = params();
        let mut s = VehicleState::at_rest(Pose2::default());
        for _ in 0..100 {
            s = step(&s, &Action::backward(1.0, 0.0), &p, DT);
        }
        assert!(s.velocity < 0.0);
        assert!(s.pose.x < -0.5);
        assert!(s.velocity >= -p.max_reverse_speed - 1e-9);
    }

    #[test]
    fn brake_stops_without_reversing() {
        let p = params();
        let mut s = VehicleState::new(Pose2::default(), 2.0);
        for _ in 0..400 {
            s = step(&s, &Action::full_brake(), &p, DT);
        }
        assert_eq!(s.velocity, 0.0);
        assert!(s.pose.x > 0.0); // stopping distance is positive
    }

    #[test]
    fn constant_steer_traces_circle() {
        let p = params();
        let steer = 1.0; // full lock
        let radius = p.min_turning_radius();
        let mut s = VehicleState::new(Pose2::default(), 1.0);
        // drive at fixed speed with held steering; use continuous model
        let mut max_err: f64 = 0.0;
        // circle center is at (0, radius) for a left turn from the origin
        let center = Vec2::new(0.0, radius);
        for _ in 0..2000 {
            s = step_continuous(&s, 0.0, steer * p.max_steer, &p, DT);
            let r = s.pose.position().distance(center);
            max_err = max_err.max((r - radius).abs());
        }
        assert!(max_err < 0.02 * radius, "radius error {max_err}");
    }

    #[test]
    fn left_steer_turns_left_forward_and_right_in_reverse() {
        let p = params();
        let mut fwd = VehicleState::new(Pose2::default(), 1.0);
        fwd = step_continuous(&fwd, 0.0, 0.3, &p, 1.0);
        assert!(fwd.pose.theta > 0.0);
        let mut rev = VehicleState::new(Pose2::default(), -1.0);
        rev = step_continuous(&rev, 0.0, 0.3, &p, 1.0);
        assert!(rev.pose.theta < 0.0); // same wheel angle, opposite yaw rate
    }

    #[test]
    fn zero_speed_zero_action_is_fixed_point() {
        let p = params();
        let s0 = VehicleState::at_rest(Pose2::new(1.0, 2.0, 0.5));
        let s1 = step(&s0, &Action::coast(), &p, DT);
        assert_eq!(s0, s1);
    }

    #[test]
    fn continuous_clamps_steer() {
        let p = params();
        let s = VehicleState::new(Pose2::default(), 1.0);
        let a = step_continuous(&s, 0.0, 10.0, &p, DT);
        let b = step_continuous(&s, 0.0, p.max_steer, &p, DT);
        assert!((a.pose.theta - b.pose.theta).abs() < 1e-12);
    }

    #[test]
    fn rollout_length_and_start() {
        let p = params();
        let s = VehicleState::at_rest(Pose2::default());
        let actions = vec![Action::forward(1.0, 0.0); 10];
        let traj = rollout(&s, &actions, &p, DT);
        assert_eq!(traj.len(), 11);
        assert_eq!(traj[0], s);
        assert!(traj[10].pose.x > traj[0].pose.x);
    }

    #[test]
    fn dt_halving_converges() {
        // midpoint integration: quartering dt should shrink the error
        let p = params();
        let drive = |dt: f64, n: usize| {
            let mut s = VehicleState::new(Pose2::default(), 1.0);
            for _ in 0..n {
                s = step_continuous(&s, 0.0, 0.4, &p, dt);
            }
            s.pose
        };
        let coarse = drive(0.1, 100);
        let fine = drive(0.01, 1000);
        let finest = drive(0.001, 10000);
        let e1 = coarse.position().distance(finest.position());
        let e2 = fine.position().distance(finest.position());
        assert!(e2 < e1, "finer steps should be more accurate");
        assert!(e2 < 1e-3);
    }
}
