//! Vehicle state representation.

use crate::VehicleParams;
use icoil_geom::{Obb, Pose2, Vec2};
use serde::{Deserialize, Serialize};

/// Kinematic state of the ego-vehicle: rear-axle pose plus signed speed.
///
/// The pose reference point is the **rear axle center** — the standard
/// choice for the kinematic bicycle model, because the rear axle traces
/// circular arcs under constant steering.
///
/// # Example
///
/// ```
/// use icoil_vehicle::{VehicleParams, VehicleState};
/// use icoil_geom::Pose2;
///
/// let s = VehicleState::new(Pose2::new(0.0, 0.0, 0.0), 1.0);
/// let fp = s.footprint(&VehicleParams::default());
/// assert!(fp.contains(s.pose.position()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VehicleState {
    /// Rear-axle pose in the world frame.
    pub pose: Pose2,
    /// Signed longitudinal speed (m/s): positive forward, negative reverse.
    pub velocity: f64,
}

impl VehicleState {
    /// Creates a state from a pose and a signed speed.
    pub fn new(pose: Pose2, velocity: f64) -> Self {
        VehicleState { pose, velocity }
    }

    /// A stationary state at the given pose.
    pub fn at_rest(pose: Pose2) -> Self {
        VehicleState {
            pose,
            velocity: 0.0,
        }
    }

    /// World position of the body center (between the axles, offset from
    /// the rear axle by [`VehicleParams::center_offset`]).
    pub fn body_center(&self, params: &VehicleParams) -> Vec2 {
        self.pose
            .to_world(Vec2::new(params.center_offset(), 0.0))
    }

    /// The body footprint as an oriented box.
    pub fn footprint(&self, params: &VehicleParams) -> Obb {
        let center = self.body_center(params);
        Obb::from_pose(
            Pose2::from_parts(center, self.pose.theta),
            params.length,
            params.width,
        )
    }

    /// World position of the front bumper center.
    pub fn front_bumper(&self, params: &VehicleParams) -> Vec2 {
        self.pose
            .to_world(Vec2::new(params.length - params.rear_overhang, 0.0))
    }

    /// Returns `true` when the speed magnitude is below `tol`.
    pub fn is_stopped(&self, tol: f64) -> bool {
        self.velocity.abs() <= tol
    }

    /// Returns `true` when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.pose.is_finite() && self.velocity.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn footprint_contains_axles() {
        let p = VehicleParams::default();
        let s = VehicleState::at_rest(Pose2::new(3.0, 4.0, 0.7));
        let fp = s.footprint(&p);
        assert!(fp.contains(s.pose.position()));
        assert!(fp.contains(s.front_bumper(&p) - Vec2::from_angle(0.7) * 0.01));
        assert!((fp.length() - p.length).abs() < 1e-12);
        assert!((fp.width() - p.width).abs() < 1e-12);
    }

    #[test]
    fn footprint_rotates_with_heading() {
        let p = VehicleParams::default();
        let east = VehicleState::at_rest(Pose2::new(0.0, 0.0, 0.0)).footprint(&p);
        let north = VehicleState::at_rest(Pose2::new(0.0, 0.0, FRAC_PI_2)).footprint(&p);
        // Centers differ because the body center is ahead of the rear axle.
        assert!((east.center.x - p.center_offset()).abs() < 1e-12);
        assert!((north.center.y - p.center_offset()).abs() < 1e-12);
    }

    #[test]
    fn stopped_predicate() {
        let s = VehicleState::new(Pose2::default(), 0.05);
        assert!(s.is_stopped(0.1));
        assert!(!s.is_stopped(0.01));
    }

    #[test]
    fn serde_roundtrip() {
        let s = VehicleState::new(Pose2::new(1.0, 2.0, 0.3), -0.7);
        let j = serde_json::to_string(&s).unwrap();
        let t: VehicleState = serde_json::from_str(&j).unwrap();
        assert_eq!(s, t);
    }
}
