//! Continuous ↔ discrete action conversion (§IV-A).
//!
//! The paper turns imitation learning into an `M`-way classification
//! problem by discretizing the continuous driving actions. This module
//! provides the codec: `M = 3 × steer_bins` classes, the cartesian product
//! of a speed mode (reverse / stop / forward) and a uniform steering grid.

use crate::Action;
use serde::{Deserialize, Serialize};

/// Longitudinal component of a discretized action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeedMode {
    /// Drive backwards at the codec throttle.
    Reverse,
    /// Full brake.
    Stop,
    /// Drive forwards at the codec throttle.
    Forward,
}

impl SpeedMode {
    /// All modes, in class-index order.
    pub const ALL: [SpeedMode; 3] = [SpeedMode::Reverse, SpeedMode::Stop, SpeedMode::Forward];

    fn index(self) -> usize {
        match self {
            SpeedMode::Reverse => 0,
            SpeedMode::Stop => 1,
            SpeedMode::Forward => 2,
        }
    }
}

/// Converts between continuous [`Action`]s and discrete class indices.
///
/// # Example
///
/// ```
/// use icoil_vehicle::{Action, ActionCodec};
///
/// let codec = ActionCodec::new(7, 0.6).unwrap();
/// assert_eq!(codec.num_classes(), 21);
/// let class = codec.encode(&Action::forward(0.8, 0.35));
/// let back = codec.decode(class);
/// assert!(!back.reverse);
/// assert!((back.steer - 0.333).abs() < 0.01); // snapped to the grid
/// assert_eq!(codec.encode(&back), class);      // encode∘decode = id
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActionCodec {
    steer_bins: usize,
    throttle: f64,
}

/// Error returned by [`ActionCodec::new`] for invalid configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCodecError;

impl std::fmt::Display for InvalidCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "action codec needs an odd steer-bin count of at least 3 and throttle in (0, 1]"
        )
    }
}

impl std::error::Error for InvalidCodecError {}

impl Default for ActionCodec {
    /// Seven steering bins at 0.6 throttle — the configuration used by the
    /// paper-scale experiments (`M = 21`).
    fn default() -> Self {
        ActionCodec {
            steer_bins: 7,
            throttle: 0.6,
        }
    }
}

impl ActionCodec {
    /// Creates a codec with `steer_bins` steering levels (odd, ≥ 3, so the
    /// grid contains exactly zero) driving at fixed `throttle`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCodecError`] when `steer_bins` is even or below 3,
    /// or `throttle` is outside `(0, 1]`.
    pub fn new(steer_bins: usize, throttle: f64) -> Result<Self, InvalidCodecError> {
        if steer_bins < 3 || steer_bins.is_multiple_of(2) || !(0.0..=1.0).contains(&throttle) || throttle == 0.0
        {
            return Err(InvalidCodecError);
        }
        Ok(ActionCodec {
            steer_bins,
            throttle,
        })
    }

    /// Number of discrete classes `M`.
    pub fn num_classes(&self) -> usize {
        3 * self.steer_bins
    }

    /// Number of steering bins.
    pub fn steer_bins(&self) -> usize {
        self.steer_bins
    }

    /// Fixed throttle magnitude used by drive classes.
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// The normalized steering value of bin `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn steer_value(&self, k: usize) -> f64 {
        assert!(k < self.steer_bins, "steer bin out of range");
        -1.0 + 2.0 * k as f64 / (self.steer_bins - 1) as f64
    }

    /// The steering bin nearest to a normalized steering value.
    pub fn steer_bin(&self, steer: f64) -> usize {
        let s = steer.clamp(-1.0, 1.0);
        let k = ((s + 1.0) * 0.5 * (self.steer_bins - 1) as f64).round();
        (k as usize).min(self.steer_bins - 1)
    }

    /// Class index of a `(mode, steering-bin)` pair.
    ///
    /// # Panics
    ///
    /// Panics when `steer_bin` is out of range.
    pub fn class_of(&self, mode: SpeedMode, steer_bin: usize) -> usize {
        assert!(steer_bin < self.steer_bins, "steer bin out of range");
        mode.index() * self.steer_bins + steer_bin
    }

    /// Decomposes a class index into `(mode, steering-bin)`.
    ///
    /// # Panics
    ///
    /// Panics when `class` ≥ [`ActionCodec::num_classes`].
    pub fn parts_of(&self, class: usize) -> (SpeedMode, usize) {
        assert!(class < self.num_classes(), "class out of range");
        (SpeedMode::ALL[class / self.steer_bins], class % self.steer_bins)
    }

    /// Encodes a continuous action into the nearest class.
    ///
    /// The mode is `Stop` when braking dominates or when neither pedal is
    /// meaningfully pressed; otherwise the gear flag selects
    /// forward/reverse.
    pub fn encode(&self, action: &Action) -> usize {
        let a = action.clamped();
        let mode = if a.brake >= 0.5 || (a.throttle < 0.05 && a.brake >= a.throttle) {
            SpeedMode::Stop
        } else if a.reverse {
            SpeedMode::Reverse
        } else {
            SpeedMode::Forward
        };
        self.class_of(mode, self.steer_bin(a.steer))
    }

    /// Decodes a class index into its canonical continuous action.
    ///
    /// # Panics
    ///
    /// Panics when `class` ≥ [`ActionCodec::num_classes`].
    pub fn decode(&self, class: usize) -> Action {
        let (mode, bin) = self.parts_of(class);
        let steer = self.steer_value(bin);
        match mode {
            SpeedMode::Reverse => Action::backward(self.throttle, steer),
            SpeedMode::Forward => Action::forward(self.throttle, steer),
            SpeedMode::Stop => Action {
                throttle: 0.0,
                brake: 1.0,
                steer,
                reverse: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ActionCodec::new(7, 0.6).is_ok());
        assert!(ActionCodec::new(6, 0.6).is_err()); // even
        assert!(ActionCodec::new(1, 0.6).is_err()); // too few
        assert!(ActionCodec::new(7, 0.0).is_err()); // zero throttle
        assert!(ActionCodec::new(7, 1.5).is_err()); // out of range
    }

    #[test]
    fn steer_grid_symmetric_and_contains_zero() {
        let c = ActionCodec::new(7, 0.6).unwrap();
        assert_eq!(c.steer_value(0), -1.0);
        assert_eq!(c.steer_value(6), 1.0);
        assert_eq!(c.steer_value(3), 0.0);
        for k in 0..7 {
            assert!((c.steer_value(k) + c.steer_value(6 - k)).abs() < 1e-12);
        }
    }

    #[test]
    fn encode_decode_identity_on_classes() {
        let c = ActionCodec::new(5, 0.7).unwrap();
        for class in 0..c.num_classes() {
            assert_eq!(c.encode(&c.decode(class)), class, "class {class}");
        }
    }

    #[test]
    fn decode_encode_quantizes_steer() {
        let c = ActionCodec::default();
        let a = Action::forward(0.9, 0.29);
        let q = c.decode(c.encode(&a));
        // nearest grid point to 0.29 with 7 bins is 1/3
        assert!((q.steer - 1.0 / 3.0).abs() < 1e-12);
        assert!(!q.reverse);
    }

    #[test]
    fn braking_maps_to_stop() {
        let c = ActionCodec::default();
        let a = Action {
            throttle: 0.0,
            brake: 1.0,
            steer: 0.0,
            reverse: false,
        };
        let (mode, _) = c.parts_of(c.encode(&a));
        assert_eq!(mode, SpeedMode::Stop);
        // coasting with no pedals also maps to Stop
        let (mode, _) = c.parts_of(c.encode(&Action::coast()));
        assert_eq!(mode, SpeedMode::Stop);
    }

    #[test]
    fn reverse_flag_respected() {
        let c = ActionCodec::default();
        let (mode, _) = c.parts_of(c.encode(&Action::backward(0.8, 0.0)));
        assert_eq!(mode, SpeedMode::Reverse);
    }

    #[test]
    fn class_layout_covers_all_pairs() {
        let c = ActionCodec::new(3, 0.5).unwrap();
        let mut seen = std::collections::HashSet::new();
        for mode in SpeedMode::ALL {
            for bin in 0..3 {
                seen.insert(c.class_of(mode, bin));
            }
        }
        assert_eq!(seen.len(), c.num_classes());
        assert_eq!(c.num_classes(), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_out_of_range_panics() {
        let c = ActionCodec::default();
        let _ = c.decode(c.num_classes());
    }

    #[test]
    fn decoded_actions_are_valid() {
        let c = ActionCodec::default();
        for class in 0..c.num_classes() {
            assert!(c.decode(class).validate().is_ok());
        }
    }
}
