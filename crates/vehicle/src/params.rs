//! Vehicle geometry and dynamic limits.

use serde::{Deserialize, Serialize};

/// Geometric and dynamic parameters of the ego-vehicle.
///
/// Defaults model the compact car used on the MoCAM sandbox (a roughly
/// 1:1-scaled CARLA hatchback): low parking speeds, moderate steering lock.
///
/// # Example
///
/// ```
/// use icoil_vehicle::VehicleParams;
///
/// let p = VehicleParams::default();
/// assert!(p.min_turning_radius() > 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Body length (meters).
    pub length: f64,
    /// Body width (meters).
    pub width: f64,
    /// Wheelbase: distance between axles (meters).
    pub wheelbase: f64,
    /// Distance from the rear axle to the rear bumper (meters).
    pub rear_overhang: f64,
    /// Maximum steering-wheel angle at the front wheels (radians).
    pub max_steer: f64,
    /// Maximum forward speed (m/s) — low for parking maneuvers.
    pub max_speed: f64,
    /// Maximum reverse speed (m/s), expressed positive.
    pub max_reverse_speed: f64,
    /// Maximum drive acceleration (m/s²).
    pub max_accel: f64,
    /// Maximum braking deceleration (m/s²), expressed positive.
    pub max_brake: f64,
    /// Linear rolling-drag coefficient (1/s); decelerates the car when
    /// coasting.
    pub drag: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams {
            length: 4.2,
            width: 1.8,
            wheelbase: 2.6,
            rear_overhang: 0.8,
            max_steer: 0.6,
            max_speed: 2.5,
            max_reverse_speed: 1.5,
            max_accel: 1.5,
            max_brake: 4.0,
            drag: 0.15,
        }
    }
}

impl VehicleParams {
    /// Minimum turning radius at full steering lock (rear-axle trace).
    pub fn min_turning_radius(&self) -> f64 {
        self.wheelbase / self.max_steer.tan()
    }

    /// Longitudinal offset from the rear axle to the body center.
    pub fn center_offset(&self) -> f64 {
        self.length * 0.5 - self.rear_overhang
    }

    /// The three-circle coverage model of the body footprint, shared by
    /// the global planner and the MPC collision constraints so both use
    /// the *same* conservative approximation (mismatched models wedge the
    /// MPC on paths the planner accepted).
    ///
    /// Returns `(longitudinal offset from the rear axle, radius)` pairs
    /// whose union contains the full body rectangle.
    pub fn coverage_circles(&self) -> [(f64, f64); 3] {
        let seg = self.length / 3.0;
        let half_seg = seg * 0.5;
        let radius = half_seg.hypot(self.width * 0.5);
        let rear = -self.rear_overhang;
        [
            (rear + half_seg, radius),
            (rear + seg + half_seg, radius),
            (rear + 2.0 * seg + half_seg, radius),
        ]
    }

    /// Validates that every parameter is finite and within a sane range.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(&str, bool); 9] = [
            ("length must be positive", self.length > 0.0),
            ("width must be positive", self.width > 0.0),
            (
                "wheelbase must be positive and fit in the body",
                self.wheelbase > 0.0 && self.wheelbase < self.length,
            ),
            (
                "rear overhang must be non-negative and shorter than the body",
                self.rear_overhang >= 0.0 && self.rear_overhang < self.length,
            ),
            (
                "max steer must be in (0, π/2)",
                self.max_steer > 0.0 && self.max_steer < std::f64::consts::FRAC_PI_2,
            ),
            ("max speed must be positive", self.max_speed > 0.0),
            (
                "max reverse speed must be positive",
                self.max_reverse_speed > 0.0,
            ),
            (
                "accel and brake must be positive",
                self.max_accel > 0.0 && self.max_brake > 0.0,
            ),
            ("drag must be non-negative", self.drag >= 0.0),
        ];
        for (msg, ok) in checks {
            if !ok {
                return Err(msg.to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(VehicleParams::default().validate().is_ok());
    }

    #[test]
    fn turning_radius_formula() {
        let p = VehicleParams {
            wheelbase: 2.0,
            max_steer: std::f64::consts::FRAC_PI_4,
            ..VehicleParams::default()
        };
        assert!((p.min_turning_radius() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn center_offset_within_body() {
        let p = VehicleParams::default();
        assert!(p.center_offset() > 0.0 && p.center_offset() < p.length);
    }

    #[test]
    fn coverage_circles_contain_footprint() {
        use icoil_geom::Vec2;
        let p = VehicleParams::default();
        let circles = p.coverage_circles();
        // sample the body rectangle (rear-axle frame) densely; every
        // point must lie inside at least one circle
        let x0 = -p.rear_overhang;
        let x1 = p.length - p.rear_overhang;
        for i in 0..=40 {
            for j in 0..=20 {
                let x = x0 + (x1 - x0) * i as f64 / 40.0;
                let y = -p.width * 0.5 + p.width * j as f64 / 20.0;
                let covered = circles.iter().any(|&(off, r)| {
                    Vec2::new(x - off, y).norm() <= r + 1e-9
                });
                assert!(covered, "body point ({x:.2}, {y:.2}) uncovered");
            }
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        let p = VehicleParams {
            width: -1.0,
            ..VehicleParams::default()
        };
        assert!(p.validate().is_err());
        let p = VehicleParams {
            wheelbase: 10.0, // longer than body
            ..VehicleParams::default()
        };
        assert!(p.validate().is_err());
        let p = VehicleParams {
            max_steer: 2.0, // beyond π/2
            ..VehicleParams::default()
        };
        assert!(p.validate().is_err());
    }
}
