//! The online-adaptation (DAgger-style) serving loop shared by the
//! `loadgen` adapt phase, the `gen_demos` seeder and the `adapt_smoke`
//! gate.
//!
//! The flywheel: every CO-mode frame a running server answers is a free
//! expert label — the CO stack *is* the expert the IL network imitates.
//! The bench client keeps a **mirror world** per session (world,
//! perception pipeline, and a relabeling CO controller, all rebuilt from
//! the same scenario), so it can reconstruct bit-identically the BEV
//! image the server's IL lane saw each frame without any server-side
//! data path. CO-mode responses pair that BEV with the served (expert)
//! action; shed frames — where the server answered with a degraded full
//! brake instead of solving — are relabeled offline by running the
//! mirror's own CO controller on the mirrored state. Harvested frames
//! land in a per-family reservoir [`AdaptDataset`]; between generations
//! the retrainer warm-starts from the previous weights and the result is
//! published to the shared [`WeightStore`], which new sessions pin on
//! their next episode.

use icoil_adapt::{AdaptDataset, LabelAggregator, WeightStore};
use icoil_co::CoController;
use icoil_il::TrainConfig;
use icoil_perception::Perception;
use icoil_serve::{Serve, ServeConfig, SessionSpec};
use icoil_telemetry::Metrics;
use icoil_vehicle::ActionCodec;
use icoil_world::episode::Observation;
use icoil_world::{MapFamilyKind, ProcGen, ProcGenConfig, Scenario, World};
use std::sync::Arc;

/// Run shape of one adaptation generation: which families to serve, how
/// many episodes each, and how the retraining between generations is
/// configured.
#[derive(Debug, Clone)]
pub struct AdaptOptions {
    /// Families to serve each generation (the bench phase uses the hard
    /// tail: `parallel_curb`, `dead_end_stub`, `crowded_lot`).
    pub families: Vec<MapFamilyKind>,
    /// Episodes per family per generation. Seeds are fixed per (family,
    /// episode) slot, so every generation replays the same scenario set
    /// and mode-share movement is attributable to the weights alone.
    pub sessions_per_family: u64,
    /// Frames stepped per episode.
    pub frames_per_session: u64,
    /// Base seed for the evaluation scenario set.
    pub seed: u64,
    /// Training passes per retraining round (cumulative across
    /// generations, since each round warm-starts from the last).
    pub epochs_per_generation: usize,
    /// Mini-batch size for retraining.
    pub batch_size: usize,
    /// Adam learning rate for retraining.
    pub lr: f32,
}

impl Default for AdaptOptions {
    fn default() -> Self {
        AdaptOptions {
            families: vec![
                MapFamilyKind::ParallelCurb,
                MapFamilyKind::DeadEndStub,
                MapFamilyKind::CrowdedLot,
            ],
            sessions_per_family: 2,
            frames_per_session: 40,
            seed: 0x1C01_1AD0,
            epochs_per_generation: 8,
            batch_size: 16,
            lr: 3e-3,
        }
    }
}

impl AdaptOptions {
    /// The deterministic evaluation scenario for one (family, episode)
    /// slot — identical across generations by construction.
    pub fn scenario(&self, family: MapFamilyKind, episode: u64) -> Scenario {
        let gen = ProcGen::new(ProcGenConfig {
            family: Some(family),
            ..ProcGenConfig::default()
        });
        // disjoint seed blocks per family, mirroring the scenarios bin
        gen.generate(self.seed + family as u64 * 1000 + episode).build()
    }

    /// The retraining configuration for one generation.
    pub fn train_config(&self, generation: u32) -> TrainConfig {
        // Label smoothing anneals across retraining rounds: the smoothed
        // target distribution sets the entropy floor the softmax
        // converges to, and the HSA gate reads exactly that entropy
        // (eq. 7) — so halving the smoothing each round strictly lowers
        // the floor and moves more frames below λ. Early rounds keep the
        // policy humble while the reservoir is thin; later rounds let
        // confidence sharpen as coverage grows.
        let label_smoothing = match generation {
            0 | 1 => 0.10,
            g => (0.04 / f32::powi(2.0, g as i32 - 2)).max(0.01),
        };
        TrainConfig {
            epochs: self.epochs_per_generation,
            batch_size: self.batch_size,
            lr: self.lr,
            // a fresh shuffle stream per generation, still deterministic
            seed: self.seed ^ u64::from(generation),
            label_smoothing,
        }
    }
}

/// What one serving generation measured, aggregated over every episode
/// of the generation's fixed evaluation scenario set.
#[derive(Debug, Clone)]
pub struct GenerationStats {
    /// The weight-store generation every session of this run pinned.
    pub weight_version: u32,
    /// Frames answered by the IL lane.
    pub il_frames: u64,
    /// Frames answered by an admitted CO solve.
    pub co_frames: u64,
    /// Frames shed by the CO deadline lane (degraded full brake).
    pub shed_frames: u64,
    /// Episodes that ended in a collision (the acceptance bar is zero).
    pub collisions: u64,
    /// Episodes that parked successfully within the stepped frames.
    pub successes: u64,
    /// Expert labels harvested into the dataset this generation.
    pub harvested: u64,
    /// The server's merged telemetry for the generation.
    pub metrics: Metrics,
}

impl GenerationStats {
    /// Mode-tagged frames this generation served.
    pub fn tagged_frames(&self) -> u64 {
        self.il_frames + self.co_frames + self.shed_frames
    }

    /// Fraction of mode-tagged frames served by the IL lane.
    pub fn il_share(&self) -> f64 {
        self.il_frames as f64 / (self.tagged_frames() as f64).max(1.0)
    }

    /// Fraction of mode-tagged frames that cost a CO solve or a shed —
    /// the expert load the adaptation loop is meant to shrink.
    pub fn co_shed_share(&self) -> f64 {
        (self.co_frames + self.shed_frames) as f64 / (self.tagged_frames() as f64).max(1.0)
    }
}

/// The client-side twin of one served session: enough replayed state to
/// reconstruct the server's per-frame sensing (world + perception are
/// pure functions of the scenario and the executed actions) and to
/// relabel shed frames with a local CO expert.
struct Mirror {
    id: u64,
    family: MapFamilyKind,
    world: World,
    perception: Perception,
    expert: CoController,
    done: bool,
}

/// Serves one generation of the fixed evaluation scenario set against
/// `store`'s currently-published weights, harvesting every CO-mode and
/// shed frame into `aggregator`.
///
/// # Panics
///
/// Panics when the server refuses a session or a step, or when the
/// mirror world diverges from the served trajectory (which would mean
/// the harvested BEV images no longer match what the policy saw).
pub fn run_generation(
    store: &Arc<WeightStore>,
    config: &ServeConfig,
    opts: &AdaptOptions,
    aggregator: &mut LabelAggregator,
) -> GenerationStats {
    let server = Serve::start_with_store(config.clone(), Arc::clone(store));
    let handle = server.handle();
    let mut mirrors: Vec<Mirror> = Vec::new();
    for &family in &opts.families {
        for episode in 0..opts.sessions_per_family {
            let scenario = opts.scenario(family, episode);
            let id = handle
                .create(SessionSpec::Scenario(Box::new(scenario.clone())))
                .expect("create adapt session");
            mirrors.push(Mirror {
                id,
                family,
                world: World::new(scenario.clone()),
                perception: Perception::new(config.icoil.bev, &scenario),
                expert: CoController::new(config.icoil.co, scenario.vehicle_params),
                done: false,
            });
        }
    }

    let mut stats = GenerationStats {
        weight_version: store.published(),
        il_frames: 0,
        co_frames: 0,
        shed_frames: 0,
        collisions: 0,
        successes: 0,
        harvested: 0,
        metrics: Metrics::new(),
    };
    let harvested_before = aggregator.co_frames() + aggregator.shed_frames();
    for _ in 0..opts.frames_per_session {
        for mirror in mirrors.iter_mut().filter(|m| !m.done) {
            // sense BEFORE stepping: this is exactly the sensing the
            // server computes for the same frame index
            let sensing = mirror.perception.observe(&Observation::new(&mirror.world));
            let resp = handle.step(mirror.id).expect("step adapt session");
            assert_eq!(
                resp.weight_version, stats.weight_version,
                "adapt sessions must pin the generation published at creation"
            );
            if resp.mode == "DONE" {
                mirror.done = true;
                continue;
            }
            match (resp.mode.as_str(), resp.shed) {
                ("IL", _) => stats.il_frames += 1,
                ("CO", true) => {
                    stats.shed_frames += 1;
                    // the served action is a degraded brake, not a label —
                    // relabel offline with the mirror's own CO expert
                    let out = mirror
                        .expert
                        .control(&Observation::new(&mirror.world), &sensing.boxes);
                    aggregator.record_shed_frame(mirror.family, &sensing.bev, &out.action);
                }
                ("CO", false) => {
                    stats.co_frames += 1;
                    // the served CO action IS the expert label for this BEV
                    aggregator.record_co_frame(mirror.family, &sensing.bev, &resp.action);
                }
                (other, _) => panic!("unexpected serve mode {other:?}"),
            }
            mirror.world.step(&resp.action);
            let ego = mirror.world.ego();
            assert!(
                ego.pose.x == resp.x && ego.pose.y == resp.y && ego.pose.theta == resp.heading,
                "mirror world diverged from the served trajectory at frame {}",
                resp.frame
            );
            if let Some(outcome) = &resp.outcome {
                mirror.done = true;
                match outcome.as_str() {
                    "collision" => stats.collisions += 1,
                    "success" => stats.successes += 1,
                    _ => {}
                }
            }
        }
    }
    stats.harvested = aggregator.co_frames() + aggregator.shed_frames() - harvested_before;
    stats.metrics = handle.metrics().expect("adapt metrics snapshot");
    server.shutdown();
    stats
}

/// Seeds a generation-0 dataset by running the CO expert closed-loop
/// over `episodes` procedurally generated scenarios of each family —
/// the `gen_demos` entry point. Every frame is harvested through the
/// same perception pipeline the server uses, so generation-0 samples
/// are distributionally identical to the online harvest.
///
/// Returns the number of frames offered per family (reservoir caps may
/// keep fewer).
pub fn seed_demos(
    config: &ServeConfig,
    opts: &AdaptOptions,
    episodes: u64,
    aggregator: &mut LabelAggregator,
) -> [u64; MapFamilyKind::ALL.len()] {
    let mut offered = [0u64; MapFamilyKind::ALL.len()];
    for family in MapFamilyKind::ALL {
        for episode in 0..episodes {
            let scenario = opts.scenario(family, 10_000 + episode);
            let mut world = World::new(scenario.clone());
            let mut perception = Perception::new(config.icoil.bev, &scenario);
            let mut expert = CoController::new(config.icoil.co, scenario.vehicle_params);
            if world.collision_cause().is_some() {
                continue;
            }
            for _ in 0..opts.frames_per_session {
                let sensing = perception.observe(&Observation::new(&world));
                let out = expert.control(&Observation::new(&world), &sensing.boxes);
                aggregator.record_co_frame(family, &sensing.bev, &out.action);
                offered[family.index()] += 1;
                world.step(&out.action);
                if world.collision_cause().is_some()
                    || world.at_goal()
                    || world.time() >= config.max_time
                {
                    break;
                }
            }
        }
    }
    offered
}

/// A fresh aggregator sized for the serving config's BEV geometry.
pub fn new_aggregator(config: &ServeConfig, cap_per_family: usize, seed: u64) -> LabelAggregator {
    LabelAggregator::new(
        ActionCodec::default(),
        AdaptDataset::for_bev(&config.icoil.bev, cap_per_family, seed),
    )
}

/// What a full adaptation phase produced: one [`GenerationStats`] per
/// serving generation (generation 0 runs the seed model) and the final
/// dataset size.
#[derive(Debug, Clone)]
pub struct AdaptPhaseOutcome {
    /// Per-generation serving statistics, generation 0 first.
    pub generations: Vec<GenerationStats>,
    /// Frames in the reservoir dataset after the last harvest.
    pub dataset_len: usize,
    /// Total frames ever offered to the reservoirs.
    pub dataset_seen: u64,
}

impl AdaptPhaseOutcome {
    /// Server telemetry merged across every generation (per-family
    /// CO-admit/shed counters accumulate here).
    pub fn merged_metrics(&self) -> Metrics {
        let mut merged = Metrics::new();
        for g in &self.generations {
            merged.merge(&g.metrics);
        }
        merged
    }
}

/// Runs the complete adaptation flywheel: seed the dataset with expert
/// demonstrations ([`seed_demos`]), then alternate serving generations
/// (harvesting CO/shed frames) with retraining rounds that warm-start
/// from the previous weights and publish into `store`. `generations`
/// counts serving runs, so `generations = 3` performs two retraining
/// rounds — the paper-loop minimum for a trend.
///
/// # Panics
///
/// Panics when a serving run misbehaves (see [`run_generation`]) or a
/// retraining round sees an empty dataset.
pub fn run_adapt_phase(
    store: &Arc<WeightStore>,
    config: &ServeConfig,
    opts: &AdaptOptions,
    generations: usize,
    seed_episodes: u64,
    cap_per_family: usize,
) -> AdaptPhaseOutcome {
    let mut aggregator = new_aggregator(config, cap_per_family, opts.seed);
    seed_demos(config, opts, seed_episodes, &mut aggregator);
    let mut stats = Vec::with_capacity(generations);
    for generation in 0..generations {
        stats.push(run_generation(store, config, opts, &mut aggregator));
        if generation + 1 < generations {
            let prev = store.latest();
            let (model, _report) = icoil_adapt::retrain(
                &prev.model,
                aggregator.dataset(),
                &opts.train_config(generation as u32 + 1),
            );
            store.publish(model, aggregator.dataset().len() as u64);
        }
    }
    AdaptPhaseOutcome {
        dataset_len: aggregator.dataset().len(),
        dataset_seen: aggregator.dataset().seen(),
        generations: stats,
    }
}
