//! Shared helpers for the iCOIL benchmark harness.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it; this library holds what they share: the cached trained
//! IL model, run-size knobs, and plain-text table/series printing.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use icoil_core::artifacts;
use icoil_core::EvalConfig;
use icoil_il::IlModel;
use std::path::PathBuf;

/// Environment knobs for run sizes, so CI can run small and a paper-scale
/// reproduction can run big.
///
/// * `ICOIL_EPISODES` — episodes per table cell (default 20);
/// * `ICOIL_TRAIN_EPISODES` — expert episodes in the training set
///   (default 6);
/// * `ICOIL_TRAIN_EPOCHS` — training epochs (default 15);
/// * `ICOIL_DAGGER_ROUNDS` — DAgger aggregation rounds (default 2);
/// * `ICOIL_PARALLELISM` — evaluation worker threads (default: available
///   cores); per-seed results are bit-identical at any setting.
#[derive(Debug, Clone, Copy)]
pub struct RunSize {
    /// Episodes per experimental cell.
    pub episodes: u64,
    /// Expert episodes collected for IL training.
    pub train_episodes: u64,
    /// IL training epochs.
    pub train_epochs: usize,
    /// DAgger aggregation rounds.
    pub dagger_rounds: usize,
    /// Worker threads for multi-episode evaluation.
    pub parallelism: usize,
}

impl RunSize {
    /// Reads the knobs from the environment.
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        RunSize {
            episodes: get("ICOIL_EPISODES", 20),
            train_episodes: get("ICOIL_TRAIN_EPISODES", 6),
            train_epochs: get("ICOIL_TRAIN_EPOCHS", 15) as usize,
            dagger_rounds: get("ICOIL_DAGGER_ROUNDS", 2) as usize,
            parallelism: EvalConfig::from_env().parallelism,
        }
    }

    /// The [`EvalConfig`] matching this run size.
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig::with_parallelism(self.parallelism)
    }
}

/// Path of the cached trained IL model.
pub fn model_path() -> PathBuf {
    PathBuf::from("artifacts/il_model.json")
}

/// Loads the shared trained model, training and caching it on first use.
///
/// # Panics
///
/// Panics when the artifact cannot be created (disk errors).
pub fn shared_model(size: &RunSize) -> IlModel {
    artifacts::load_or_train(
        &model_path(),
        size.train_episodes,
        size.train_epochs,
        size.dagger_rounds,
    )
    .expect("trained IL model artifact")
}

/// Prints a row of a fixed-width table.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Formats seconds with two decimals, rendering NaN as a dash.
pub fn fmt_time(t: f64) -> String {
    if t.is_nan() {
        "-".to_string()
    } else {
        format!("{t:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_size_defaults() {
        let s = RunSize {
            episodes: 20,
            train_episodes: 6,
            train_epochs: 15,
            dagger_rounds: 2,
            parallelism: 4,
        };
        assert!(s.episodes > 0);
        assert_eq!(s.eval_config().parallelism, 4);
        assert_eq!(fmt_time(f64::NAN), "-");
        assert_eq!(fmt_time(26.02), "26.02");
    }
}
