//! Shared helpers for the iCOIL benchmark harness.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it; this library holds what they share: the cached trained
//! IL model, run-size knobs, and plain-text table/series printing.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adapt;

use icoil_core::artifacts;
use icoil_core::EvalConfig;
use icoil_il::IlModel;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Environment knobs for run sizes, so CI can run small and a paper-scale
/// reproduction can run big.
///
/// * `ICOIL_EPISODES` — episodes per table cell (default 20);
/// * `ICOIL_TRAIN_EPISODES` — expert episodes in the training set
///   (default 6);
/// * `ICOIL_TRAIN_EPOCHS` — training epochs (default 15);
/// * `ICOIL_DAGGER_ROUNDS` — DAgger aggregation rounds (default 2);
/// * `ICOIL_PARALLELISM` — evaluation worker threads (default: available
///   cores); per-seed results are bit-identical at any setting.
#[derive(Debug, Clone, Copy)]
pub struct RunSize {
    /// Episodes per experimental cell.
    pub episodes: u64,
    /// Expert episodes collected for IL training.
    pub train_episodes: u64,
    /// IL training epochs.
    pub train_epochs: usize,
    /// DAgger aggregation rounds.
    pub dagger_rounds: usize,
    /// Worker threads for multi-episode evaluation.
    pub parallelism: usize,
}

impl RunSize {
    /// Reads the knobs from the environment.
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        RunSize {
            episodes: get("ICOIL_EPISODES", 20),
            train_episodes: get("ICOIL_TRAIN_EPISODES", 6),
            train_epochs: get("ICOIL_TRAIN_EPOCHS", 15) as usize,
            dagger_rounds: get("ICOIL_DAGGER_ROUNDS", 2) as usize,
            parallelism: EvalConfig::from_env().parallelism,
        }
    }

    /// The [`EvalConfig`] matching this run size.
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig::with_parallelism(self.parallelism)
    }
}

/// The performance-trajectory record emitted by the `perf` bin as
/// `BENCH_perf.json`.
///
/// Latency percentiles come from the telemetry histograms of the warm
/// CO drive (`frame_*` spans perception + control per frame, `solve_*`
/// the CO control stage alone). All float fields are sanitized before
/// serialization — the vendored JSON emitter renders non-finite floats
/// as `null`, which would silently break downstream schema checks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Closed-loop CO evaluation throughput (episodes per second).
    pub episodes_per_sec: f64,
    /// IL CNN inference rate on a live BEV image (Hz).
    pub il_hz: f64,
    /// IL CNN inference rate through the calibrated int8 lane on the
    /// same frames (Hz). Measured interleaved with `il_hz` and reported
    /// as best-of to keep the ratio meaningful on noisy boxes.
    #[serde(default)]
    pub il_hz_int8: f64,
    /// int8 GEMM micro-kernel throughput at an IL-shaped problem size
    /// (giga-ops/s; one multiply-add counts as two ops).
    #[serde(default)]
    pub gemm_gops_int8: f64,
    /// Warm-started CO solve rate along a real drive (Hz).
    pub co_hz: f64,
    /// CO solve rate with the warm-start memory cleared every frame (Hz).
    pub co_hz_cold: f64,
    /// Warm CO solve rate with the sparse KKT backend forced (Hz).
    pub co_hz_sparse: f64,
    /// Mean ADMM iterations per warm MPC step.
    pub mean_admm_iters_warm: f64,
    /// Mean ADMM iterations per cold MPC step.
    pub mean_admm_iters_cold: f64,
    /// IL rate over CO rate (the paper's headline speed gap).
    pub il_over_co_ratio: f64,
    /// Dense Cholesky microseconds per KKT factorization.
    pub kkt_factor_us_dense: f64,
    /// Sparse LDLᵀ numeric-refactor microseconds per KKT factorization.
    pub kkt_factor_us_sparse: f64,
    /// Fill ratio of the MPC KKT matrix.
    pub kkt_nnz_ratio: f64,
    /// Median per-frame latency of the warm CO drive (µs).
    #[serde(default)]
    pub frame_p50_us: f64,
    /// 95th-percentile per-frame latency of the warm CO drive (µs).
    #[serde(default)]
    pub frame_p95_us: f64,
    /// 99th-percentile per-frame latency of the warm CO drive (µs).
    #[serde(default)]
    pub frame_p99_us: f64,
    /// Median CO solve-stage latency of the warm drive (µs).
    #[serde(default)]
    pub solve_p50_us: f64,
    /// 95th-percentile CO solve-stage latency of the warm drive (µs).
    #[serde(default)]
    pub solve_p95_us: f64,
    /// 99th-percentile CO solve-stage latency of the warm drive (µs).
    #[serde(default)]
    pub solve_p99_us: f64,
    /// f32 matmul throughput with the scalar kernels forced (GFLOP/s).
    #[serde(default)]
    pub matmul_gflops_scalar: f64,
    /// f32 matmul throughput with the detected SIMD kernels (GFLOP/s).
    #[serde(default)]
    pub matmul_gflops_simd: f64,
    /// Batched sparse LDLᵀ refactor microseconds per block at width 1.
    #[serde(default)]
    pub batch_refactor_us_k1: f64,
    /// Batched sparse LDLᵀ refactor microseconds per block at width 4.
    #[serde(default)]
    pub batch_refactor_us_k4: f64,
    /// Batched sparse LDLᵀ refactor microseconds per block at width 16.
    #[serde(default)]
    pub batch_refactor_us_k16: f64,
    /// Kernel dispatch target the microbenchmarks ran on (e.g.
    /// `"avx2+fma"` or `"scalar"`).
    #[serde(default)]
    pub simd_dispatch: String,
    /// Timing discipline of the kernel microbenchmarks: each number is
    /// the best of this many timed repetitions.
    #[serde(default)]
    pub kernel_best_of: u64,
    /// Whether any measured field was non-finite before sanitization.
    #[serde(default)]
    pub had_nonfinite: bool,
    /// Worker threads the evaluation batch fanned across.
    pub parallelism: usize,
    /// Episodes in the evaluation batch.
    pub episodes: u64,
}

impl PerfReport {
    /// The float fields every `BENCH_perf.json` must carry, by JSON key.
    pub const NUMERIC_FIELDS: &'static [&'static str] = &[
        "episodes_per_sec",
        "il_hz",
        "il_hz_int8",
        "gemm_gops_int8",
        "co_hz",
        "co_hz_cold",
        "co_hz_sparse",
        "mean_admm_iters_warm",
        "mean_admm_iters_cold",
        "il_over_co_ratio",
        "kkt_factor_us_dense",
        "kkt_factor_us_sparse",
        "kkt_nnz_ratio",
        "frame_p50_us",
        "frame_p95_us",
        "frame_p99_us",
        "solve_p50_us",
        "solve_p95_us",
        "solve_p99_us",
        "matmul_gflops_scalar",
        "matmul_gflops_simd",
        "batch_refactor_us_k1",
        "batch_refactor_us_k4",
        "batch_refactor_us_k16",
    ];

    /// Clamps every non-finite float field to a finite value and records
    /// the occurrence in [`PerfReport::had_nonfinite`]. Returns whether
    /// anything was clamped.
    pub fn sanitize(&mut self) -> bool {
        let mut flagged = false;
        for v in [
            &mut self.episodes_per_sec,
            &mut self.il_hz,
            &mut self.il_hz_int8,
            &mut self.gemm_gops_int8,
            &mut self.co_hz,
            &mut self.co_hz_cold,
            &mut self.co_hz_sparse,
            &mut self.mean_admm_iters_warm,
            &mut self.mean_admm_iters_cold,
            &mut self.il_over_co_ratio,
            &mut self.kkt_factor_us_dense,
            &mut self.kkt_factor_us_sparse,
            &mut self.kkt_nnz_ratio,
            &mut self.frame_p50_us,
            &mut self.frame_p95_us,
            &mut self.frame_p99_us,
            &mut self.solve_p50_us,
            &mut self.solve_p95_us,
            &mut self.solve_p99_us,
            &mut self.matmul_gflops_scalar,
            &mut self.matmul_gflops_simd,
            &mut self.batch_refactor_us_k1,
            &mut self.batch_refactor_us_k4,
            &mut self.batch_refactor_us_k16,
        ] {
            icoil_telemetry::sanitize_field(v, &mut flagged);
        }
        self.had_nonfinite |= flagged;
        flagged
    }
}

/// Validates a parsed `BENCH_perf.json` against the [`PerfReport`]
/// schema: every numeric field present and finite, the run-size fields
/// integral.
///
/// # Errors
///
/// Returns the first violation found, naming the offending field.
pub fn validate_perf_json(v: &serde_json::Value) -> Result<(), String> {
    for key in PerfReport::NUMERIC_FIELDS {
        let field = v
            .get(key)
            .ok_or_else(|| format!("BENCH_perf.json is missing {key:?}"))?;
        let value = field
            .as_f64()
            .ok_or_else(|| format!("BENCH_perf.json field {key:?} is not a number"))?;
        if !value.is_finite() {
            return Err(format!("BENCH_perf.json field {key:?} is non-finite"));
        }
    }
    for key in ["parallelism", "episodes", "kernel_best_of"] {
        v.get(key)
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| format!("BENCH_perf.json field {key:?} is not an integer"))?;
    }
    let dispatch = v
        .get("simd_dispatch")
        .and_then(serde_json::Value::as_str)
        .ok_or_else(|| "BENCH_perf.json field \"simd_dispatch\" is not a string".to_string())?;
    if dispatch.is_empty() {
        return Err("BENCH_perf.json field \"simd_dispatch\" is empty".to_string());
    }
    v.get("had_nonfinite")
        .and_then(serde_json::Value::as_bool)
        .ok_or_else(|| "BENCH_perf.json field \"had_nonfinite\" is not a bool".to_string())?;
    Ok(())
}

/// The serving-load record emitted by the `loadgen` bin as
/// `BENCH_serve.json`.
///
/// Lane latency percentiles come from the server's own telemetry
/// histograms (`ServeIlLane` / `ServeCoLane`); the shed rates come from
/// the `co_admitted` / `co_shed` counters of two separate phases — a
/// comfortably-provisioned run that must not shed, and a deliberately
/// overloaded run that must shed rather than block. All float fields
/// are sanitized before serialization, as in [`PerfReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Complete sessions served per wall-clock second (all phases).
    pub sessions_per_sec: f64,
    /// Frames served per wall-clock second (all phases).
    pub frames_per_sec: f64,
    /// Frames served per wall-clock second with every session pinned to
    /// the int8 IL lane (same load shape as the provisioned phase).
    #[serde(default)]
    pub frames_per_sec_int8: f64,
    /// Median IL-lane frame latency (µs, request arrival → response).
    pub il_p50_us: f64,
    /// 95th-percentile IL-lane frame latency (µs).
    pub il_p95_us: f64,
    /// 99th-percentile IL-lane frame latency (µs).
    pub il_p99_us: f64,
    /// Median CO-lane frame latency (µs, request arrival → response).
    pub co_p50_us: f64,
    /// 95th-percentile CO-lane frame latency (µs).
    pub co_p95_us: f64,
    /// 99th-percentile CO-lane frame latency (µs).
    pub co_p99_us: f64,
    /// Mean IL micro-batch width across engine ticks.
    pub batch_size_mean: f64,
    /// Largest IL micro-batch width observed.
    pub batch_size_max: f64,
    /// Shed fraction of CO requests in the provisioned phase (must be 0).
    pub shed_rate_low: f64,
    /// Shed fraction of CO requests in the overload phase (must be > 0 —
    /// the lane degraded instead of blocking).
    pub shed_rate_overload: f64,
    /// Sessions/sec of the shard-scaling sweep at 1 engine shard.
    #[serde(default)]
    pub sweep_sessions_per_sec_s1: f64,
    /// Sessions/sec of the shard-scaling sweep at 2 engine shards.
    #[serde(default)]
    pub sweep_sessions_per_sec_s2: f64,
    /// Sessions/sec of the shard-scaling sweep at 4 engine shards.
    #[serde(default)]
    pub sweep_sessions_per_sec_s4: f64,
    /// Sessions/sec of the shard-scaling sweep at 8 engine shards.
    #[serde(default)]
    pub sweep_sessions_per_sec_s8: f64,
    /// Mean per-shard IL micro-batch width in the sweep at 1 shard.
    #[serde(default)]
    pub sweep_batch_mean_s1: f64,
    /// Mean per-shard IL micro-batch width in the sweep at 2 shards.
    #[serde(default)]
    pub sweep_batch_mean_s2: f64,
    /// Mean per-shard IL micro-batch width in the sweep at 4 shards.
    #[serde(default)]
    pub sweep_batch_mean_s4: f64,
    /// Mean per-shard IL micro-batch width in the sweep at 8 shards.
    #[serde(default)]
    pub sweep_batch_mean_s8: f64,
    /// IL mode share of adaptation generation 0 (the seed weights).
    #[serde(default)]
    pub adapt_il_share_g0: f64,
    /// IL mode share of adaptation generation 1 (after one retraining
    /// round; must be strictly above generation 0).
    #[serde(default)]
    pub adapt_il_share_g1: f64,
    /// IL mode share of adaptation generation 2 (after two retraining
    /// rounds; must be strictly above generation 1).
    #[serde(default)]
    pub adapt_il_share_g2: f64,
    /// CO + shed share of adaptation generation 0 — the expert load the
    /// flywheel is meant to shrink.
    #[serde(default)]
    pub adapt_co_shed_share_g0: f64,
    /// CO + shed share of adaptation generation 1 (strictly below
    /// generation 0).
    #[serde(default)]
    pub adapt_co_shed_share_g1: f64,
    /// CO + shed share of adaptation generation 2 (strictly below
    /// generation 1).
    #[serde(default)]
    pub adapt_co_shed_share_g2: f64,
    /// Collision episodes across every adaptation generation (must be 0
    /// — the safety-projection bar the mode-share trend is priced at).
    #[serde(default)]
    pub adapt_collisions: f64,
    /// Frames in the reservoir dataset after the last harvest.
    #[serde(default)]
    pub adapt_dataset_frames: f64,
    /// Safety-projection activations across the adaptation phase
    /// (IL-mode actions clipped by the per-frame constraint QP).
    #[serde(default)]
    pub adapt_safety_projections: f64,
    /// CO solves admitted for `reverse_in` sessions (adapt + overload
    /// phases; seeded sessions carry no family and count nowhere).
    #[serde(default)]
    pub co_admitted_reverse_in: f64,
    /// CO solves admitted for `parallel_curb` sessions.
    #[serde(default)]
    pub co_admitted_parallel_curb: f64,
    /// CO solves admitted for `angled_echelon` sessions.
    #[serde(default)]
    pub co_admitted_angled_echelon: f64,
    /// CO solves admitted for `pillared_garage` sessions.
    #[serde(default)]
    pub co_admitted_pillared_garage: f64,
    /// CO solves admitted for `dead_end_stub` sessions.
    #[serde(default)]
    pub co_admitted_dead_end_stub: f64,
    /// CO solves admitted for `crowded_lot` sessions.
    #[serde(default)]
    pub co_admitted_crowded_lot: f64,
    /// CO requests shed for `reverse_in` sessions.
    #[serde(default)]
    pub co_shed_reverse_in: f64,
    /// CO requests shed for `parallel_curb` sessions.
    #[serde(default)]
    pub co_shed_parallel_curb: f64,
    /// CO requests shed for `angled_echelon` sessions.
    #[serde(default)]
    pub co_shed_angled_echelon: f64,
    /// CO requests shed for `pillared_garage` sessions.
    #[serde(default)]
    pub co_shed_pillared_garage: f64,
    /// CO requests shed for `dead_end_stub` sessions.
    #[serde(default)]
    pub co_shed_dead_end_stub: f64,
    /// CO requests shed for `crowded_lot` sessions.
    #[serde(default)]
    pub co_shed_crowded_lot: f64,
    /// Whether any measured field was non-finite before sanitization.
    #[serde(default)]
    pub had_nonfinite: bool,
    /// Concurrent sessions in the provisioned phases.
    pub sessions: u64,
    /// Frames stepped per session per phase.
    pub frames_per_session: u64,
    /// CO lane workers in the provisioned phases.
    pub co_workers: u64,
    /// Concurrent sessions in the shard-scaling sweep (IL-only lane, so
    /// thousands are cheap).
    #[serde(default)]
    pub sweep_sessions: u64,
    /// Frames stepped per session in the shard-scaling sweep.
    #[serde(default)]
    pub sweep_frames: u64,
    /// Episodes served per adaptation generation (all families).
    #[serde(default)]
    pub adapt_sessions: u64,
    /// Frames stepped per episode in the adaptation phase.
    #[serde(default)]
    pub adapt_frames_per_session: u64,
    /// Serving generations in the adaptation phase (generation 0 runs
    /// the seed weights; each later one follows a retraining round).
    #[serde(default)]
    pub adapt_generations: u64,
}

impl ServeReport {
    /// The float fields every `BENCH_serve.json` must carry, by JSON key.
    pub const NUMERIC_FIELDS: &'static [&'static str] = &[
        "sessions_per_sec",
        "frames_per_sec",
        "frames_per_sec_int8",
        "il_p50_us",
        "il_p95_us",
        "il_p99_us",
        "co_p50_us",
        "co_p95_us",
        "co_p99_us",
        "batch_size_mean",
        "batch_size_max",
        "shed_rate_low",
        "shed_rate_overload",
        "sweep_sessions_per_sec_s1",
        "sweep_sessions_per_sec_s2",
        "sweep_sessions_per_sec_s4",
        "sweep_sessions_per_sec_s8",
        "sweep_batch_mean_s1",
        "sweep_batch_mean_s2",
        "sweep_batch_mean_s4",
        "sweep_batch_mean_s8",
        "adapt_il_share_g0",
        "adapt_il_share_g1",
        "adapt_il_share_g2",
        "adapt_co_shed_share_g0",
        "adapt_co_shed_share_g1",
        "adapt_co_shed_share_g2",
        "adapt_collisions",
        "adapt_dataset_frames",
        "adapt_safety_projections",
        "co_admitted_reverse_in",
        "co_admitted_parallel_curb",
        "co_admitted_angled_echelon",
        "co_admitted_pillared_garage",
        "co_admitted_dead_end_stub",
        "co_admitted_crowded_lot",
        "co_shed_reverse_in",
        "co_shed_parallel_curb",
        "co_shed_angled_echelon",
        "co_shed_pillared_garage",
        "co_shed_dead_end_stub",
        "co_shed_crowded_lot",
    ];

    /// Clamps every non-finite float field to a finite value and records
    /// the occurrence in [`ServeReport::had_nonfinite`]. Returns whether
    /// anything was clamped.
    pub fn sanitize(&mut self) -> bool {
        let mut flagged = false;
        for v in [
            &mut self.sessions_per_sec,
            &mut self.frames_per_sec,
            &mut self.frames_per_sec_int8,
            &mut self.il_p50_us,
            &mut self.il_p95_us,
            &mut self.il_p99_us,
            &mut self.co_p50_us,
            &mut self.co_p95_us,
            &mut self.co_p99_us,
            &mut self.batch_size_mean,
            &mut self.batch_size_max,
            &mut self.shed_rate_low,
            &mut self.shed_rate_overload,
            &mut self.sweep_sessions_per_sec_s1,
            &mut self.sweep_sessions_per_sec_s2,
            &mut self.sweep_sessions_per_sec_s4,
            &mut self.sweep_sessions_per_sec_s8,
            &mut self.sweep_batch_mean_s1,
            &mut self.sweep_batch_mean_s2,
            &mut self.sweep_batch_mean_s4,
            &mut self.sweep_batch_mean_s8,
            &mut self.adapt_il_share_g0,
            &mut self.adapt_il_share_g1,
            &mut self.adapt_il_share_g2,
            &mut self.adapt_co_shed_share_g0,
            &mut self.adapt_co_shed_share_g1,
            &mut self.adapt_co_shed_share_g2,
            &mut self.adapt_collisions,
            &mut self.adapt_dataset_frames,
            &mut self.adapt_safety_projections,
            &mut self.co_admitted_reverse_in,
            &mut self.co_admitted_parallel_curb,
            &mut self.co_admitted_angled_echelon,
            &mut self.co_admitted_pillared_garage,
            &mut self.co_admitted_dead_end_stub,
            &mut self.co_admitted_crowded_lot,
            &mut self.co_shed_reverse_in,
            &mut self.co_shed_parallel_curb,
            &mut self.co_shed_angled_echelon,
            &mut self.co_shed_pillared_garage,
            &mut self.co_shed_dead_end_stub,
            &mut self.co_shed_crowded_lot,
        ] {
            icoil_telemetry::sanitize_field(v, &mut flagged);
        }
        self.had_nonfinite |= flagged;
        flagged
    }
}

/// Validates a parsed `BENCH_serve.json` against the [`ServeReport`]
/// schema: every numeric field present and finite, the run-size fields
/// integral, and the shed rates inside `[0, 1]`.
///
/// # Errors
///
/// Returns the first violation found, naming the offending field.
pub fn validate_serve_json(v: &serde_json::Value) -> Result<(), String> {
    for key in ServeReport::NUMERIC_FIELDS {
        let field = v
            .get(key)
            .ok_or_else(|| format!("BENCH_serve.json is missing {key:?}"))?;
        let value = field
            .as_f64()
            .ok_or_else(|| format!("BENCH_serve.json field {key:?} is not a number"))?;
        if !value.is_finite() {
            return Err(format!("BENCH_serve.json field {key:?} is non-finite"));
        }
        let is_rate = key.starts_with("shed_rate")
            || key.starts_with("adapt_il_share")
            || key.starts_with("adapt_co_shed_share");
        if is_rate && !(0.0..=1.0).contains(&value) {
            return Err(format!(
                "BENCH_serve.json field {key:?} is outside [0, 1]: {value}"
            ));
        }
    }
    for key in [
        "sessions",
        "frames_per_session",
        "co_workers",
        "sweep_sessions",
        "sweep_frames",
        "adapt_sessions",
        "adapt_frames_per_session",
        "adapt_generations",
    ] {
        v.get(key)
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| format!("BENCH_serve.json field {key:?} is not an integer"))?;
    }
    v.get("had_nonfinite")
        .and_then(serde_json::Value::as_bool)
        .ok_or_else(|| "BENCH_serve.json field \"had_nonfinite\" is not a bool".to_string())?;
    Ok(())
}

/// Per-family row of the scenario-matrix record emitted by the
/// `scenarios` bin as `BENCH_scenarios.json`.
///
/// Outcome rates are fractions of the family's episode count; the HSA
/// mode share and the maneuver taxonomy come from recorded traces
/// (`il_mode_share` over frames carrying a mode tag, gear reversals and
/// the single-shot share via `icoil_world::classify_maneuver`); solve
/// percentiles come from the merged `co_solve` telemetry histogram of
/// every episode in the family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyScenarioStats {
    /// Stable family name ([`icoil_world::MapFamilyKind::name`]).
    pub family: String,
    /// Episodes run for this family.
    pub episodes: u64,
    /// Fraction of episodes that parked successfully.
    pub success_rate: f64,
    /// Fraction of episodes ending in a collision.
    pub collision_rate: f64,
    /// Fraction of episodes that timed out.
    pub timeout_rate: f64,
    /// Fraction of mode-tagged frames served by the IL lane.
    pub il_mode_share: f64,
    /// Mean gear reversals per episode.
    pub mean_gear_reversals: f64,
    /// Fraction of episodes classified as single-shot maneuvers (at most
    /// one gear reversal).
    pub single_shot_share: f64,
    /// Median CO solve latency across the family's episodes (µs).
    pub solve_p50_us: f64,
    /// 95th-percentile CO solve latency across the family's episodes (µs).
    pub solve_p95_us: f64,
}

impl FamilyScenarioStats {
    /// The float fields every family row must carry, by JSON key.
    pub const NUMERIC_FIELDS: &'static [&'static str] = &[
        "success_rate",
        "collision_rate",
        "timeout_rate",
        "il_mode_share",
        "mean_gear_reversals",
        "single_shot_share",
        "solve_p50_us",
        "solve_p95_us",
    ];

    /// The float fields that are rates and must lie inside `[0, 1]`.
    pub const RATE_FIELDS: &'static [&'static str] = &[
        "success_rate",
        "collision_rate",
        "timeout_rate",
        "il_mode_share",
        "single_shot_share",
    ];
}

/// The scenario-matrix record emitted by the `scenarios` bin as
/// `BENCH_scenarios.json`: one [`FamilyScenarioStats`] row per map
/// family, in [`icoil_world::MapFamilyKind::ALL`] order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenariosReport {
    /// One row per map family.
    pub families: Vec<FamilyScenarioStats>,
    /// Episodes run per family.
    pub episodes_per_family: u64,
    /// Whether the episodes drove the trained IL model artifact (`true`)
    /// or an untrained stand-in (`false`, `--untrained`).
    #[serde(default)]
    pub trained_model: bool,
    /// Whether any measured field was non-finite before sanitization.
    #[serde(default)]
    pub had_nonfinite: bool,
}

impl ScenariosReport {
    /// Clamps every non-finite float field to a finite value and records
    /// the occurrence in [`ScenariosReport::had_nonfinite`]. Returns
    /// whether anything was clamped.
    pub fn sanitize(&mut self) -> bool {
        let mut flagged = false;
        for f in &mut self.families {
            for v in [
                &mut f.success_rate,
                &mut f.collision_rate,
                &mut f.timeout_rate,
                &mut f.il_mode_share,
                &mut f.mean_gear_reversals,
                &mut f.single_shot_share,
                &mut f.solve_p50_us,
                &mut f.solve_p95_us,
            ] {
                icoil_telemetry::sanitize_field(v, &mut flagged);
            }
        }
        self.had_nonfinite |= flagged;
        flagged
    }
}

/// Validates a parsed `BENCH_scenarios.json` against the
/// [`ScenariosReport`] schema: every map family present exactly once
/// with a nonzero episode count, every numeric field finite, every rate
/// inside `[0, 1]`, and each row's outcome rates summing to one.
///
/// # Errors
///
/// Returns the first violation found, naming the offending family and
/// field.
pub fn validate_scenarios_json(v: &serde_json::Value) -> Result<(), String> {
    let families = v
        .get("families")
        .and_then(serde_json::Value::as_seq)
        .ok_or_else(|| "BENCH_scenarios.json field \"families\" is not an array".to_string())?;
    let mut seen: Vec<&str> = Vec::new();
    for row in families {
        let name = row
            .get("family")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| "BENCH_scenarios.json row is missing \"family\"".to_string())?;
        if icoil_world::MapFamilyKind::from_name(name).is_none() {
            return Err(format!("BENCH_scenarios.json names unknown family {name:?}"));
        }
        if seen.contains(&name) {
            return Err(format!("BENCH_scenarios.json lists family {name:?} twice"));
        }
        seen.push(name);
        let episodes = row
            .get("episodes")
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| format!("family {name:?} field \"episodes\" is not an integer"))?;
        if episodes == 0 {
            return Err(format!("family {name:?} reports zero episodes"));
        }
        for key in FamilyScenarioStats::NUMERIC_FIELDS {
            let value = row
                .get(key)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| format!("family {name:?} field {key:?} is not a number"))?;
            if !value.is_finite() {
                return Err(format!("family {name:?} field {key:?} is non-finite"));
            }
            if FamilyScenarioStats::RATE_FIELDS.contains(key) && !(0.0..=1.0).contains(&value) {
                return Err(format!(
                    "family {name:?} field {key:?} is outside [0, 1]: {value}"
                ));
            }
        }
        let outcome_sum: f64 = ["success_rate", "collision_rate", "timeout_rate"]
            .iter()
            .map(|k| row.get(*k).and_then(serde_json::Value::as_f64).unwrap_or(0.0))
            .sum();
        if (outcome_sum - 1.0).abs() > 1e-9 {
            return Err(format!(
                "family {name:?} outcome rates sum to {outcome_sum}, not 1"
            ));
        }
    }
    for kind in icoil_world::MapFamilyKind::ALL {
        if !seen.contains(&kind.name()) {
            return Err(format!(
                "BENCH_scenarios.json is missing family {:?}",
                kind.name()
            ));
        }
    }
    v.get("episodes_per_family")
        .and_then(serde_json::Value::as_u64)
        .ok_or_else(|| {
            "BENCH_scenarios.json field \"episodes_per_family\" is not an integer".to_string()
        })?;
    v.get("had_nonfinite")
        .and_then(serde_json::Value::as_bool)
        .ok_or_else(|| {
            "BENCH_scenarios.json field \"had_nonfinite\" is not a bool".to_string()
        })?;
    Ok(())
}

/// Path of the cached trained IL model.
pub fn model_path() -> PathBuf {
    PathBuf::from("artifacts/il_model.json")
}

/// Loads the shared trained model, training and caching it on first use.
///
/// # Panics
///
/// Panics when the artifact cannot be created (disk errors).
pub fn shared_model(size: &RunSize) -> IlModel {
    artifacts::load_or_train(
        &model_path(),
        size.train_episodes,
        size.train_epochs,
        size.dagger_rounds,
    )
    .expect("trained IL model artifact")
}

/// Prints a row of a fixed-width table.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Formats seconds with two decimals, rendering NaN as a dash.
pub fn fmt_time(t: f64) -> String {
    if t.is_nan() {
        "-".to_string()
    } else {
        format!("{t:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        PerfReport {
            episodes_per_sec: 1.5,
            il_hz: 4000.0,
            il_hz_int8: 9000.0,
            gemm_gops_int8: 20.0,
            co_hz: 3000.0,
            co_hz_cold: 2000.0,
            co_hz_sparse: 3200.0,
            mean_admm_iters_warm: 40.0,
            mean_admm_iters_cold: 120.0,
            il_over_co_ratio: 4000.0 / 3000.0,
            kkt_factor_us_dense: 60.0,
            kkt_factor_us_sparse: 10.0,
            kkt_nnz_ratio: 0.05,
            frame_p50_us: 300.0,
            frame_p95_us: 450.0,
            frame_p99_us: 600.0,
            solve_p50_us: 250.0,
            solve_p95_us: 400.0,
            solve_p99_us: 550.0,
            matmul_gflops_scalar: 2.0,
            matmul_gflops_simd: 8.0,
            batch_refactor_us_k1: 5.0,
            batch_refactor_us_k4: 4.5,
            batch_refactor_us_k16: 4.2,
            simd_dispatch: "avx2+fma".to_string(),
            kernel_best_of: 5,
            had_nonfinite: false,
            parallelism: 4,
            episodes: 20,
        }
    }

    #[test]
    fn sanitize_clamps_and_flags_nonfinite_fields() {
        let mut clean = sample_report();
        assert!(!clean.sanitize());
        assert!(!clean.had_nonfinite);

        let mut poisoned = sample_report();
        poisoned.il_over_co_ratio = f64::NAN;
        poisoned.frame_p99_us = f64::INFINITY;
        assert!(poisoned.sanitize());
        assert!(poisoned.had_nonfinite);
        assert!(poisoned.il_over_co_ratio.is_finite());
        assert!(poisoned.frame_p99_us.is_finite());
        // the flag is sticky across further (clean) sanitize passes
        assert!(!poisoned.sanitize());
        assert!(poisoned.had_nonfinite);
    }

    #[test]
    fn sanitized_report_reparses_and_validates() {
        let mut report = sample_report();
        report.solve_p50_us = f64::NEG_INFINITY;
        report.sanitize();
        let json = serde_json::to_string(&report).expect("serializes");
        let v: serde_json::Value = serde_json::from_str(&json).expect("round-trips");
        validate_perf_json(&v).expect("sanitized report passes the schema check");
    }

    #[test]
    fn validate_rejects_missing_and_nonfinite_fields() {
        let report = sample_report();
        let json = serde_json::to_string(&report).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        validate_perf_json(&v).expect("complete report validates");

        let mut map = match v {
            serde_json::Value::Map(m) => m,
            other => panic!("report is an object, got {other:?}"),
        };
        map.retain(|(k, _)| k != "co_hz");
        let err = validate_perf_json(&serde_json::Value::Map(map)).unwrap_err();
        assert!(err.contains("co_hz"), "names the missing field: {err}");

        // an unsanitized non-finite float serializes as null → not a number
        let mut poisoned = sample_report();
        poisoned.co_hz = f64::NAN;
        let json = serde_json::to_string(&poisoned).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let err = validate_perf_json(&v).unwrap_err();
        assert!(err.contains("co_hz"), "names the null field: {err}");
    }

    fn sample_serve_report() -> ServeReport {
        ServeReport {
            sessions_per_sec: 2.0,
            frames_per_sec: 120.0,
            frames_per_sec_int8: 180.0,
            il_p50_us: 400.0,
            il_p95_us: 900.0,
            il_p99_us: 1500.0,
            co_p50_us: 9000.0,
            co_p95_us: 30000.0,
            co_p99_us: 60000.0,
            batch_size_mean: 5.5,
            batch_size_max: 8.0,
            shed_rate_low: 0.0,
            shed_rate_overload: 0.6,
            sweep_sessions_per_sec_s1: 150.0,
            sweep_sessions_per_sec_s2: 280.0,
            sweep_sessions_per_sec_s4: 500.0,
            sweep_sessions_per_sec_s8: 700.0,
            sweep_batch_mean_s1: 6.0,
            sweep_batch_mean_s2: 4.5,
            sweep_batch_mean_s4: 3.2,
            sweep_batch_mean_s8: 2.1,
            adapt_il_share_g0: 0.0,
            adapt_il_share_g1: 0.1,
            adapt_il_share_g2: 0.25,
            adapt_co_shed_share_g0: 1.0,
            adapt_co_shed_share_g1: 0.9,
            adapt_co_shed_share_g2: 0.75,
            adapt_collisions: 0.0,
            adapt_dataset_frames: 600.0,
            adapt_safety_projections: 3.0,
            co_admitted_reverse_in: 10.0,
            co_admitted_parallel_curb: 80.0,
            co_admitted_angled_echelon: 10.0,
            co_admitted_pillared_garage: 10.0,
            co_admitted_dead_end_stub: 80.0,
            co_admitted_crowded_lot: 80.0,
            co_shed_reverse_in: 2.0,
            co_shed_parallel_curb: 0.0,
            co_shed_angled_echelon: 1.0,
            co_shed_pillared_garage: 0.0,
            co_shed_dead_end_stub: 0.0,
            co_shed_crowded_lot: 3.0,
            had_nonfinite: false,
            sessions: 8,
            frames_per_session: 50,
            co_workers: 2,
            sweep_sessions: 2000,
            sweep_frames: 8,
            adapt_sessions: 6,
            adapt_frames_per_session: 40,
            adapt_generations: 3,
        }
    }

    #[test]
    fn serve_report_sanitizes_and_validates() {
        let mut clean = sample_serve_report();
        assert!(!clean.sanitize());
        let json = serde_json::to_string(&clean).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        validate_serve_json(&v).expect("clean report validates");

        let mut poisoned = sample_serve_report();
        poisoned.co_p99_us = f64::INFINITY;
        assert!(poisoned.sanitize());
        assert!(poisoned.had_nonfinite);
        let json = serde_json::to_string(&poisoned).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        validate_serve_json(&v).expect("sanitized report validates");
    }

    #[test]
    fn validate_serve_rejects_bad_reports() {
        let report = sample_serve_report();
        let json = serde_json::to_string(&report).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let mut map = match v {
            serde_json::Value::Map(m) => m,
            other => panic!("report is an object, got {other:?}"),
        };
        map.retain(|(k, _)| k != "co_p50_us");
        let err = validate_serve_json(&serde_json::Value::Map(map)).unwrap_err();
        assert!(err.contains("co_p50_us"), "names the missing field: {err}");

        let mut out_of_range = sample_serve_report();
        out_of_range.shed_rate_overload = 1.5;
        let json = serde_json::to_string(&out_of_range).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let err = validate_serve_json(&v).unwrap_err();
        assert!(err.contains("shed_rate_overload"), "names the field: {err}");

        // mode shares are rates too
        let mut bad_share = sample_serve_report();
        bad_share.adapt_il_share_g1 = 1.5;
        let json = serde_json::to_string(&bad_share).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let err = validate_serve_json(&v).unwrap_err();
        assert!(err.contains("adapt_il_share_g1"), "names the field: {err}");

        // an unsanitized non-finite float serializes as null → not a number
        let mut poisoned = sample_serve_report();
        poisoned.frames_per_sec = f64::NAN;
        let json = serde_json::to_string(&poisoned).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let err = validate_serve_json(&v).unwrap_err();
        assert!(err.contains("frames_per_sec"), "names the null field: {err}");
    }

    fn sample_scenarios_report() -> ScenariosReport {
        let families = icoil_world::MapFamilyKind::ALL
            .into_iter()
            .map(|kind| FamilyScenarioStats {
                family: kind.name().to_string(),
                episodes: 4,
                success_rate: 0.5,
                collision_rate: 0.25,
                timeout_rate: 0.25,
                il_mode_share: 0.3,
                mean_gear_reversals: 1.5,
                single_shot_share: 0.75,
                solve_p50_us: 800.0,
                solve_p95_us: 2000.0,
            })
            .collect();
        ScenariosReport {
            families,
            episodes_per_family: 4,
            trained_model: true,
            had_nonfinite: false,
        }
    }

    #[test]
    fn scenarios_report_sanitizes_and_validates() {
        let mut clean = sample_scenarios_report();
        assert!(!clean.sanitize());
        let json = serde_json::to_string(&clean).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        validate_scenarios_json(&v).expect("clean report validates");

        let mut poisoned = sample_scenarios_report();
        poisoned.families[2].solve_p95_us = f64::NAN;
        assert!(poisoned.sanitize());
        assert!(poisoned.had_nonfinite);
        let json = serde_json::to_string(&poisoned).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        validate_scenarios_json(&v).expect("sanitized report validates");
    }

    #[test]
    fn validate_scenarios_rejects_bad_reports() {
        // a missing family is named
        let mut short = sample_scenarios_report();
        short.families.pop();
        let json = serde_json::to_string(&short).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let err = validate_scenarios_json(&v).unwrap_err();
        assert!(err.contains("missing family"), "{err}");

        // an out-of-range rate is named with its family
        let mut bad_rate = sample_scenarios_report();
        bad_rate.families[1].il_mode_share = 1.5;
        let json = serde_json::to_string(&bad_rate).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let err = validate_scenarios_json(&v).unwrap_err();
        assert!(err.contains("il_mode_share"), "{err}");

        // outcome rates must sum to one
        let mut lossy = sample_scenarios_report();
        lossy.families[0].timeout_rate = 0.0;
        let json = serde_json::to_string(&lossy).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let err = validate_scenarios_json(&v).unwrap_err();
        assert!(err.contains("sum"), "{err}");

        // zero episodes cannot satisfy the campaign's acceptance bar
        let mut empty = sample_scenarios_report();
        empty.families[3].episodes = 0;
        let json = serde_json::to_string(&empty).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let err = validate_scenarios_json(&v).unwrap_err();
        assert!(err.contains("zero episodes"), "{err}");
    }

    #[test]
    fn run_size_defaults() {
        let s = RunSize {
            episodes: 20,
            train_episodes: 6,
            train_epochs: 15,
            dagger_rounds: 2,
            parallelism: 4,
        };
        assert!(s.episodes > 0);
        assert_eq!(s.eval_config().parallelism, 4);
        assert_eq!(fmt_time(f64::NAN), "-");
        assert_eq!(fmt_time(26.02), "26.02");
    }
}
