//! Developer diagnostic: dataset statistics and trained-model accuracy.

use icoil_bench::{model_path, RunSize};
use icoil_il::{collect_demonstrations, IlModel};
use icoil_nn::Tensor;
use icoil_perception::BevConfig;
use icoil_vehicle::ActionCodec;
use icoil_world::{Difficulty, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let codec = ActionCodec::default();
    let bev = BevConfig::default();
    let scenarios: Vec<ScenarioConfig> = (0..size.train_episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, 1000 + s))
        .collect();
    let dataset = collect_demonstrations(&scenarios, &codec, &bev, 90.0);
    println!("dataset: {} samples", dataset.len());
    let counts = dataset.class_counts(codec.num_classes());
    for (c, n) in counts.iter().enumerate() {
        if *n > 0 {
            println!("  class {c:2}: {n:5} ({:?})", codec.decode(c));
        }
    }
    let json = std::fs::read_to_string(model_path()).expect("model artifact");
    let mut model = IlModel::from_json(&json).expect("valid model");
    // accuracy over the dataset in batches
    let mut correct = 0usize;
    let idx: Vec<usize> = (0..dataset.len()).collect();
    for chunk in idx.chunks(64) {
        let (x, y) = dataset.batch(chunk);
        let net = model.network_mut();
        let preds = net.predict(&Tensor::from_vec(x.shape().to_vec(), x.data().to_vec()).unwrap());
        correct += preds.iter().zip(&y).filter(|(p, t)| p == t).count();
    }
    println!(
        "training-set accuracy: {:.3}",
        correct as f64 / dataset.len() as f64
    );
}
