//! Online-adaptation smoke gate: a tiny end-to-end run of the DAgger
//! flywheel — seed demos → serve generation 0 → retrain → hot-swap →
//! serve generation 1 — with the invariants the loop promises asserted
//! along the way:
//!
//! * every session pins the weight generation published at its creation
//!   (checked per response inside the harvest loop);
//! * the client-side mirror worlds replay the served trajectories
//!   bit-identically (the harvest panics on any divergence);
//! * each retraining round publishes a fresh generation and the next
//!   serving run rides it;
//! * the harvested dataset and the published weights survive an on-disk
//!   save/load round trip, checksums intact.
//!
//! Run sizes honor `ICOIL_ADAPT_SESSIONS` (episodes per family per
//! generation, default 1), `ICOIL_ADAPT_FRAMES` (default 25),
//! `ICOIL_ADAPT_GENERATIONS` (default 2) and `ICOIL_ADAPT_EPOCHS`
//! (default 1):
//!
//! ```text
//! cargo run --release -p icoil-bench --bin adapt_smoke
//! ```

use icoil_adapt::{fingerprint, AdaptDataset, WeightArtifact, WeightStore};
use icoil_bench::adapt::{run_adapt_phase, AdaptOptions};
use icoil_core::ICoilConfig;
use icoil_il::IlModel;
use icoil_perception::BevConfig;
use icoil_serve::ServeConfig;
use icoil_telemetry::Counter;
use icoil_vehicle::ActionCodec;
use std::sync::Arc;
use std::time::Duration;

fn env_size(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let generations = env_size("ICOIL_ADAPT_GENERATIONS", 2) as usize;
    let opts = AdaptOptions {
        sessions_per_family: env_size("ICOIL_ADAPT_SESSIONS", 1),
        frames_per_session: env_size("ICOIL_ADAPT_FRAMES", 25),
        epochs_per_generation: env_size("ICOIL_ADAPT_EPOCHS", 1) as usize,
        ..AdaptOptions::default()
    };
    let mut icoil = ICoilConfig::default();
    icoil.safety.enabled = true;
    let config = ServeConfig {
        icoil,
        co_deadline: Duration::from_secs(30),
        queue_capacity: 64,
        ..ServeConfig::default()
    };

    let t0 = std::time::Instant::now();
    let seed_model = IlModel::untrained(ActionCodec::default(), config.icoil.bev, 1);
    let store = Arc::new(WeightStore::new(seed_model));
    let outcome = run_adapt_phase(&store, &config, &opts, generations, 1, 200);

    assert_eq!(
        outcome.generations.len(),
        generations,
        "one stats row per serving generation"
    );
    assert_eq!(
        store.generation_count(),
        generations,
        "each retraining round must publish exactly one generation"
    );
    for (i, g) in outcome.generations.iter().enumerate() {
        assert_eq!(
            g.weight_version, i as u32,
            "generation {i} must ride weight version {i}"
        );
        assert!(
            g.tagged_frames() > 0,
            "generation {i} served no mode-tagged frames"
        );
        println!(
            "adapt smoke: generation {} | weights v{} | il share {:.3} | co+shed share {:.3} \
             | harvested {} | collisions {} | safety clips {}",
            i,
            g.weight_version,
            g.il_share(),
            g.co_shed_share(),
            g.harvested,
            g.collisions,
            g.metrics.counter(Counter::SafetyProjections),
        );
    }
    assert!(
        outcome.generations[0].harvested > 0,
        "generation 0 (untrained weights) must harvest expert labels"
    );
    assert!(outcome.dataset_len > 0, "the reservoir dataset is empty");

    // the artifacts the loop would persist survive the disk round trip
    let dir = std::path::Path::new("target/adapt_smoke");
    std::fs::create_dir_all(dir).expect("create target/adapt_smoke");
    let latest = store.latest();
    let artifact = WeightArtifact {
        version: latest.version,
        parent: latest.version.checked_sub(1),
        seed: opts.seed,
        examples: latest.examples,
        model: latest.model.clone(),
    };
    let weights_path = dir.join("weights.icwt");
    artifact.save(&weights_path).expect("save weight artifact");
    let reloaded = WeightArtifact::load(&weights_path).expect("reload weight artifact");
    assert_eq!(
        fingerprint(&reloaded.model),
        fingerprint(&latest.model),
        "reloaded weights must be bit-identical to the published generation"
    );

    let dataset = AdaptDataset::for_bev(&BevConfig::default(), 4, opts.seed);
    let dataset_path = dir.join("dataset.icds");
    dataset.save(&dataset_path).expect("save dataset");
    AdaptDataset::load(&dataset_path).expect("reload dataset");

    println!(
        "adapt smoke passed: {} generation(s), dataset {} frame(s) ({} offered), {:.1}s",
        generations,
        outcome.dataset_len,
        outcome.dataset_seen,
        t0.elapsed().as_secs_f64()
    );
}
