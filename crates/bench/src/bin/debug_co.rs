//! Developer diagnostic: frame-level CO introspection on one scenario.

use icoil_co::{CoConfig, CoController};
use icoil_perception::{BevConfig, Perception};
use icoil_world::episode::Observation;
use icoil_world::{Difficulty, ScenarioConfig, World};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let difficulty = match std::env::args().nth(2).as_deref() {
        Some("normal") => Difficulty::Normal,
        Some("hard") => Difficulty::Hard,
        _ => Difficulty::Easy,
    };
    let scenario = ScenarioConfig::new(difficulty, seed).build();
    let params = scenario.vehicle_params;
    println!("start {:?}", scenario.start_state.pose);
    let noisy = std::env::args().nth(3).as_deref() == Some("noisy");
    let mut perception = Perception::new(BevConfig::default(), &scenario);
    let mut world = World::new(scenario);
    let mut co = CoController::new(CoConfig::default(), params);
    for i in 0..1200 {
        let boxes = if noisy {
            perception.observe(&Observation::new(&world)).boxes
        } else {
            world.obstacle_footprints()
        };
        let out = co.control(&Observation::new(&world), &boxes);
        if i % 50 == 0 {
            let ego = world.ego();
            let (cost, viol) = out
                .mpc
                .as_ref()
                .map(|m| (m.tracking_cost, m.predicted_violation))
                .unwrap_or((f64::NAN, f64::NAN));
            println!(
                "f{:4} pos ({:5.2},{:5.2},{:5.2}) v {:+.2} act t{:.2} b{:.2} s{:+.2} r{} em{} cost {:8.2} viol {:.3} plen {:.1} clr {:.2}",
                i, ego.pose.x, ego.pose.y, ego.pose.theta, ego.velocity,
                out.action.throttle, out.action.brake, out.action.steer,
                out.action.reverse as u8, out.emergency as u8,
                cost, viol,
                co.path().map(|p| p.length()).unwrap_or(f64::NAN),
                world.clearance(),
            );
        }
        world.step(&out.action);
        if world.in_collision() {
            println!("COLLISION at {i}");
            break;
        }
        if world.at_goal() {
            println!("PARKED at frame {i} t={:.1}", world.time());
            break;
        }
    }
    println!(
        "end dgoal {:.2} pos {:?}",
        world.distance_to_goal(),
        world.ego().pose
    );
}
