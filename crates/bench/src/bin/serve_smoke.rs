//! Serving smoke check, wired into `scripts/check.sh`.
//!
//! Holds the serving engine to its determinism contract end to end:
//!
//! * 8 concurrent sessions × 50 frames through the in-process
//!   [`icoil_serve::ServeHandle`], comfortably provisioned — zero sheds
//!   allowed;
//! * the full response streams (every pose, action, HSA value, bit for
//!   bit) must be identical between a 1-worker and a 4-worker server,
//!   and between job-at-a-time CO solving (`co_batch = 1`) and the
//!   block-diagonal batched drain (`co_batch = 8`): neither batch
//!   composition nor worker scheduling may leak into any session's
//!   trajectory;
//! * every session's stream must also differ from its neighbours'
//!   (distinct seeds ⇒ distinct episodes — a stuck engine replaying one
//!   session 8 times would otherwise pass).
//!
//! Exits non-zero on the first violation, printing what broke.

use icoil_il::IlModel;
use icoil_perception::BevConfig;
use icoil_serve::{Serve, ServeConfig, SessionConfig, StepResponse};
use icoil_telemetry::Counter;
use icoil_vehicle::ActionCodec;
use icoil_world::Difficulty;
use std::process::ExitCode;
use std::time::Duration;

const SESSIONS: usize = 8;
const FRAMES: usize = 50;

fn run_once(co_workers: usize, co_batch: usize) -> Result<Vec<Vec<StepResponse>>, String> {
    let config = ServeConfig {
        co_workers,
        co_batch,
        co_deadline: Duration::from_secs(60),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    // untrained model: near-uniform softmax keeps the HSA in CO mode, so
    // the smoke exercises the contended lane, not the trivial one
    let model = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 1);
    let server = Serve::start(config, model);
    let handle = server.handle();
    let ids: Vec<u64> = (0..SESSIONS)
        .map(|i| {
            handle
                .create(SessionConfig {
                    difficulty: Difficulty::Easy,
                    seed: 100 + i as u64,
                })
                .map_err(|e| format!("create session {i}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let mut streams: Vec<Vec<StepResponse>> = vec![Vec::new(); SESSIONS];
    for frame in 0..FRAMES {
        for (i, result) in handle.step_many(&ids).into_iter().enumerate() {
            let resp =
                result.map_err(|e| format!("step frame {frame} session {i}: {e}"))?;
            streams[i].push(resp);
        }
    }
    let metrics = handle.metrics().map_err(|e| format!("metrics: {e}"))?;
    server.shutdown();
    let shed = metrics.counter(Counter::CoShed);
    if shed != 0 {
        return Err(format!(
            "{shed} sheds at low load ({co_workers} workers): the provisioned lane must not shed"
        ));
    }
    Ok(streams)
}

fn run() -> Result<(), String> {
    let serial = run_once(1, 1)?;
    let variants = [("4 CO workers", run_once(4, 1)?), ("a batched CO drain", run_once(1, 8)?)];
    for (label, stream) in &variants {
        for (i, (s, p)) in serial.iter().zip(stream).enumerate() {
            if s != p {
                let frame = s
                    .iter()
                    .zip(p)
                    .position(|(a, b)| a != b)
                    .unwrap_or(s.len().min(p.len()));
                return Err(format!(
                    "session {i} diverged between the serial baseline and {label} at frame {frame}"
                ));
            }
        }
    }
    for i in 1..serial.len() {
        if serial[i] == serial[0] {
            return Err(format!(
                "sessions 0 and {i} produced identical streams despite distinct seeds"
            ));
        }
    }
    println!(
        "serve smoke: {SESSIONS} sessions x {FRAMES} frames bit-identical across \
         1 vs 4 CO workers and co_batch 1 vs 8, zero sheds"
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("serve smoke FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}
