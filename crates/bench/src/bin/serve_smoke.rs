//! Serving smoke check, wired into `scripts/check.sh`.
//!
//! Holds the serving engine to its determinism contract end to end:
//!
//! * 8 concurrent sessions × 50 frames through the in-process
//!   [`icoil_serve::ServeHandle`], comfortably provisioned — zero sheds
//!   allowed;
//! * the full response streams (every pose, action, HSA value, bit for
//!   bit) must be identical between a 1-worker and a 4-worker server,
//!   between job-at-a-time CO solving (`co_batch = 1`) and the
//!   block-diagonal batched drain (`co_batch = 8`), and between a
//!   1-shard and a 4-shard engine: neither batch composition, worker
//!   scheduling nor shard assignment may leak into any session's
//!   trajectory;
//! * a kill-snapshot-restore cycle — every session evicted mid-episode,
//!   the whole server torn down, and every snapshot restored into a
//!   fresh server at a different shard count — must replay the
//!   remaining frames bit-identically too;
//! * every session's stream must also differ from its neighbours'
//!   (distinct seeds ⇒ distinct episodes — a stuck engine replaying one
//!   session 8 times would otherwise pass).
//!
//! The whole contract runs at the IL precision named by
//! `ICOIL_IL_PRECISION` (`f32` default, `int8` for the quantized lane),
//! so `scripts/check.sh` can hold both lanes to the same determinism
//! bar. Exits non-zero on the first violation, printing what broke.

use icoil_il::{IlModel, IlPrecision};
use icoil_perception::BevConfig;
use icoil_serve::{Serve, ServeConfig, SessionConfig, StepResponse};
use icoil_telemetry::Counter;
use icoil_vehicle::ActionCodec;
use icoil_world::Difficulty;
use std::process::ExitCode;
use std::time::Duration;

const SESSIONS: usize = 8;
const FRAMES: usize = 50;
/// Frame at which the kill-snapshot-restore cycle interrupts every
/// session: late enough that warm starts and HSA windows carry real
/// state, early enough to leave a meaningful remainder to replay.
const KILL_AT: usize = 20;

fn config(shards: usize, co_workers: usize, co_batch: usize) -> ServeConfig {
    ServeConfig {
        shards,
        co_workers,
        co_batch,
        co_deadline: Duration::from_secs(60),
        queue_capacity: 64,
        il_precision: IlPrecision::from_env(),
        ..ServeConfig::default()
    }
}

// untrained model: near-uniform softmax keeps the HSA in CO mode, so
// the smoke exercises the contended lane, not the trivial one
fn model() -> IlModel {
    IlModel::untrained(ActionCodec::default(), BevConfig::default(), 1)
}

fn create_all(handle: &icoil_serve::ServeHandle) -> Result<Vec<u64>, String> {
    (0..SESSIONS)
        .map(|i| {
            handle
                .create(SessionConfig {
                    difficulty: Difficulty::Easy,
                    seed: 100 + i as u64,
                })
                .map_err(|e| format!("create session {i}: {e}"))
        })
        .collect()
}

fn step_all(
    handle: &icoil_serve::ServeHandle,
    ids: &[u64],
    streams: &mut [Vec<StepResponse>],
    frames: usize,
    what: &str,
) -> Result<(), String> {
    for frame in 0..frames {
        for (i, result) in handle.step_many(ids).into_iter().enumerate() {
            let resp =
                result.map_err(|e| format!("{what}: step frame {frame} session {i}: {e}"))?;
            streams[i].push(resp);
        }
    }
    Ok(())
}

fn no_sheds(handle: &icoil_serve::ServeHandle, what: &str) -> Result<(), String> {
    let metrics = handle.metrics().map_err(|e| format!("{what}: metrics: {e}"))?;
    let shed = metrics.counter(Counter::CoShed);
    if shed != 0 {
        return Err(format!(
            "{what}: {shed} sheds at low load: the provisioned lane must not shed"
        ));
    }
    Ok(())
}

fn run_once(
    shards: usize,
    co_workers: usize,
    co_batch: usize,
) -> Result<Vec<Vec<StepResponse>>, String> {
    let server = Serve::start(config(shards, co_workers, co_batch), model());
    let handle = server.handle();
    let ids = create_all(&handle)?;
    let mut streams: Vec<Vec<StepResponse>> = vec![Vec::new(); SESSIONS];
    step_all(&handle, &ids, &mut streams, FRAMES, "uninterrupted run")?;
    no_sheds(&handle, "uninterrupted run")?;
    server.shutdown();
    Ok(streams)
}

/// The kill-snapshot-restore cycle: run to [`KILL_AT`], evict every
/// session, shut the server down entirely, then restore every snapshot
/// into a fresh server at a different shard count and finish the
/// episodes there.
fn run_interrupted() -> Result<Vec<Vec<StepResponse>>, String> {
    let server = Serve::start(config(1, 2, 4), model());
    let handle = server.handle();
    let ids = create_all(&handle)?;
    let mut streams: Vec<Vec<StepResponse>> = vec![Vec::new(); SESSIONS];
    step_all(&handle, &ids, &mut streams, KILL_AT, "pre-kill run")?;
    let snapshots: Vec<Vec<u8>> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            handle
                .evict(id)
                .map_err(|e| format!("evict session {i}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    no_sheds(&handle, "pre-kill run")?;
    server.shutdown();

    let server = Serve::start(config(4, 2, 4), model());
    let handle = server.handle();
    for (i, bytes) in snapshots.iter().enumerate() {
        let restored = handle
            .restore(bytes)
            .map_err(|e| format!("restore session {i}: {e}"))?;
        if restored != ids[i] {
            return Err(format!(
                "restore renamed session {} to {restored}",
                ids[i]
            ));
        }
    }
    step_all(&handle, &ids, &mut streams, FRAMES - KILL_AT, "post-restore run")?;
    no_sheds(&handle, "post-restore run")?;
    server.shutdown();
    Ok(streams)
}

fn run() -> Result<(), String> {
    let serial = run_once(1, 1, 1)?;
    let variants = [
        ("4 CO workers", run_once(1, 4, 1)?),
        ("a batched CO drain", run_once(1, 1, 8)?),
        ("4 engine shards", run_once(4, 2, 4)?),
        ("a kill-snapshot-restore cycle", run_interrupted()?),
    ];
    for (label, stream) in &variants {
        for (i, (s, p)) in serial.iter().zip(stream).enumerate() {
            if s != p {
                let frame = s
                    .iter()
                    .zip(p)
                    .position(|(a, b)| a != b)
                    .unwrap_or(s.len().min(p.len()));
                return Err(format!(
                    "session {i} diverged between the serial baseline and {label} at frame {frame}"
                ));
            }
        }
    }
    for i in 1..serial.len() {
        if serial[i] == serial[0] {
            return Err(format!(
                "sessions 0 and {i} produced identical streams despite distinct seeds"
            ));
        }
    }
    println!(
        "serve smoke ({} IL lane): {SESSIONS} sessions x {FRAMES} frames bit-identical \
         across 1 vs 4 CO workers, co_batch 1 vs 8, 1 vs 4 shards, and a \
         kill-snapshot-restore cycle at frame {KILL_AT}; zero sheds",
        IlPrecision::from_env().label()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("serve smoke FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}
