//! Generation-0 dataset seeder: runs the CO expert closed-loop over
//! procedurally generated scenarios of **all six map families** and
//! writes the harvested `(BEV, expert action)` frames as a versioned,
//! checksummed [`AdaptDataset`] — the warm start for the online
//! adaptation loop, so the first retraining round never begins from an
//! empty reservoir.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin gen_demos [-- --out PATH]
//! ```
//!
//! The default output is `artifacts/adapt_gen0.icds`. Run sizes honor
//! `ICOIL_DEMO_EPISODES` (episodes per family, default 2),
//! `ICOIL_DEMO_FRAMES` (frame cap per episode, default 150) and
//! `ICOIL_DEMO_CAP` (reservoir cap per family, default 500). Every
//! frame goes through the same perception pipeline the serving engine
//! uses, so the seeded samples are distributionally identical to the
//! frames the online harvest adds later. The written file is reloaded
//! and checksum-verified before the bin reports success.

use icoil_adapt::AdaptDataset;
use icoil_bench::adapt::{new_aggregator, seed_demos, AdaptOptions};
use icoil_bench::print_row;
use icoil_serve::ServeConfig;
use icoil_world::MapFamilyKind;
use std::path::PathBuf;

fn env_size(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut out = PathBuf::from("artifacts/adapt_gen0.icds");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).map(PathBuf::from).unwrap_or_else(|| {
                    eprintln!("gen_demos: --out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("gen_demos: unknown argument {other}");
                eprintln!("usage: gen_demos [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let episodes = env_size("ICOIL_DEMO_EPISODES", 2);
    let cap = env_size("ICOIL_DEMO_CAP", 500) as usize;
    let opts = AdaptOptions {
        frames_per_session: env_size("ICOIL_DEMO_FRAMES", 150),
        ..AdaptOptions::default()
    };
    let config = ServeConfig::default();

    let t0 = std::time::Instant::now();
    let mut aggregator = new_aggregator(&config, cap, opts.seed);
    let offered = seed_demos(&config, &opts, episodes, &mut aggregator);
    let dataset = aggregator.into_dataset();
    let counts = dataset.counts();

    let widths = [16usize, 9, 8, 5];
    print_row(
        &["family", "episodes", "offered", "kept"].map(String::from),
        &widths,
    );
    for family in MapFamilyKind::ALL {
        print_row(
            &[
                family.name().to_string(),
                episodes.to_string(),
                offered[family.index()].to_string(),
                counts[family.index()].to_string(),
            ],
            &widths,
        );
        if counts[family.index()] == 0 {
            eprintln!(
                "gen_demos: family {:?} seeded zero frames — the adaptation \
                 loop would start blind there",
                family.name()
            );
            std::process::exit(1);
        }
    }

    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).unwrap_or_else(|e| {
            eprintln!("gen_demos: cannot create {}: {e}", parent.display());
            std::process::exit(2);
        });
    }
    dataset.save(&out).unwrap_or_else(|e| {
        eprintln!("gen_demos: cannot write {}: {e}", out.display());
        std::process::exit(2);
    });
    // prove the artifact is readable and checksum-clean before declaring it
    let reloaded = AdaptDataset::load(&out).unwrap_or_else(|e| {
        eprintln!("gen_demos: written dataset fails to reload: {e}");
        std::process::exit(1);
    });
    assert_eq!(reloaded.len(), dataset.len(), "reload changed the frame count");
    println!(
        "gen_demos: {} frame(s) across {} families -> {} ({:.1}s)",
        dataset.len(),
        MapFamilyKind::ALL.len(),
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
