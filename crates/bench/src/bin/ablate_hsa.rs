//! Ablation: the HSA switching *rule*.
//!
//! Compares the paper's ratio rule `U/C ≤ λ` against uncertainty-only
//! and complexity-only thresholds, and against the never-switch
//! baselines, on the normal level. Shows that the combined signal is
//! what buys the success rate.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin ablate_hsa
//! ```

use icoil_bench::{fmt_time, shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ParkingStats, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: false,
    };
    let scenario_configs: Vec<ScenarioConfig> = (0..size.episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Normal, s))
        .collect();

    println!("# Ablation: HSA switching rule (normal level, {} episodes)", size.episodes);
    println!("# variant             avg_s   success");

    // ratio rule (the paper), via lambda sweep around the default
    for (name, lambda) in [
        ("ratio λ=1e-6", 1e-6),
        ("ratio λ=3e-6 (def)", 3e-6),
        ("ratio λ=2e-5", 2e-5),
        // uncertainty-only: complexity in the ratio replaced by a huge λ
        // scaled against the known C floor ⇒ behaves like U ≤ u₀
        ("U-only u₀≈0.18", 0.18 / icoil_hsa::ComplexityParams::default().min_value()),
    ] {
        let mut config = ICoilConfig::default();
        config.hsa.lambda = lambda;
        let results =
            eval::run_batch_with(Method::ICoil, &config, &model, &scenario_configs, &episode, &size.eval_config());
        let stats = ParkingStats::from_results(&results);
        println!(
            "{name:20} {:>6}  {:.0}%",
            fmt_time(stats.avg_time),
            stats.success_ratio() * 100.0
        );
    }
    // never switch: pure baselines
    let config = ICoilConfig::default();
    for (name, method) in [("always IL", Method::Il), ("always CO", Method::Co)] {
        let results = eval::run_batch_with(method, &config, &model, &scenario_configs, &episode, &size.eval_config());
        let stats = ParkingStats::from_results(&results);
        println!(
            "{name:20} {:>6}  {:.0}%",
            fmt_time(stats.avg_time),
            stats.success_ratio() * 100.0
        );
    }
}
