//! Regenerates the **§V-E execution-frequency** measurement: the average
//! per-step rates of the IL inference and the CO solve (the paper reports
//! 75 Hz and 18 Hz on an i9 + RTX 3080).
//!
//! Absolute numbers differ on other hardware; the shape to reproduce is
//! IL being several times faster than CO, which is what makes the HSA
//! mode switching worthwhile.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin freq
//! ```

use icoil_bench::{shared_model, RunSize};
use icoil_co::{CoConfig, CoController};
use icoil_perception::Perception;
use icoil_world::episode::Observation;
use icoil_world::{Difficulty, ScenarioConfig, World};
use std::time::Instant;

fn main() {
    let size = RunSize::from_env();
    let mut model = shared_model(&size);
    let config = icoil_core::ICoilConfig::default();

    let scenario = ScenarioConfig::new(Difficulty::Normal, 3).build();
    let params = scenario.vehicle_params;
    let mut perception = Perception::new(config.bev, &scenario);
    let mut world = World::new(scenario);
    let mut co = CoController::new(CoConfig::default(), params);

    // warm up: plan the path once, collect one sensing
    let sensing = perception.observe(&Observation::new(&world));
    let _ = co.control(&Observation::new(&world), &sensing.boxes);

    // measure IL inference rate on the live BEV image
    let il_iters = 200;
    let t0 = Instant::now();
    for _ in 0..il_iters {
        let _ = model.infer(&sensing.bev);
    }
    let il_hz = il_iters as f64 / t0.elapsed().as_secs_f64();

    // measure CO solve rate along an actual drive (fresh constraints
    // each frame, like the deployed system)
    let co_iters = 100;
    let t0 = Instant::now();
    for _ in 0..co_iters {
        let s = perception.observe(&Observation::new(&world));
        let out = co.control(&Observation::new(&world), &s.boxes);
        world.step(&out.action);
    }
    let co_hz = co_iters as f64 / t0.elapsed().as_secs_f64();

    println!("# §V-E execution frequency (single core)");
    println!("IL inference: {il_hz:8.1} Hz");
    println!("CO solve:     {co_hz:8.1} Hz");
    println!("ratio IL/CO:  {:8.1}x", il_hz / co_hz);
    println!("# paper reports 75 Hz vs 18 Hz (~4x) on i9 + RTX 3080");
}
