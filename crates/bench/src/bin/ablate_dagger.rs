//! Ablation: behavioral cloning vs DAgger.
//!
//! Trains two IL models from the same expert demonstrations — one with
//! plain behavioral cloning, one with DAgger aggregation rounds — and
//! compares their *closed-loop* parking success on held-out easy
//! scenarios. Shows why the paper's related work points at HG-DAgger for
//! data quality: open-loop accuracy is similar, closed-loop success is
//! not.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin ablate_dagger
//! ```

use icoil_bench::RunSize;
use icoil_core::{artifacts, eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ParkingStats, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: false,
    };
    let scenario_configs: Vec<ScenarioConfig> = (0..size.episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, s))
        .collect();

    println!("# Ablation: behavioral cloning vs DAgger (easy level, {} episodes)", size.episodes);
    println!("# variant            success  avg_s");
    for (name, rounds) in [("BC (0 rounds)", 0usize), ("DAgger (2 rounds)", 2)] {
        let model = if rounds == 0 {
            artifacts::train_default_model(size.train_episodes, size.train_epochs)
        } else {
            artifacts::train_dagger_model(size.train_episodes, size.train_epochs, rounds)
        };
        let results =
            eval::run_batch_with(Method::Il, &config, &model, &scenario_configs, &episode, &size.eval_config());
        let stats = ParkingStats::from_results(&results);
        println!(
            "{name:18}  {:6.0}%  {:.2}",
            stats.success_ratio() * 100.0,
            stats.avg_time
        );
    }
}
