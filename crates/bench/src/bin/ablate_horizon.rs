//! Ablation: the CO prediction horizon `H`.
//!
//! Eq. (8) models CO delay as superlinear in `H`; this sweep measures the
//! real trade-off — solve time per step versus closed-loop success — on
//! the normal level (where foresight matters because of the movers).
//!
//! ```text
//! cargo run --release -p icoil-bench --bin ablate_horizon
//! ```

use icoil_bench::{fmt_time, shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ParkingStats, ScenarioConfig};
use std::time::Instant;

fn main() {
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: false,
    };
    let scenario_configs: Vec<ScenarioConfig> = (0..size.episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Normal, s))
        .collect();

    println!(
        "# Ablation: CO horizon H (pure CO, normal level, {} episodes)",
        size.episodes
    );
    println!("# H   lookahead_s  wall_s/ep  avg_park_s  success");
    for horizon in [4usize, 8, 12, 16] {
        let mut config = ICoilConfig::default();
        config.co.horizon = horizon;
        config.hsa.complexity.horizon = horizon;
        let t0 = Instant::now();
        let results = eval::run_batch_with(Method::Co, &config, &model, &scenario_configs, &episode, &size.eval_config());
        let wall = t0.elapsed().as_secs_f64() / results.len() as f64;
        let stats = ParkingStats::from_results(&results);
        println!(
            "{horizon:3}  {:10.2}  {wall:9.2}  {:>10}  {:.0}%",
            horizon as f64 * config.co.mpc_dt,
            fmt_time(stats.avg_time),
            stats.success_ratio() * 100.0
        );
    }
}
