//! Emits `BENCH_perf.json` — the repo's performance trajectory tracker.
//!
//! Measures four throughput numbers so future changes can be compared
//! against a recorded baseline:
//!
//! * `episodes_per_sec` — closed-loop CO evaluation throughput through
//!   `icoil-core::eval::run_batch_with` at the configured parallelism;
//! * `il_hz` — IL CNN inference rate on a live BEV image (the paper's
//!   §V-E reports 75 Hz);
//! * `co_hz` / `co_hz_cold` — CO solve rate along an actual drive with
//!   the deployed warm-start memory vs. with the memory cleared every
//!   frame (paper: 18 Hz);
//! * `mean_admm_iters_warm` / `mean_admm_iters_cold` — mean ADMM
//!   iterations per MPC step, the number the QP warm start exists to cut.
//!
//! The file lands in the working directory (the repo root under
//! `cargo run`). Run sizes honor `ICOIL_EPISODES` and
//! `ICOIL_PARALLELISM`:
//!
//! ```text
//! cargo run --release -p icoil-bench --bin perf
//! ```
//!
//! An untrained IL model is used throughout: inference cost does not
//! depend on the weight values, and it keeps the bin self-contained.

use icoil_bench::RunSize;
use icoil_co::{CoConfig, CoController};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_il::IlModel;
use icoil_perception::Perception;
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{EpisodeConfig, Observation};
use icoil_world::{Difficulty, ScenarioConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct PerfReport {
    episodes_per_sec: f64,
    il_hz: f64,
    co_hz: f64,
    co_hz_cold: f64,
    mean_admm_iters_warm: f64,
    mean_admm_iters_cold: f64,
    il_over_co_ratio: f64,
    parallelism: usize,
    episodes: u64,
}

/// Drives `frames` control steps in a fresh world; returns
/// `(frames/sec, mean ADMM iterations per solved frame)`.
fn drive(seed: u64, frames: usize, cold: bool) -> (f64, f64) {
    let scenario = ScenarioConfig::new(Difficulty::Normal, seed).build();
    let params = scenario.vehicle_params;
    let mut perception = Perception::new(ICoilConfig::default().bev, &scenario);
    let mut world = icoil_world::World::new(scenario);
    let mut co = CoController::new(CoConfig::default(), params);
    // Plan the global path outside the timed region.
    let s = perception.observe(&Observation::new(&world));
    let _ = co.control(&Observation::new(&world), &s.boxes);

    let mut iters = 0usize;
    let mut solves = 0usize;
    let t0 = Instant::now();
    for _ in 0..frames {
        if cold {
            co.reset_warm_start();
        }
        let s = perception.observe(&Observation::new(&world));
        let out = co.control(&Observation::new(&world), &s.boxes);
        if let Some(mpc) = &out.mpc {
            iters += mpc.qp_iterations;
            solves += 1;
        }
        world.step(&out.action);
    }
    let hz = frames as f64 / t0.elapsed().as_secs_f64();
    (hz, iters as f64 / solves.max(1) as f64)
}

fn main() {
    let size = RunSize::from_env();
    let config = ICoilConfig::default();
    let mut model = IlModel::untrained(ActionCodec::default(), config.bev, 1);

    // 1) closed-loop evaluation throughput at the configured parallelism
    let scenarios: Vec<ScenarioConfig> = (0..size.episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, s))
        .collect();
    let episode = EpisodeConfig {
        max_time: 30.0,
        record_trace: false,
    };
    let t0 = Instant::now();
    let results = eval::run_batch_with(
        Method::Co,
        &config,
        &model,
        &scenarios,
        &episode,
        &size.eval_config(),
    );
    let episodes_per_sec = results.len() as f64 / t0.elapsed().as_secs_f64();

    // 2) IL inference rate on a live BEV image
    let scenario = ScenarioConfig::new(Difficulty::Normal, 3).build();
    let mut perception = Perception::new(config.bev, &scenario);
    let world = icoil_world::World::new(scenario);
    let sensing = perception.observe(&Observation::new(&world));
    let il_iters = 200;
    let t0 = Instant::now();
    for _ in 0..il_iters {
        let _ = model.infer(&sensing.bev);
    }
    let il_hz = il_iters as f64 / t0.elapsed().as_secs_f64();

    // 3) CO solve rate and ADMM iteration counts, warm vs. cold
    let frames = 60;
    let (co_hz, mean_admm_iters_warm) = drive(3, frames, false);
    let (co_hz_cold, mean_admm_iters_cold) = drive(3, frames, true);

    let report = PerfReport {
        episodes_per_sec,
        il_hz,
        co_hz,
        co_hz_cold,
        mean_admm_iters_warm,
        mean_admm_iters_cold,
        il_over_co_ratio: il_hz / co_hz,
        parallelism: size.parallelism,
        episodes: size.episodes,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_perf.json", &json).expect("write BENCH_perf.json");

    println!("# performance trajectory (wrote BENCH_perf.json)");
    println!("episodes/sec ({} workers): {episodes_per_sec:8.2}", size.parallelism);
    println!("IL inference:  {il_hz:8.1} Hz");
    println!(
        "CO solve:      {co_hz:8.1} Hz warm ({mean_admm_iters_warm:.0} ADMM iters) \
         vs {co_hz_cold:.1} Hz cold ({mean_admm_iters_cold:.0} iters)"
    );
    println!("ratio IL/CO:   {:8.1}x (paper shape: >= 4x)", il_hz / co_hz);
}
