//! Emits `BENCH_perf.json` — the repo's performance trajectory tracker.
//!
//! Measures four throughput numbers so future changes can be compared
//! against a recorded baseline:
//!
//! * `episodes_per_sec` — closed-loop CO evaluation throughput through
//!   `icoil-core::eval::run_batch_with` at the configured parallelism;
//! * `il_hz` — IL CNN inference rate on a live BEV image (the paper's
//!   §V-E reports 75 Hz);
//! * `il_hz_int8` — the same inference through the calibrated int8
//!   lane; both lanes are timed in interleaved rounds and reported as
//!   per-lane best so the ratio compares kernels, not scheduler luck;
//! * `gemm_gops_int8` — int8 GEMM throughput of the quantized kernel
//!   at the same network-shaped problem size as the f32 GEMM numbers;
//! * `co_hz` / `co_hz_cold` — CO solve rate along an actual drive with
//!   the deployed warm-start memory vs. with the memory cleared every
//!   frame (paper: 18 Hz);
//! * `co_hz_sparse` — same warm drive with the sparse KKT backend
//!   forced, to keep the backend comparison visible even if the
//!   auto-selection rule changes;
//! * `mean_admm_iters_warm` / `mean_admm_iters_cold` — mean ADMM
//!   iterations per MPC step, the number the QP warm start exists to cut;
//! * `kkt_factor_us_dense` / `kkt_factor_us_sparse` / `kkt_nnz_ratio` —
//!   per-factorization microseconds for dense Cholesky vs the cached
//!   symbolic + numeric-refactor sparse LDLᵀ on the *actual* MPC KKT
//!   matrix of a mid-episode frame, plus that matrix's fill ratio;
//! * `matmul_gflops_{scalar,simd}` — f32 GEMM throughput of the IL
//!   kernel layer with the scalar reference forced vs the detected SIMD
//!   dispatch, at a network-shaped problem size (best-of-N timing,
//!   `kernel_best_of` and `simd_dispatch` record the discipline);
//! * `batch_refactor_us_k{1,4,16}` — per-block microseconds of the
//!   block-diagonal batched sparse LDLᵀ refactor (`BatchLdl`) over K
//!   copies of the same MPC KKT matrix, the amortization the serve CO
//!   lane's batched drain rides on.
//!
//! The file lands in the working directory (the repo root under
//! `cargo run`). Run sizes honor `ICOIL_EPISODES` and
//! `ICOIL_PARALLELISM`:
//!
//! ```text
//! cargo run --release -p icoil-bench --bin perf
//! ```
//!
//! An untrained IL model is used throughout: inference cost does not
//! depend on the weight values, and it keeps the bin self-contained.

use icoil_bench::{PerfReport, RunSize};
use icoil_co::{build_mpc_qp, CoConfig, CoController};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_solver::{Backend, BatchLdl, SparseKkt, SparseLdl, SparseMatrix, SymbolicLdl};
use icoil_il::{IlModel, IlPrecision};
use icoil_perception::Perception;
use icoil_telemetry::{Recorder, Series};
use icoil_vehicle::{Action, ActionCodec};
use icoil_world::episode::{EpisodeConfig, Observation};
use icoil_world::{Difficulty, ScenarioConfig};
use std::time::Instant;

/// Drives `frames` control steps in a fresh world, recording per-frame
/// and CO-stage latencies into `recorder`; returns `(frames/sec, mean
/// ADMM iterations per solved frame)`.
fn drive(seed: u64, frames: usize, cold: bool, backend: Backend, recorder: &mut Recorder) -> (f64, f64) {
    let scenario = ScenarioConfig::new(Difficulty::Normal, seed).build();
    let params = scenario.vehicle_params;
    let mut perception = Perception::new(ICoilConfig::default().bev, &scenario);
    let mut world = icoil_world::World::new(scenario);
    let co_config = CoConfig {
        qp_backend: backend,
        ..CoConfig::default()
    };
    let mut co = CoController::new(co_config, params);
    // Plan the global path outside the timed region.
    let s = perception.observe(&Observation::new(&world));
    let _ = co.control(&Observation::new(&world), &s.boxes);

    let mut iters = 0usize;
    let mut solves = 0usize;
    let t0 = Instant::now();
    for _ in 0..frames {
        if cold {
            co.reset_warm_start();
        }
        let frame_start = Instant::now();
        let s = perception.observe(&Observation::new(&world));
        let co_start = Instant::now();
        let out = co.control(&Observation::new(&world), &s.boxes);
        let co_end = Instant::now();
        recorder.observe(Series::CoSolve, (co_end - co_start).as_secs_f64());
        recorder.observe(Series::FrameTotal, (co_end - frame_start).as_secs_f64());
        if let Some(mpc) = &out.mpc {
            iters += mpc.qp_iterations;
            solves += 1;
        }
        world.step(&out.action);
    }
    let hz = frames as f64 / t0.elapsed().as_secs_f64();
    (hz, iters as f64 / solves.max(1) as f64)
}

/// Rebuilds the MPC KKT matrix (`P + σI + ρAᵀA`) of a mid-episode frame
/// — the matrix every factorization microbenchmark below times against.
fn mpc_kkt_matrix() -> SparseMatrix {
    // Drive a few frames so the logged solve carries a real reference
    // horizon and tracked obstacles, then rebuild that frame's QP.
    let scenario = ScenarioConfig::new(Difficulty::Normal, 3).build();
    let params = scenario.vehicle_params;
    let mut perception = Perception::new(ICoilConfig::default().bev, &scenario);
    let mut world = icoil_world::World::new(scenario);
    let co_config = CoConfig::default();
    let mut co = CoController::new(co_config, params);
    co.enable_solve_log();
    for _ in 0..10 {
        let s = perception.observe(&Observation::new(&world));
        let out = co.control(&Observation::new(&world), &s.boxes);
        world.step(&out.action);
    }
    let log = co.take_solve_log();
    let record = log.last().expect("drive produced MPC solves");
    let nominal_u = vec![[0.0_f64; 2]; record.reference.len()];
    let qp = build_mpc_qp(
        &record.state,
        &nominal_u,
        &record.reference,
        &record.tracked,
        &params,
        &co_config,
    );

    let gram = qp.a().gram();
    let mut kkt = SparseKkt::new(qp.p(), &gram);
    kkt.assemble(qp.p(), &gram, 1e-6, 0.1).clone()
}

/// Times one KKT factorization per frame for both backends on the real
/// mid-episode MPC KKT matrix: dense Cholesky from scratch vs sparse
/// LDLᵀ numeric refactorization over the cached symbolic analysis —
/// exactly the work each backend repeats when ADMM adapts ρ. Returns
/// `(dense_us, sparse_us, kkt_fill_ratio)`.
fn kkt_microbench(matrix: &SparseMatrix) -> (f64, f64, f64) {
    let fill = matrix.fill_ratio();

    let reps = 2000;
    let dense = matrix.to_dense();
    let t0 = Instant::now();
    for _ in 0..reps {
        let factor = dense.cholesky().expect("MPC KKT is positive definite");
        std::hint::black_box(&factor);
    }
    let dense_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

    let sym = SymbolicLdl::analyze(matrix);
    let mut factor = SparseLdl::factor(sym, matrix).expect("MPC KKT is quasidefinite");
    let t0 = Instant::now();
    for _ in 0..reps {
        factor.refactor(matrix).expect("refactor succeeds");
        std::hint::black_box(&factor);
    }
    let sparse_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

    (dense_us, sparse_us, fill)
}

/// Number of timed repetitions each kernel microbenchmark takes the
/// best of — minimum-of-N suppresses scheduler noise without needing a
/// long run.
const KERNEL_BEST_OF: usize = 5;

/// f32 GEMM throughput (GFLOP/s) through the nn kernel layer under the
/// given backend, at a network-shaped problem size. Best of
/// [`KERNEL_BEST_OF`] timed repetitions.
fn matmul_gflops(backend: icoil_nn::KernelBackend) -> f64 {
    let (m, k, n) = (64usize, 288usize, 256usize);
    // deterministic non-trivial fill; values do not affect timing
    let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 + 11) % 97) as f32 * 0.013 - 0.6).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i * 53 + 7) % 89) as f32 * 0.011 - 0.5).collect();
    let mut out = vec![0.0f32; m * n];
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let inner = 40;
    let mut best = f64::INFINITY;
    icoil_nn::simd::with_backend(backend, || {
        for _ in 0..KERNEL_BEST_OF {
            let t0 = Instant::now();
            for _ in 0..inner {
                icoil_nn::simd::matmul(&a, m, k, &b, n, &mut out);
                std::hint::black_box(&out);
            }
            best = best.min(t0.elapsed().as_secs_f64() / inner as f64);
        }
    });
    flops / best / 1e9
}

/// int8 GEMM throughput (giga-ops/s) through the nn kernel layer at the
/// same network-shaped problem size as [`matmul_gflops`]; one
/// multiply-add counts as two ops. Best of [`KERNEL_BEST_OF`] timed
/// repetitions.
fn int8_gemm_gops() -> f64 {
    let (m, k, n) = (64usize, 288usize, 256usize);
    // activation codes stay in [0, 127] — the lane's quantizer contract
    let a: Vec<u8> = (0..m * k).map(|i| ((i * 37 + 11) % 128) as u8).collect();
    let b: Vec<i8> = (0..n * k)
        .map(|i| (((i * 53 + 7) % 255) as i32 - 127) as i8)
        .collect();
    let mut out = vec![0i32; m * n];
    let ops = 2.0 * m as f64 * k as f64 * n as f64;
    let inner = 40;
    let mut best = f64::INFINITY;
    for _ in 0..KERNEL_BEST_OF {
        let t0 = Instant::now();
        for _ in 0..inner {
            icoil_nn::simd::gemm_nt_i8(&a, m, k, &b, n, &mut out);
            std::hint::black_box(&out);
        }
        best = best.min(t0.elapsed().as_secs_f64() / inner as f64);
    }
    ops / best / 1e9
}

/// Per-block microseconds of the block-diagonal batched sparse LDLᵀ
/// refactor over `k_blocks` copies of the real MPC KKT matrix — the
/// numeric pass `QpBatch` amortizes across a serve worker's drain. Best
/// of [`KERNEL_BEST_OF`] timed repetitions.
fn batch_refactor_us_per_block(matrix: &SparseMatrix, k_blocks: usize) -> f64 {
    let sym = SymbolicLdl::analyze(matrix);
    let mut batch = BatchLdl::new(sym, k_blocks);
    let kkts: Vec<&SparseMatrix> = (0..k_blocks).map(|_| matrix).collect();
    batch.refactor_all(&kkts).expect("MPC KKT is quasidefinite");
    let inner = 400;
    let mut best = f64::INFINITY;
    for _ in 0..KERNEL_BEST_OF {
        let t0 = Instant::now();
        for _ in 0..inner {
            batch.refactor_all(&kkts).expect("refactor succeeds");
            std::hint::black_box(&batch);
        }
        best = best.min(t0.elapsed().as_secs_f64() / inner as f64);
    }
    best * 1e6 / k_blocks as f64
}

fn main() {
    let size = RunSize::from_env();
    let config = ICoilConfig::default();
    let mut model = IlModel::untrained(ActionCodec::default(), config.bev, 1);

    // 1) closed-loop evaluation throughput at the configured parallelism
    let scenarios: Vec<ScenarioConfig> = (0..size.episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, s))
        .collect();
    let episode = EpisodeConfig {
        max_time: 30.0,
        record_trace: false,
    };
    let t0 = Instant::now();
    let results = eval::run_batch_with(
        Method::Co,
        &config,
        &model,
        &scenarios,
        &episode,
        &size.eval_config(),
    );
    let episodes_per_sec = results.len() as f64 / t0.elapsed().as_secs_f64();

    // 2) IL inference rate on a live BEV image, f32 vs the calibrated
    //    int8 lane. The two lanes are timed in interleaved rounds and
    //    each reported as its best round, so the recorded ratio compares
    //    the kernels rather than whichever lane the scheduler disturbed.
    let scenario = ScenarioConfig::new(Difficulty::Normal, 3).build();
    let mut perception = Perception::new(config.bev, &scenario);
    let mut world = icoil_world::World::new(scenario);
    let mut calib = Vec::new();
    for _ in 0..12 {
        let sensing = perception.observe(&Observation::new(&world));
        calib.push(sensing.bev);
        world.step(&Action::forward(0.3, 0.05));
    }
    {
        let frames: Vec<&_> = calib.iter().collect();
        model.calibrate_int8(&frames);
    }
    let bev = &calib[0];
    let il_iters = 400;
    let il_rounds = 8;
    let mut lane_best = [f64::INFINITY; 2];
    for _ in 0..il_rounds {
        for (slot, precision) in [IlPrecision::F32, IlPrecision::Int8].into_iter().enumerate() {
            model.set_precision(precision);
            let t0 = Instant::now();
            for _ in 0..il_iters {
                std::hint::black_box(model.infer(bev));
            }
            lane_best[slot] = lane_best[slot].min(t0.elapsed().as_secs_f64() / il_iters as f64);
        }
    }
    model.set_precision(IlPrecision::F32);
    let il_hz = 1.0 / lane_best[0];
    let il_hz_int8 = 1.0 / lane_best[1];

    // 3) CO solve rate and ADMM iteration counts, warm vs. cold, plus a
    //    forced-sparse warm drive for the backend comparison; latency
    //    percentiles come from the warm drive's telemetry histograms
    let frames = 60;
    let mut warm_recorder = Recorder::new();
    let mut scratch_recorder = Recorder::new();
    let (co_hz, mean_admm_iters_warm) = drive(3, frames, false, Backend::Auto, &mut warm_recorder);
    let (co_hz_cold, mean_admm_iters_cold) =
        drive(3, frames, true, Backend::Auto, &mut scratch_recorder);
    let (co_hz_sparse, _) = drive(3, frames, false, Backend::Sparse, &mut scratch_recorder);
    let frame_hist = warm_recorder.metrics().series(Series::FrameTotal);
    let solve_hist = warm_recorder.metrics().series(Series::CoSolve);
    let (frame_p50_us, frame_p95_us, frame_p99_us) = (
        frame_hist.quantile(0.50) * 1e6,
        frame_hist.quantile(0.95) * 1e6,
        frame_hist.quantile(0.99) * 1e6,
    );
    let (solve_p50_us, solve_p95_us, solve_p99_us) = (
        solve_hist.quantile(0.50) * 1e6,
        solve_hist.quantile(0.95) * 1e6,
        solve_hist.quantile(0.99) * 1e6,
    );

    // 4) per-frame KKT factorization microbenchmark on the actual MPC
    //    KKT matrix of a mid-episode frame
    let kkt_matrix = mpc_kkt_matrix();
    let (kkt_factor_us_dense, kkt_factor_us_sparse, kkt_nnz_ratio) = kkt_microbench(&kkt_matrix);

    // 5) kernel-layer microbenchmarks: scalar-vs-SIMD f32 GEMM and the
    //    batched block-diagonal refactor at several widths
    let matmul_gflops_scalar = matmul_gflops(icoil_nn::KernelBackend::Scalar);
    let matmul_gflops_simd = matmul_gflops(icoil_nn::simd::detected());
    let gemm_gops_int8 = int8_gemm_gops();
    let batch_refactor_us_k1 = batch_refactor_us_per_block(&kkt_matrix, 1);
    let batch_refactor_us_k4 = batch_refactor_us_per_block(&kkt_matrix, 4);
    let batch_refactor_us_k16 = batch_refactor_us_per_block(&kkt_matrix, 16);
    let simd_dispatch = icoil_nn::simd::dispatch_target().to_string();

    let mut report = PerfReport {
        episodes_per_sec,
        il_hz,
        il_hz_int8,
        gemm_gops_int8,
        co_hz,
        co_hz_cold,
        co_hz_sparse,
        mean_admm_iters_warm,
        mean_admm_iters_cold,
        il_over_co_ratio: il_hz / co_hz,
        kkt_factor_us_dense,
        kkt_factor_us_sparse,
        kkt_nnz_ratio,
        frame_p50_us,
        frame_p95_us,
        frame_p99_us,
        solve_p50_us,
        solve_p95_us,
        solve_p99_us,
        matmul_gflops_scalar,
        matmul_gflops_simd,
        batch_refactor_us_k1,
        batch_refactor_us_k4,
        batch_refactor_us_k16,
        simd_dispatch: simd_dispatch.clone(),
        kernel_best_of: KERNEL_BEST_OF as u64,
        had_nonfinite: false,
        parallelism: size.parallelism,
        episodes: size.episodes,
    };
    if report.sanitize() {
        eprintln!("perf: some measured fields were non-finite; clamped (had_nonfinite=true)");
    }
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_perf.json", &json).expect("write BENCH_perf.json");

    println!("# performance trajectory (wrote BENCH_perf.json)");
    println!("episodes/sec ({} workers): {episodes_per_sec:8.2}", size.parallelism);
    println!("IL inference:  {il_hz:8.1} Hz f32");
    println!(
        "IL int8:       {il_hz_int8:8.1} Hz ({:.2}x f32, calibrated lane, best of {il_rounds} \
         interleaved rounds)",
        il_hz_int8 / il_hz
    );
    println!(
        "CO solve:      {co_hz:8.1} Hz warm ({mean_admm_iters_warm:.0} ADMM iters) \
         vs {co_hz_cold:.1} Hz cold ({mean_admm_iters_cold:.0} iters)"
    );
    println!("ratio IL/CO:   {:8.1}x (paper shape: >= 4x)", il_hz / co_hz);
    println!("CO sparse:     {co_hz_sparse:8.1} Hz warm (backend forced)");
    println!(
        "KKT factor:    {kkt_factor_us_dense:8.1} us dense vs {kkt_factor_us_sparse:.1} us \
         sparse refactor (fill {kkt_nnz_ratio:.3})"
    );
    println!(
        "frame latency: {frame_p50_us:8.1} us p50 / {frame_p95_us:.1} us p95 / \
         {frame_p99_us:.1} us p99"
    );
    println!(
        "solve latency: {solve_p50_us:8.1} us p50 / {solve_p95_us:.1} us p95 / \
         {solve_p99_us:.1} us p99"
    );
    println!(
        "matmul f32:    {matmul_gflops_scalar:8.2} GFLOP/s scalar vs \
         {matmul_gflops_simd:.2} GFLOP/s {simd_dispatch} \
         ({:.1}x, best of {KERNEL_BEST_OF})",
        matmul_gflops_simd / matmul_gflops_scalar
    );
    println!(
        "gemm int8:     {gemm_gops_int8:8.2} GOP/s {simd_dispatch} (best of {KERNEL_BEST_OF})"
    );
    println!(
        "batch refactor: {batch_refactor_us_k1:7.1} us/block K=1 / \
         {batch_refactor_us_k4:.1} us/block K=4 / {batch_refactor_us_k16:.1} us/block K=16"
    );
}
