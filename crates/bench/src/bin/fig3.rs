//! Illustrates **Fig. 3**: the perception pipeline's artifacts — the
//! ego-centric BEV image `y_i = g(x_i)` and the detected bounding boxes
//! `z_i = h(y_i)` — for one frame, clean and under hard-level noise.
//!
//! (Fig. 3 in the paper shows camera images; our substrate starts at the
//! BEV stage, so this binary renders the BEV occupancy as ASCII shading
//! and lists the detected boxes.)
//!
//! ```text
//! cargo run --release -p icoil-bench --bin fig3
//! ```

use icoil_perception::{BevConfig, BevImage, Perception};
use icoil_world::episode::Observation;
use icoil_world::{Difficulty, NoiseConfig, ScenarioConfig, World};

fn shade(v: f32) -> char {
    match v {
        v if v < 0.1 => ' ',
        v if v < 0.35 => '.',
        v if v < 0.6 => ':',
        v if v < 0.85 => 'x',
        _ => '#',
    }
}

fn print_bev(image: &BevImage, title: &str) {
    println!("\n## {title} (obstacle channel, {0}x{0} @ {1:.2} m/px; ego at center facing right)",
        image.size, 2.0 * image.range / image.size as f64);
    for row in 0..image.size {
        let line: String = (0..image.size)
            .map(|col| shade(image.at(0, row, col)))
            .collect();
        println!("|{line}|");
    }
}

fn main() {
    // place the ego mid-lot where obstacles and the bay are in view
    let scenario = ScenarioConfig::new(Difficulty::Easy, 5).build();
    let mut world = World::new(scenario);
    world.set_ego(icoil_vehicle::VehicleState::at_rest(icoil_geom::Pose2::new(
        15.0, 9.0, 0.2,
    )));

    let mut perception = Perception::new(BevConfig::default(), world.scenario());
    let clean = perception.observe(&Observation::new(&world));
    print_bev(&clean.bev, "clean BEV");
    println!("# goal-channel pixels set: {}",
        clean.bev.data[clean.bev.size * clean.bev.size..2 * clean.bev.size * clean.bev.size]
            .iter()
            .filter(|&&v| v > 0.5)
            .count());
    println!("# detected boxes ({}):", clean.boxes.len());
    for b in &clean.boxes {
        println!("#   center ({:5.1}, {:5.1})  {:.1} x {:.1}  heading {:+.2}",
            b.center.x, b.center.y, b.length(), b.width(), b.theta);
    }

    perception.set_noise(NoiseConfig::hard());
    let noisy = perception.observe(&Observation::new(&world));
    print_bev(&noisy.bev, "hard-level BEV (speckle + dropout)");
    println!("# detected boxes under noise ({}):", noisy.boxes.len());
    for b in &noisy.boxes {
        println!("#   center ({:5.1}, {:5.1})  {:.1} x {:.1}  heading {:+.2}",
            b.center.x, b.center.y, b.length(), b.width(), b.theta);
    }
}
