//! Regenerates **Table II**: parking time (average / max / min) and
//! success ratio for iCOIL vs the conventional-IL baseline on the easy,
//! normal and hard tasks.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin table2
//! ```
//!
//! Run size is controlled by `ICOIL_EPISODES` (episodes per cell) and the
//! training knobs documented in `icoil_bench::RunSize`.

use icoil_bench::{fmt_time, print_row, shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ParkingStats, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: false,
    };
    let widths = [8usize, 9, 8, 8, 14];

    println!("Table II: comparison of parking time and success rate");
    println!(
        "({} episodes per cell; seeds 0..{})",
        size.episodes, size.episodes
    );
    for difficulty in Difficulty::ALL {
        println!("\n{} task", capitalize(&difficulty.to_string()));
        print_row(
            &[
                "Method".into(),
                "Average".into(),
                "Max".into(),
                "Min".into(),
                "Success Ratio".into(),
            ],
            &widths,
        );
        for method in [Method::ICoil, Method::Il] {
            let scenario_configs: Vec<ScenarioConfig> = (0..size.episodes)
                .map(|s| ScenarioConfig::new(difficulty, s))
                .collect();
            let results = eval::run_batch_with(method, &config, &model, &scenario_configs, &episode, &size.eval_config());
            let stats = ParkingStats::from_results(&results);
            print_row(
                &[
                    method.to_string(),
                    fmt_time(stats.avg_time),
                    fmt_time(stats.max_time),
                    fmt_time(stats.min_time),
                    format!("{:.0}%", stats.success_ratio() * 100.0),
                ],
                &widths,
            );
        }
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}
