//! Developer diagnostic: per-episode outcomes with mode fractions.
//!
//! Not part of the paper's experiment set — use it to understand *why* a
//! batch behaves the way it does (`cargo run --release -p icoil-bench
//! --bin debug_eval easy 0 8 icoil`).

use icoil_bench::{shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::{EpisodeConfig, ModeTag};
use icoil_world::{Difficulty, ScenarioConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let difficulty = match args.get(1).map(String::as_str) {
        Some("normal") => Difficulty::Normal,
        Some("hard") => Difficulty::Hard,
        _ => Difficulty::Easy,
    };
    let lo: u64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(0);
    let hi: u64 = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(8);
    let method = match args.get(4).map(String::as_str) {
        Some("il") => Method::Il,
        Some("co") => Method::Co,
        _ => Method::ICoil,
    };
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: true,
    };
    println!("{method} on {difficulty}, seeds {lo}..{hi}");
    for seed in lo..hi {
        let sc = ScenarioConfig::new(difficulty, seed);
        let r = eval::run_one(method, &config, &model, &sc, &episode);
        let il_frames = r
            .trace
            .iter()
            .filter(|f| f.mode == Some(ModeTag::Il))
            .count();
        let last = r.trace.last();
        println!(
            "seed {seed}: {:?} t={:.1}s frames={} IL-mode={:.0}% end=({:.1},{:.1},{:.2}) u_last={:.3}",
            r.outcome,
            r.parking_time,
            r.frames,
            100.0 * il_frames as f64 / r.frames.max(1) as f64,
            last.map_or(0.0, |f| f.pose.x),
            last.map_or(0.0, |f| f.pose.y),
            last.map_or(0.0, |f| f.pose.theta),
            last.and_then(|f| f.uncertainty).unwrap_or(f64::NAN),
        );
    }
}
