//! Ablation: action-space resolution `M` (steering bins).
//!
//! Fig. 5 notes the IL curve is "stepped and less smooth" because of
//! action discretization. This sweep trains small IL models at several
//! steering resolutions and measures imitation smoothness (mean absolute
//! steering error vs the expert) and training accuracy.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin ablate_actions
//! ```

use icoil_bench::RunSize;
use icoil_il::{collect_demonstrations, train, ExpertPolicy, TrainConfig};
use icoil_perception::{BevConfig, BevRenderer};
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{Observation, Policy};
use icoil_world::{Difficulty, NoiseConfig, ScenarioConfig, World};
use rand::SeedableRng;

fn main() {
    let size = RunSize::from_env();
    let bev = BevConfig::default();
    let scenarios: Vec<ScenarioConfig> = (0..size.train_episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, 1000 + s))
        .collect();

    println!("# Ablation: steering bins M = 3 × bins");
    println!("# bins  M   train_acc  steer_mae");
    for bins in [3usize, 5, 7, 11] {
        let codec = ActionCodec::new(bins, 0.6).expect("odd bins ≥ 3");
        let dataset = collect_demonstrations(&scenarios, &codec, &bev, 90.0);
        let train_config = TrainConfig {
            epochs: size.train_epochs,
            ..TrainConfig::default()
        };
        let (mut model, report) = train(&dataset, &codec, &bev, &train_config);

        // steering error against the expert on a held-out episode
        let scenario = ScenarioConfig::new(Difficulty::Easy, 4242).build();
        let params = scenario.vehicle_params;
        let renderer = BevRenderer::new(bev);
        let mut world = World::new(scenario);
        let mut expert = ExpertPolicy::new(params);
        expert.begin_episode(&Observation::new(&world));
        let mut mae = 0.0;
        let mut frames = 0usize;
        loop {
            let obs = Observation::new(&world);
            let decision = expert.decide(&obs);
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
            let image = renderer.render(
                &obs.ego(),
                &obs.obstacles(),
                world.map(),
                &NoiseConfig::none(),
                &mut rng,
            );
            let il = model.infer(&image);
            mae += (il.action.steer - decision.action.steer).abs();
            frames += 1;
            world.step(&decision.action);
            if world.in_collision() || world.at_goal() || world.time() > 90.0 {
                break;
            }
        }
        println!(
            "{bins:5}  {:2}  {:9.3}  {:9.3}",
            codec.num_classes(),
            report.final_accuracy(),
            mae / frames as f64
        );
    }
}
