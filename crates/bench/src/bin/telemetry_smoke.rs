//! End-to-end telemetry smoke check, wired into `scripts/check.sh`.
//!
//! Runs one traced iCOIL episode with an NDJSON sink attached, then
//! verifies the observability contract end to end:
//!
//! * every emitted trace line re-parses as JSON and carries the event
//!   tag plus the per-frame fields downstream tooling keys on;
//! * the trace agrees with the aggregated metrics (frame counts, solve
//!   counts, episode summary);
//! * `BENCH_perf.json`, `BENCH_serve.json` and `BENCH_scenarios.json`
//!   (when present in the working directory) pass the
//!   [`icoil_bench::validate_perf_json`] /
//!   [`icoil_bench::validate_serve_json`] /
//!   [`icoil_bench::validate_scenarios_json`] schema checks and
//!   round-trip through the JSON layer.
//!
//! Exits non-zero on the first violation, printing what broke.

use icoil_bench::{
    validate_perf_json, validate_scenarios_json, validate_serve_json, ScenariosReport, ServeReport,
};
use icoil_core::eval::drain_episode_metrics;
use icoil_core::{ICoilConfig, ICoilPolicy};
use icoil_il::IlModel;
use icoil_telemetry::{Counter, NdjsonSink, Series};
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{run_episode, EpisodeConfig, Policy};
use icoil_world::{Difficulty, ScenarioConfig, World};
use serde_json::Value;
use std::process::ExitCode;

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("trace line is missing {key:?}"))
}

fn check_trace(lines: &[String]) -> Result<(usize, usize), String> {
    let mut frames = 0;
    let mut solves = 0;
    let mut episodes = 0;
    for line in lines {
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("trace line does not re-parse ({e:?}): {line}"))?;
        let tag = field(&v, "t")?
            .as_str()
            .ok_or_else(|| format!("event tag is not a string: {line}"))?
            .to_string();
        match tag.as_str() {
            "frame" => {
                frames += 1;
                for key in ["frame", "time", "mode", "raw_mode", "u", "c", "ratio", "total_us"] {
                    let value = field(&v, key)?;
                    if value.as_f64().is_none() && value.as_str().is_none() {
                        return Err(format!("frame field {key:?} is null: {line}"));
                    }
                }
                if let Some(solve) = v.get("solve") {
                    solves += 1;
                    for key in ["scp", "admm", "backend"] {
                        field(solve, key)?;
                    }
                }
            }
            "episode" => {
                episodes += 1;
                for key in ["outcome", "frames", "time", "path_length"] {
                    field(&v, key)?;
                }
            }
            other => return Err(format!("unknown event tag {other:?}: {line}")),
        }
    }
    if episodes != 1 {
        return Err(format!("expected exactly one episode event, saw {episodes}"));
    }
    Ok((frames, solves))
}

fn run() -> Result<(), String> {
    // 1) one traced episode through the full iCOIL policy
    let config = ICoilConfig::default();
    let model = IlModel::untrained(ActionCodec::default(), config.bev, 1);
    let scenario = ScenarioConfig::new(Difficulty::Easy, 11).build();
    let mut policy = ICoilPolicy::new(&config, model, &scenario);
    let mut world = World::new(scenario);

    let trace_path = std::env::temp_dir().join("icoil_telemetry_smoke.ndjson");
    let sink = NdjsonSink::to_file(&trace_path)
        .map_err(|e| format!("cannot create {}: {e}", trace_path.display()))?;
    policy
        .recorder_mut()
        .expect("iCOIL policy is instrumented")
        .set_sink(Box::new(sink));

    let result = run_episode(
        &mut world,
        &mut policy,
        &EpisodeConfig {
            max_time: 5.0,
            record_trace: false,
        },
    );
    let metrics = drain_episode_metrics(&mut policy, &result);

    // 2) the trace re-parses and agrees with the aggregated metrics
    let raw = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("cannot read {}: {e}", trace_path.display()))?;
    let lines: Vec<String> = raw.lines().map(str::to_string).collect();
    let (frames, solves) = check_trace(&lines)?;
    if frames != result.frames {
        return Err(format!(
            "trace has {frames} frame events but the episode ran {} frames",
            result.frames
        ));
    }
    if metrics.counter(Counter::Frames) as usize != frames {
        return Err(format!(
            "metrics count {} frames but the trace has {frames}",
            metrics.counter(Counter::Frames)
        ));
    }
    if metrics.counter(Counter::MpcSolves) as usize != solves {
        return Err(format!(
            "metrics count {} MPC solves but the trace has {solves}",
            metrics.counter(Counter::MpcSolves)
        ));
    }
    if metrics.counter(Counter::Episodes) != 1 {
        return Err("metrics did not record the episode summary".to_string());
    }
    if metrics.series(Series::FrameTotal).count() as usize != frames {
        return Err("frame-latency histogram disagrees with the frame count".to_string());
    }
    println!(
        "telemetry smoke: {frames} frames, {solves} solves, trace re-parsed from {}",
        trace_path.display()
    );
    let _ = std::fs::remove_file(&trace_path);

    // 3) BENCH_perf.json schema, when the baseline is present
    match std::fs::read_to_string("BENCH_perf.json") {
        Ok(raw) => {
            let v: Value = serde_json::from_str(&raw)
                .map_err(|e| format!("BENCH_perf.json does not parse: {e:?}"))?;
            validate_perf_json(&v)?;
            println!("telemetry smoke: BENCH_perf.json schema OK");
        }
        Err(_) => println!("telemetry smoke: no BENCH_perf.json in cwd, schema check skipped"),
    }

    // 4) BENCH_serve.json schema + round-trip, when present
    match std::fs::read_to_string("BENCH_serve.json") {
        Ok(raw) => {
            let v: Value = serde_json::from_str(&raw)
                .map_err(|e| format!("BENCH_serve.json does not parse: {e:?}"))?;
            validate_serve_json(&v)?;
            let report: ServeReport = serde_json::from_str(&raw)
                .map_err(|e| format!("BENCH_serve.json does not deserialize: {e:?}"))?;
            let reencoded = serde_json::to_string(&report)
                .map_err(|e| format!("BENCH_serve.json does not re-serialize: {e:?}"))?;
            let v2: Value = serde_json::from_str(&reencoded)
                .map_err(|e| format!("re-serialized BENCH_serve.json does not parse: {e:?}"))?;
            validate_serve_json(&v2)?;
            println!("telemetry smoke: BENCH_serve.json schema + round-trip OK");
        }
        Err(_) => println!("telemetry smoke: no BENCH_serve.json in cwd, schema check skipped"),
    }

    // 5) BENCH_scenarios.json schema + round-trip, when present
    match std::fs::read_to_string("BENCH_scenarios.json") {
        Ok(raw) => {
            let v: Value = serde_json::from_str(&raw)
                .map_err(|e| format!("BENCH_scenarios.json does not parse: {e:?}"))?;
            validate_scenarios_json(&v)?;
            let report: ScenariosReport = serde_json::from_str(&raw)
                .map_err(|e| format!("BENCH_scenarios.json does not deserialize: {e:?}"))?;
            let reencoded = serde_json::to_string(&report)
                .map_err(|e| format!("BENCH_scenarios.json does not re-serialize: {e:?}"))?;
            let v2: Value = serde_json::from_str(&reencoded)
                .map_err(|e| format!("re-serialized BENCH_scenarios.json does not parse: {e:?}"))?;
            validate_scenarios_json(&v2)?;
            println!("telemetry smoke: BENCH_scenarios.json schema + round-trip OK");
        }
        Err(_) => {
            println!("telemetry smoke: no BENCH_scenarios.json in cwd, schema check skipped")
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("telemetry smoke FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}
