//! Regenerates **Fig. 5**: steering values of the trained IL policy vs
//! the expert ("human driver" substitute) over one demonstration episode.
//!
//! The IL is replayed *open-loop* on the expert's frames: at every frame
//! of the expert's successful episode, the IL model predicts an action
//! from the same BEV image, and both steering commands are printed. The
//! IL curve is stepped (discretized actions); the expert curve is smooth
//! — exactly the comparison in the paper.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin fig5
//! ```

use icoil_bench::{shared_model, RunSize};
use icoil_il::ExpertPolicy;
use icoil_perception::BevRenderer;
use icoil_world::episode::{Observation, Policy};
use icoil_world::{Difficulty, NoiseConfig, ScenarioConfig, World};
use rand::SeedableRng;

fn main() {
    let size = RunSize::from_env();
    let mut model = shared_model(&size);
    let renderer = BevRenderer::new(*model.bev_config());

    // a fresh scenario the model never saw during training
    let scenario = ScenarioConfig::new(Difficulty::Easy, 4242).build();
    let params = scenario.vehicle_params;
    let mut world = World::new(scenario);
    let mut expert = ExpertPolicy::new(params);
    expert.begin_episode(&Observation::new(&world));

    println!("# Fig. 5: steering values of IL and the expert driver");
    println!("# frame  time_s  expert_steer  il_steer  il_class");
    let mut agree = 0usize;
    let mut frames = 0usize;
    loop {
        let obs = Observation::new(&world);
        let decision = expert.decide(&obs);
        let ego = obs.ego();
        let truth = obs.obstacles();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let image = renderer.render(&ego, &truth, world.map(), &NoiseConfig::none(), &mut rng);
        let il = model.infer(&image);
        if world.frame().is_multiple_of(5) {
            println!(
                "{:5}  {:6.2}  {:+.4}  {:+.4}  {}",
                world.frame(),
                world.time(),
                decision.action.steer,
                il.action.steer,
                il.class
            );
        }
        frames += 1;
        if (il.action.steer - decision.action.steer).abs() < 0.2
            && il.action.reverse == decision.action.reverse
        {
            agree += 1;
        }
        world.step(&decision.action);
        if world.in_collision() || world.at_goal() || world.time() > 90.0 {
            break;
        }
    }
    println!(
        "# agreement (steer within 0.2 and same gear): {:.1}% over {} frames",
        100.0 * agree as f64 / frames as f64,
        frames
    );
}
