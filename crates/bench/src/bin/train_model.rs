//! Builds (or rebuilds) the shared IL model artifact with a full report:
//! dataset composition, per-round DAgger progress, and a quick
//! closed-loop check.
//!
//! ```text
//! ICOIL_TRAIN_EPISODES=16 ICOIL_TRAIN_EPOCHS=30 ICOIL_DAGGER_ROUNDS=2 \
//!     cargo run --release -p icoil-bench --bin train_model
//! ```

use icoil_bench::{model_path, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_il::{collect_demonstrations, dagger_train, DaggerConfig, TrainConfig};
use icoil_vehicle::ActionCodec;
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ParkingStats, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let config = ICoilConfig::default();
    let codec = ActionCodec::default();

    println!(
        "# training: {} expert episodes, {} epochs, {} DAgger rounds",
        size.train_episodes, size.train_epochs, size.dagger_rounds
    );
    let scenarios: Vec<ScenarioConfig> = (0..size.train_episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, 1000 + s))
        .collect();
    let dataset = collect_demonstrations(&scenarios, &codec, &config.bev, 90.0);
    println!("# seed dataset: {} samples", dataset.len());
    let counts = dataset.class_counts(codec.num_classes());
    let fwd: usize = counts[2 * codec.steer_bins()..].iter().sum();
    let rev: usize = counts[..codec.steer_bins()].iter().sum();
    let stop: usize = counts[codec.steer_bins()..2 * codec.steer_bins()].iter().sum();
    println!("#   forward {fwd}  reverse {rev}  stop {stop}");

    let dagger_config = DaggerConfig {
        rounds: size.dagger_rounds,
        episodes_per_round: (size.train_episodes / 2).max(2),
        max_time: 60.0,
        train: TrainConfig {
            epochs: size.train_epochs,
            ..TrainConfig::default()
        },
    };
    let (model, report) = dagger_train(dataset, 2000, &codec, &config.bev, &dagger_config);
    for (round, (n, acc)) in report
        .dataset_sizes
        .iter()
        .zip(&report.accuracies)
        .enumerate()
    {
        println!("# round {round}: {n} samples, train accuracy {acc:.3}");
    }

    let path = model_path();
    std::fs::create_dir_all(path.parent().expect("artifacts dir")).expect("create dir");
    std::fs::write(&path, model.to_json()).expect("write artifact");
    println!("# wrote {}", path.display());

    // quick closed-loop check on held-out seeds
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: false,
    };
    let held_out: Vec<ScenarioConfig> = (0..8)
        .map(|s| ScenarioConfig::new(Difficulty::Easy, s))
        .collect();
    let results = eval::run_batch_with(Method::Il, &config, &model, &held_out, &episode, &size.eval_config());
    let stats = ParkingStats::from_results(&results);
    println!(
        "# held-out IL closed-loop: success {:.0}% avg {:.1}s",
        stats.success_ratio() * 100.0,
        stats.avg_time
    );
}
