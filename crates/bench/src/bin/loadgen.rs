//! Serving load generator — emits `BENCH_serve.json`.
//!
//! Drives the `icoil-serve` engine through three phases and reports
//! sessions/sec, per-lane frame-latency percentiles, IL micro-batch
//! statistics, and the shed rate at two offered loads:
//!
//! 1. **IL phase** — the HSA threshold is forced to `+∞` so every frame
//!    stays on the IL lane: clean micro-batch latency and batch-width
//!    numbers with zero CO contention;
//! 2. **IL int8 phase** — the same IL-only load with every session
//!    pinned to the calibrated int8 lane; `frames_per_sec_int8` times
//!    only the stepping loop, so the one-off startup calibration does
//!    not pollute the throughput number;
//! 3. **CO phase (provisioned)** — an untrained model keeps every
//!    session on the CO lane with a generous deadline and queue: CO-lane
//!    latency under a load the lane can carry, `shed_rate_low` must be 0;
//! 4. **Overload phase** — one worker, a queue of 2 and a 1 ms deadline
//!    against twice the sessions: the lane must shed (degraded
//!    full-brake responses) instead of blocking, `shed_rate_overload`
//!    must be positive;
//! 5. **Shard sweep** — IL-only sessions replayed at 1, 2, 4 and 8
//!    engine shards with the *offered load scaled by the shard count*
//!    (a flat load would leave added shards idle and remeasure the
//!    1-shard rate), recording sessions/sec and the mean per-shard IL
//!    micro-batch width at each point;
//! 6. **Adapt phase** — the online-adaptation flywheel on the hard
//!    family tail (`parallel_curb`, `dead_end_stub`, `crowded_lot`):
//!    a fixed evaluation scenario set served three times against a
//!    shared weight store, with a DAgger-style retraining round (warm-
//!    started from the previous weights, fed by the harvested CO-expert
//!    labels) hot-swapped in between. Safety projection is enabled
//!    throughout. The report must show the IL mode share strictly
//!    rising and the CO + shed load strictly falling generation over
//!    generation at zero collisions, plus per-family CO admit/shed
//!    counters (attributed here and in the overload phase — seeded
//!    scenarios carry no family).
//!
//! The file lands in the working directory (the repo root under
//! `cargo run`). Run sizes honor `ICOIL_SERVE_SESSIONS` (default 8),
//! `ICOIL_SERVE_FRAMES` (default 50), `ICOIL_SERVE_SWEEP_SESSIONS`
//! (default 2000), `ICOIL_SERVE_SWEEP_FRAMES` (default 8),
//! `ICOIL_ADAPT_SESSIONS` (episodes per family per generation, default
//! 2), `ICOIL_ADAPT_FRAMES` (default 40) and `ICOIL_ADAPT_EPOCHS`
//! (retraining passes per round, default 8):
//!
//! ```text
//! cargo run --release -p icoil-bench --bin loadgen
//! ```
//!
//! An untrained IL model is used throughout: inference cost does not
//! depend on the weight values, and it keeps the bin self-contained.

use icoil_adapt::WeightStore;
use icoil_bench::adapt::{run_adapt_phase, AdaptOptions};
use icoil_bench::ServeReport;
use icoil_core::ICoilConfig;
use icoil_hsa::HsaConfig;
use icoil_il::{IlModel, IlPrecision};
use icoil_perception::BevConfig;
use icoil_serve::{Serve, ServeConfig, SessionConfig, SessionSpec};
use icoil_telemetry::{Counter, Metrics, Series};
use icoil_vehicle::ActionCodec;
use icoil_world::{Difficulty, MapFamilyKind, ProcGen, ProcGenConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_size(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `sessions` episodes of `frames` frames each against a fresh
/// server; returns the server's final telemetry snapshot and the
/// wall-clock seconds of the stepping loop alone (startup, session
/// creation and any int8 calibration excluded).
fn run_phase(config: ServeConfig, sessions: u64, frames: u64, seed0: u64) -> (Metrics, f64) {
    let specs = (0..sessions)
        .map(|i| {
            SessionSpec::Seeded(SessionConfig {
                difficulty: Difficulty::Normal,
                seed: seed0 + i,
            })
        })
        .collect();
    run_phase_specs(config, specs, frames)
}

/// [`run_phase`] with explicit session specs (the overload phase pins
/// procedural map families so the per-family shed counters attribute).
fn run_phase_specs(config: ServeConfig, specs: Vec<SessionSpec>, frames: u64) -> (Metrics, f64) {
    let model = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 1);
    let server = Serve::start(config, model);
    let handle = server.handle();
    let ids: Vec<u64> = specs
        .into_iter()
        .map(|spec| handle.create(spec).expect("create session"))
        .collect();
    let t0 = Instant::now();
    for _ in 0..frames {
        for result in handle.step_many(&ids) {
            result.expect("serving must answer every step");
        }
    }
    let stepping_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let metrics = handle.metrics().expect("metrics snapshot");
    server.shutdown();
    (metrics, stepping_secs)
}

fn shed_rate(metrics: &Metrics) -> f64 {
    let shed = metrics.counter(Counter::CoShed) as f64;
    let admitted = metrics.counter(Counter::CoAdmitted) as f64;
    if shed + admitted == 0.0 {
        0.0
    } else {
        shed / (shed + admitted)
    }
}

fn main() {
    let sessions = env_size("ICOIL_SERVE_SESSIONS", 8);
    let frames = env_size("ICOIL_SERVE_FRAMES", 50);
    let base = ServeConfig {
        co_deadline: Duration::from_secs(30),
        queue_capacity: 64,
        ..ServeConfig::default()
    };

    let t0 = Instant::now();

    // phase 1: pure IL lane (ratio ≤ λ always holds at λ = +∞)
    let il_config = ServeConfig {
        icoil: ICoilConfig {
            hsa: HsaConfig {
                lambda: f64::INFINITY,
                initial_mode: icoil_hsa::Mode::Il,
                ..HsaConfig::default()
            },
            ..ICoilConfig::default()
        },
        ..base
    };
    let (il_metrics, _) = run_phase(il_config, sessions, frames, 9000);

    // phase 2: the same IL-only load with every session pinned to the
    // calibrated int8 lane; only the stepping loop is timed, so the
    // startup calibration stays out of the throughput number
    let int8_config = ServeConfig {
        il_precision: IlPrecision::Int8,
        ..il_config
    };
    let (int8_metrics, int8_secs) = run_phase(int8_config, sessions, frames, 9050);
    let frames_per_sec_int8 = (sessions * frames) as f64 / int8_secs;
    assert_eq!(
        int8_metrics.counter(Counter::IlFramesInt8),
        sessions * frames,
        "every int8-phase frame must go through the quantized lane"
    );

    // phase 3: pure CO lane (untrained model → high uncertainty), carried
    let (co_metrics, _) = run_phase(base, sessions, frames, 9100);

    // phase 4: deliberate overload — must shed, never block. Sessions
    // cycle the procedural map families so the per-family admit/shed
    // counters attribute the pressure (seeded scenarios carry no family).
    let overload_config = ServeConfig {
        co_workers: 1,
        queue_capacity: 2,
        co_deadline: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let overload_frames = (frames / 4).max(5);
    let overload_specs: Vec<SessionSpec> = (0..sessions * 2)
        .map(|i| {
            let family = MapFamilyKind::ALL[i as usize % MapFamilyKind::ALL.len()];
            let gen = ProcGen::new(ProcGenConfig {
                family: Some(family),
                ..ProcGenConfig::default()
            });
            SessionSpec::Scenario(Box::new(gen.generate(9200 + i).build()))
        })
        .collect();
    let (overload_metrics, _) = run_phase_specs(overload_config, overload_specs, overload_frames);

    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let total_sessions = sessions * 3 + sessions * 2;
    let total_frames = sessions * frames * 3 + sessions * 2 * overload_frames;

    // phase 5: shard-scaling sweep — thousands of sessions, IL lane only
    // (λ = +∞ keeps the CO pool idle), so the measured curve is the
    // sharded engine's own session-handling throughput. The offered load
    // scales with the shard count: at a fixed load the per-shard session
    // slice shrinks as shards are added, added shards idle between the
    // same number of ticks, and the sweep flatlines at the 1-shard rate.
    let sweep_sessions = env_size("ICOIL_SERVE_SWEEP_SESSIONS", 2000);
    let sweep_frames = env_size("ICOIL_SERVE_SWEEP_FRAMES", 8);
    let mut sweep_rates = [0.0_f64; 4];
    let mut sweep_batch_means = [0.0_f64; 4];
    for (slot, shards) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let offered = sweep_sessions * shards as u64;
        // the cap is enforced globally at the handle, so offered load
        // can size it exactly — hash skew never rejects early
        let sweep_config = ServeConfig {
            shards,
            max_sessions: offered as usize,
            ..il_config
        };
        let (sweep_metrics, sweep_secs) = run_phase(
            sweep_config,
            offered,
            sweep_frames,
            9300 + slot as u64 * 10_000,
        );
        sweep_rates[slot] = offered as f64 / sweep_secs;
        // each shard records the width of its own micro-batches, so the
        // merged histogram's mean is the per-shard mean batch width
        sweep_batch_means[slot] = sweep_metrics.series(Series::IlBatchSize).mean();
        assert_eq!(
            sweep_metrics.counter(Counter::ServeSessions),
            offered,
            "sweep at {shards} shard(s) lost sessions"
        );
    }

    // phase 6: online adaptation — the DAgger flywheel on the hard
    // family tail (parallel_curb, dead_end_stub, crowded_lot). A fixed
    // evaluation scenario set is served three times against a shared
    // weight store: generation 0 rides untrained seed weights, then each
    // retraining round consumes the harvested CO-expert labels, warm-
    // starts from the previous generation and hot-swaps the result in.
    // Safety projection is on throughout, so the mode-share trend is
    // priced at a fixed safety bar (zero collisions, asserted below).
    let adapt_opts = AdaptOptions {
        sessions_per_family: env_size("ICOIL_ADAPT_SESSIONS", 2),
        frames_per_session: env_size("ICOIL_ADAPT_FRAMES", 40),
        epochs_per_generation: env_size("ICOIL_ADAPT_EPOCHS", 8) as usize,
        ..AdaptOptions::default()
    };
    let adapt_generations = 3u64;
    let mut adapt_icoil = ICoilConfig::default();
    adapt_icoil.safety.enabled = true;
    let adapt_config = ServeConfig {
        icoil: adapt_icoil,
        co_deadline: Duration::from_secs(30),
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let store = Arc::new(WeightStore::new(IlModel::untrained(
        ActionCodec::default(),
        adapt_config.icoil.bev,
        1,
    )));
    let adapt = run_adapt_phase(
        &store,
        &adapt_config,
        &adapt_opts,
        adapt_generations as usize,
        1,
        400,
    );
    assert_eq!(adapt.generations.len(), 3, "the adapt phase runs three generations");
    let adapt_metrics = adapt.merged_metrics();
    let adapt_collisions: u64 = adapt.generations.iter().map(|g| g.collisions).sum();
    let family_counter = |metrics: &Metrics, table: &[Counter; 6], kind: MapFamilyKind| {
        metrics.counter(table[kind.index()]) as f64
    };
    let admits = |kind| {
        family_counter(&adapt_metrics, &Counter::CO_ADMITTED_BY_FAMILY, kind)
            + family_counter(&overload_metrics, &Counter::CO_ADMITTED_BY_FAMILY, kind)
    };
    let sheds = |kind| {
        family_counter(&adapt_metrics, &Counter::CO_SHED_BY_FAMILY, kind)
            + family_counter(&overload_metrics, &Counter::CO_SHED_BY_FAMILY, kind)
    };

    let il_lane = il_metrics.series(Series::ServeIlLane);
    let co_lane = co_metrics.series(Series::ServeCoLane);
    let batches = il_metrics.series(Series::IlBatchSize);
    let mut report = ServeReport {
        sessions_per_sec: total_sessions as f64 / elapsed,
        frames_per_sec: total_frames as f64 / elapsed,
        frames_per_sec_int8,
        il_p50_us: il_lane.quantile(0.50) * 1e6,
        il_p95_us: il_lane.quantile(0.95) * 1e6,
        il_p99_us: il_lane.quantile(0.99) * 1e6,
        co_p50_us: co_lane.quantile(0.50) * 1e6,
        co_p95_us: co_lane.quantile(0.95) * 1e6,
        co_p99_us: co_lane.quantile(0.99) * 1e6,
        batch_size_mean: batches.mean(),
        batch_size_max: batches.max(),
        shed_rate_low: shed_rate(&co_metrics),
        shed_rate_overload: shed_rate(&overload_metrics),
        sweep_sessions_per_sec_s1: sweep_rates[0],
        sweep_sessions_per_sec_s2: sweep_rates[1],
        sweep_sessions_per_sec_s4: sweep_rates[2],
        sweep_sessions_per_sec_s8: sweep_rates[3],
        sweep_batch_mean_s1: sweep_batch_means[0],
        sweep_batch_mean_s2: sweep_batch_means[1],
        sweep_batch_mean_s4: sweep_batch_means[2],
        sweep_batch_mean_s8: sweep_batch_means[3],
        adapt_il_share_g0: adapt.generations[0].il_share(),
        adapt_il_share_g1: adapt.generations[1].il_share(),
        adapt_il_share_g2: adapt.generations[2].il_share(),
        adapt_co_shed_share_g0: adapt.generations[0].co_shed_share(),
        adapt_co_shed_share_g1: adapt.generations[1].co_shed_share(),
        adapt_co_shed_share_g2: adapt.generations[2].co_shed_share(),
        adapt_collisions: adapt_collisions as f64,
        adapt_dataset_frames: adapt.dataset_len as f64,
        adapt_safety_projections: adapt_metrics.counter(Counter::SafetyProjections) as f64,
        co_admitted_reverse_in: admits(MapFamilyKind::ReverseIn),
        co_admitted_parallel_curb: admits(MapFamilyKind::ParallelCurb),
        co_admitted_angled_echelon: admits(MapFamilyKind::AngledEchelon),
        co_admitted_pillared_garage: admits(MapFamilyKind::PillaredGarage),
        co_admitted_dead_end_stub: admits(MapFamilyKind::DeadEndStub),
        co_admitted_crowded_lot: admits(MapFamilyKind::CrowdedLot),
        co_shed_reverse_in: sheds(MapFamilyKind::ReverseIn),
        co_shed_parallel_curb: sheds(MapFamilyKind::ParallelCurb),
        co_shed_angled_echelon: sheds(MapFamilyKind::AngledEchelon),
        co_shed_pillared_garage: sheds(MapFamilyKind::PillaredGarage),
        co_shed_dead_end_stub: sheds(MapFamilyKind::DeadEndStub),
        co_shed_crowded_lot: sheds(MapFamilyKind::CrowdedLot),
        had_nonfinite: false,
        sessions,
        frames_per_session: frames,
        co_workers: base.co_workers as u64,
        sweep_sessions,
        sweep_frames,
        adapt_sessions: adapt_opts.sessions_per_family * adapt_opts.families.len() as u64,
        adapt_frames_per_session: adapt_opts.frames_per_session,
        adapt_generations,
    };
    report.sanitize();

    assert_eq!(
        report.shed_rate_low, 0.0,
        "the provisioned CO phase must not shed"
    );
    assert!(
        report.shed_rate_overload > 0.0,
        "the overload phase must shed instead of blocking"
    );
    assert!(
        report.adapt_il_share_g0 < report.adapt_il_share_g1
            && report.adapt_il_share_g1 < report.adapt_il_share_g2,
        "the IL mode share must rise strictly across retraining generations: \
         {:.3} / {:.3} / {:.3}",
        report.adapt_il_share_g0,
        report.adapt_il_share_g1,
        report.adapt_il_share_g2,
    );
    assert!(
        report.adapt_co_shed_share_g0 > report.adapt_co_shed_share_g1
            && report.adapt_co_shed_share_g1 > report.adapt_co_shed_share_g2,
        "the CO + shed load must fall strictly across retraining generations: \
         {:.3} / {:.3} / {:.3}",
        report.adapt_co_shed_share_g0,
        report.adapt_co_shed_share_g1,
        report.adapt_co_shed_share_g2,
    );
    assert_eq!(
        report.adapt_collisions, 0.0,
        "the adaptation trend is only admissible at zero collisions"
    );

    println!(
        "serve load: {} sessions x {} frames | IL p50/p95/p99 {:.0}/{:.0}/{:.0} us \
         (batch mean {:.1}, max {:.0}) | CO p50/p95/p99 {:.0}/{:.0}/{:.0} us | \
         shed {:.3} low, {:.3} overload | {:.1} frames/s",
        report.sessions,
        report.frames_per_session,
        report.il_p50_us,
        report.il_p95_us,
        report.il_p99_us,
        report.batch_size_mean,
        report.batch_size_max,
        report.co_p50_us,
        report.co_p95_us,
        report.co_p99_us,
        report.shed_rate_low,
        report.shed_rate_overload,
        report.frames_per_sec,
    );
    println!(
        "int8 IL phase: {:.1} frames/s through the quantized lane (stepping loop only)",
        report.frames_per_sec_int8,
    );
    println!(
        "adapt phase: {} generations x {} sessions x {} frames (hard families, safety on) | \
         IL share {:.3} -> {:.3} -> {:.3} | CO+shed {:.3} -> {:.3} -> {:.3} | \
         {} dataset frames | {} safety clips | {} collisions",
        report.adapt_generations,
        report.adapt_sessions,
        report.adapt_frames_per_session,
        report.adapt_il_share_g0,
        report.adapt_il_share_g1,
        report.adapt_il_share_g2,
        report.adapt_co_shed_share_g0,
        report.adapt_co_shed_share_g1,
        report.adapt_co_shed_share_g2,
        report.adapt_dataset_frames,
        report.adapt_safety_projections,
        report.adapt_collisions,
    );
    println!(
        "shard sweep: {} sessions/shard x {} frames (IL lane, load scaled by shard count) | \
         sessions/s at 1/2/4/8 shards: {:.0}/{:.0}/{:.0}/{:.0} | \
         mean per-shard batch width: {:.1}/{:.1}/{:.1}/{:.1}",
        report.sweep_sessions,
        report.sweep_frames,
        report.sweep_sessions_per_sec_s1,
        report.sweep_sessions_per_sec_s2,
        report.sweep_sessions_per_sec_s4,
        report.sweep_sessions_per_sec_s8,
        report.sweep_batch_mean_s1,
        report.sweep_batch_mean_s2,
        report.sweep_batch_mean_s4,
        report.sweep_batch_mean_s8,
    );

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
