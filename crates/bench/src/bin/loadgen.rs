//! Serving load generator — emits `BENCH_serve.json`.
//!
//! Drives the `icoil-serve` engine through three phases and reports
//! sessions/sec, per-lane frame-latency percentiles, IL micro-batch
//! statistics, and the shed rate at two offered loads:
//!
//! 1. **IL phase** — the HSA threshold is forced to `+∞` so every frame
//!    stays on the IL lane: clean micro-batch latency and batch-width
//!    numbers with zero CO contention;
//! 2. **IL int8 phase** — the same IL-only load with every session
//!    pinned to the calibrated int8 lane; `frames_per_sec_int8` times
//!    only the stepping loop, so the one-off startup calibration does
//!    not pollute the throughput number;
//! 3. **CO phase (provisioned)** — an untrained model keeps every
//!    session on the CO lane with a generous deadline and queue: CO-lane
//!    latency under a load the lane can carry, `shed_rate_low` must be 0;
//! 4. **Overload phase** — one worker, a queue of 2 and a 1 ms deadline
//!    against twice the sessions: the lane must shed (degraded
//!    full-brake responses) instead of blocking, `shed_rate_overload`
//!    must be positive;
//! 5. **Shard sweep** — IL-only sessions replayed at 1, 2, 4 and 8
//!    engine shards with the *offered load scaled by the shard count*
//!    (a flat load would leave added shards idle and remeasure the
//!    1-shard rate), recording sessions/sec and the mean per-shard IL
//!    micro-batch width at each point.
//!
//! The file lands in the working directory (the repo root under
//! `cargo run`). Run sizes honor `ICOIL_SERVE_SESSIONS` (default 8),
//! `ICOIL_SERVE_FRAMES` (default 50), `ICOIL_SERVE_SWEEP_SESSIONS`
//! (default 2000) and `ICOIL_SERVE_SWEEP_FRAMES` (default 8):
//!
//! ```text
//! cargo run --release -p icoil-bench --bin loadgen
//! ```
//!
//! An untrained IL model is used throughout: inference cost does not
//! depend on the weight values, and it keeps the bin self-contained.

use icoil_bench::ServeReport;
use icoil_core::ICoilConfig;
use icoil_hsa::HsaConfig;
use icoil_il::{IlModel, IlPrecision};
use icoil_perception::BevConfig;
use icoil_serve::{Serve, ServeConfig, SessionConfig};
use icoil_telemetry::{Counter, Metrics, Series};
use icoil_vehicle::ActionCodec;
use icoil_world::Difficulty;
use std::time::{Duration, Instant};

fn env_size(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `sessions` episodes of `frames` frames each against a fresh
/// server; returns the server's final telemetry snapshot and the
/// wall-clock seconds of the stepping loop alone (startup, session
/// creation and any int8 calibration excluded).
fn run_phase(config: ServeConfig, sessions: u64, frames: u64, seed0: u64) -> (Metrics, f64) {
    let model = IlModel::untrained(ActionCodec::default(), BevConfig::default(), 1);
    let server = Serve::start(config, model);
    let handle = server.handle();
    let ids: Vec<u64> = (0..sessions)
        .map(|i| {
            handle
                .create(SessionConfig {
                    difficulty: Difficulty::Normal,
                    seed: seed0 + i,
                })
                .expect("create session")
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..frames {
        for result in handle.step_many(&ids) {
            result.expect("serving must answer every step");
        }
    }
    let stepping_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let metrics = handle.metrics().expect("metrics snapshot");
    server.shutdown();
    (metrics, stepping_secs)
}

fn shed_rate(metrics: &Metrics) -> f64 {
    let shed = metrics.counter(Counter::CoShed) as f64;
    let admitted = metrics.counter(Counter::CoAdmitted) as f64;
    if shed + admitted == 0.0 {
        0.0
    } else {
        shed / (shed + admitted)
    }
}

fn main() {
    let sessions = env_size("ICOIL_SERVE_SESSIONS", 8);
    let frames = env_size("ICOIL_SERVE_FRAMES", 50);
    let base = ServeConfig {
        co_deadline: Duration::from_secs(30),
        queue_capacity: 64,
        ..ServeConfig::default()
    };

    let t0 = Instant::now();

    // phase 1: pure IL lane (ratio ≤ λ always holds at λ = +∞)
    let il_config = ServeConfig {
        icoil: ICoilConfig {
            hsa: HsaConfig {
                lambda: f64::INFINITY,
                initial_mode: icoil_hsa::Mode::Il,
                ..HsaConfig::default()
            },
            ..ICoilConfig::default()
        },
        ..base
    };
    let (il_metrics, _) = run_phase(il_config, sessions, frames, 9000);

    // phase 2: the same IL-only load with every session pinned to the
    // calibrated int8 lane; only the stepping loop is timed, so the
    // startup calibration stays out of the throughput number
    let int8_config = ServeConfig {
        il_precision: IlPrecision::Int8,
        ..il_config
    };
    let (int8_metrics, int8_secs) = run_phase(int8_config, sessions, frames, 9050);
    let frames_per_sec_int8 = (sessions * frames) as f64 / int8_secs;
    assert_eq!(
        int8_metrics.counter(Counter::IlFramesInt8),
        sessions * frames,
        "every int8-phase frame must go through the quantized lane"
    );

    // phase 3: pure CO lane (untrained model → high uncertainty), carried
    let (co_metrics, _) = run_phase(base, sessions, frames, 9100);

    // phase 4: deliberate overload — must shed, never block
    let overload_config = ServeConfig {
        co_workers: 1,
        queue_capacity: 2,
        co_deadline: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let overload_frames = (frames / 4).max(5);
    let (overload_metrics, _) = run_phase(overload_config, sessions * 2, overload_frames, 9200);

    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let total_sessions = sessions * 3 + sessions * 2;
    let total_frames = sessions * frames * 3 + sessions * 2 * overload_frames;

    // phase 5: shard-scaling sweep — thousands of sessions, IL lane only
    // (λ = +∞ keeps the CO pool idle), so the measured curve is the
    // sharded engine's own session-handling throughput. The offered load
    // scales with the shard count: at a fixed load the per-shard session
    // slice shrinks as shards are added, added shards idle between the
    // same number of ticks, and the sweep flatlines at the 1-shard rate.
    let sweep_sessions = env_size("ICOIL_SERVE_SWEEP_SESSIONS", 2000);
    let sweep_frames = env_size("ICOIL_SERVE_SWEEP_FRAMES", 8);
    let mut sweep_rates = [0.0_f64; 4];
    let mut sweep_batch_means = [0.0_f64; 4];
    for (slot, shards) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let offered = sweep_sessions * shards as u64;
        // the cap is enforced globally at the handle, so offered load
        // can size it exactly — hash skew never rejects early
        let sweep_config = ServeConfig {
            shards,
            max_sessions: offered as usize,
            ..il_config
        };
        let (sweep_metrics, sweep_secs) = run_phase(
            sweep_config,
            offered,
            sweep_frames,
            9300 + slot as u64 * 10_000,
        );
        sweep_rates[slot] = offered as f64 / sweep_secs;
        // each shard records the width of its own micro-batches, so the
        // merged histogram's mean is the per-shard mean batch width
        sweep_batch_means[slot] = sweep_metrics.series(Series::IlBatchSize).mean();
        assert_eq!(
            sweep_metrics.counter(Counter::ServeSessions),
            offered,
            "sweep at {shards} shard(s) lost sessions"
        );
    }

    let il_lane = il_metrics.series(Series::ServeIlLane);
    let co_lane = co_metrics.series(Series::ServeCoLane);
    let batches = il_metrics.series(Series::IlBatchSize);
    let mut report = ServeReport {
        sessions_per_sec: total_sessions as f64 / elapsed,
        frames_per_sec: total_frames as f64 / elapsed,
        frames_per_sec_int8,
        il_p50_us: il_lane.quantile(0.50) * 1e6,
        il_p95_us: il_lane.quantile(0.95) * 1e6,
        il_p99_us: il_lane.quantile(0.99) * 1e6,
        co_p50_us: co_lane.quantile(0.50) * 1e6,
        co_p95_us: co_lane.quantile(0.95) * 1e6,
        co_p99_us: co_lane.quantile(0.99) * 1e6,
        batch_size_mean: batches.mean(),
        batch_size_max: batches.max(),
        shed_rate_low: shed_rate(&co_metrics),
        shed_rate_overload: shed_rate(&overload_metrics),
        sweep_sessions_per_sec_s1: sweep_rates[0],
        sweep_sessions_per_sec_s2: sweep_rates[1],
        sweep_sessions_per_sec_s4: sweep_rates[2],
        sweep_sessions_per_sec_s8: sweep_rates[3],
        sweep_batch_mean_s1: sweep_batch_means[0],
        sweep_batch_mean_s2: sweep_batch_means[1],
        sweep_batch_mean_s4: sweep_batch_means[2],
        sweep_batch_mean_s8: sweep_batch_means[3],
        had_nonfinite: false,
        sessions,
        frames_per_session: frames,
        co_workers: base.co_workers as u64,
        sweep_sessions,
        sweep_frames,
    };
    report.sanitize();

    assert_eq!(
        report.shed_rate_low, 0.0,
        "the provisioned CO phase must not shed"
    );
    assert!(
        report.shed_rate_overload > 0.0,
        "the overload phase must shed instead of blocking"
    );

    println!(
        "serve load: {} sessions x {} frames | IL p50/p95/p99 {:.0}/{:.0}/{:.0} us \
         (batch mean {:.1}, max {:.0}) | CO p50/p95/p99 {:.0}/{:.0}/{:.0} us | \
         shed {:.3} low, {:.3} overload | {:.1} frames/s",
        report.sessions,
        report.frames_per_session,
        report.il_p50_us,
        report.il_p95_us,
        report.il_p99_us,
        report.batch_size_mean,
        report.batch_size_max,
        report.co_p50_us,
        report.co_p95_us,
        report.co_p99_us,
        report.shed_rate_low,
        report.shed_rate_overload,
        report.frames_per_sec,
    );
    println!(
        "int8 IL phase: {:.1} frames/s through the quantized lane (stepping loop only)",
        report.frames_per_sec_int8,
    );
    println!(
        "shard sweep: {} sessions/shard x {} frames (IL lane, load scaled by shard count) | \
         sessions/s at 1/2/4/8 shards: {:.0}/{:.0}/{:.0}/{:.0} | \
         mean per-shard batch width: {:.1}/{:.1}/{:.1}/{:.1}",
        report.sweep_sessions,
        report.sweep_frames,
        report.sweep_sessions_per_sec_s1,
        report.sweep_sessions_per_sec_s2,
        report.sweep_sessions_per_sec_s4,
        report.sweep_sessions_per_sec_s8,
        report.sweep_batch_mean_s1,
        report.sweep_batch_mean_s2,
        report.sweep_batch_mean_s4,
        report.sweep_batch_mean_s8,
    );

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
