//! Regenerates **Fig. 9**: comparison of parking time across methods
//! (iCOIL vs IL vs pure CO) under the obstacle-count sweep.
//!
//! The shape to reproduce: IL is marginally faster when it succeeds, but
//! its success collapses with clutter; iCOIL stays close to CO's
//! reliability at a parking time comparable to the baselines.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin fig9
//! ```

use icoil_bench::{fmt_time, shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ParkingStats, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: false,
    };
    println!("# Fig. 9: parking-time comparison across methods");
    println!("# ({} episodes per point, random start)", size.episodes);
    println!("# method  n_obs  avg_s   std_s   success");
    for method in [Method::ICoil, Method::Il, Method::Co] {
        for n_obs in [0usize, 1, 3, 5] {
            let scenario_configs: Vec<ScenarioConfig> = (0..size.episodes)
                .map(|s| {
                    ScenarioConfig::new(Difficulty::Easy, 500 + s).with_n_static(n_obs)
                })
                .collect();
            let results = eval::run_batch_with(method, &config, &model, &scenario_configs, &episode, &size.eval_config());
            let stats = ParkingStats::from_results(&results);
            println!(
                "{:7} {n_obs:5}  {:>6}  {:>6}  {:.0}%",
                method.to_string(),
                fmt_time(stats.avg_time),
                fmt_time(stats.std_time),
                stats.success_ratio() * 100.0
            );
        }
        println!();
    }
}
