//! Fuzzes procedurally generated parking scenarios through the
//! differential conformance checks and emits a JSON triage report.
//!
//! ```text
//! conformance [--cases N] [--seed S] [--smoke] [--inject]
//!             [--family NAME] [--out PATH]
//! ```
//!
//! By default the campaign cycles every map family; `--family` pins one
//! (by its stable name, e.g. `angled_echelon`) for the whole run.
//! `ICOIL_FUZZ_CASES` overrides the default case count (200; 25 in
//! `--smoke` mode). Exit status is nonzero when any *unexplained*
//! divergence is found — injected-canary failures (from `--inject`) are
//! expected, shrunk and reported, but never fail the run.

use icoil_conformance::{run_fuzz_with_progress, FuzzConfig};
use icoil_world::MapFamilyKind;

fn main() {
    let mut config = FuzzConfig::default();
    let mut out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                config.smoke = true;
                config.cases = 25;
            }
            "--inject" => config.inject = true,
            "--cases" => {
                i += 1;
                config.cases = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--cases needs a number"));
            }
            "--seed" => {
                i += 1;
                config.seed0 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--family" => {
                i += 1;
                let name = args
                    .get(i)
                    .unwrap_or_else(|| usage("--family needs a family name"));
                config.gen.family = Some(MapFamilyKind::from_name(name).unwrap_or_else(|| {
                    usage(&format!(
                        "unknown family {name} (expected one of: {})",
                        MapFamilyKind::ALL.map(|k| k.name()).join(", ")
                    ))
                }));
            }
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a path")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if let Ok(v) = std::env::var("ICOIL_FUZZ_CASES") {
        if let Ok(n) = v.parse() {
            config.cases = n;
        }
    }

    eprintln!(
        "conformance: fuzzing {} scenario(s) from seed {}{}{}{}",
        config.cases,
        config.seed0,
        match config.gen.family {
            Some(kind) => format!(" (family {})", kind.name()),
            None => " (all families)".to_string(),
        },
        if config.smoke { " (smoke)" } else { "" },
        if config.inject { " (+canary)" } else { "" },
    );
    let started = std::time::Instant::now();
    let report = run_fuzz_with_progress(&config, |done, total| {
        if done % 25 == 0 && done > 0 {
            eprintln!("conformance: {done}/{total} scenarios checked");
        }
    });
    eprintln!(
        "conformance: {} in {:.1}s",
        report.summary(),
        started.elapsed().as_secs_f64()
    );
    for d in &report.divergences {
        eprintln!(
            "  {} seed {} [{}]: {} (minimized: {} static(s), {} route(s))",
            d.check,
            d.seed,
            if d.injected { "injected" } else { "UNEXPLAINED" },
            d.detail,
            d.minimized.statics.len(),
            d.minimized.routes.len(),
        );
    }

    let json = report.to_json();
    match &out {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("conformance: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("conformance: report written to {path}");
        }
        None => println!("{json}"),
    }
    std::process::exit(if report.passed() { 0 } else { 1 });
}

fn usage(problem: &str) -> ! {
    eprintln!("conformance: {problem}");
    eprintln!(
        "usage: conformance [--cases N] [--seed S] [--smoke] [--inject] \
         [--family NAME] [--out PATH]"
    );
    std::process::exit(2);
}
