//! Scenario-matrix benchmark: drives the full iCOIL stack over every
//! procedural map family and emits `BENCH_scenarios.json`.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin scenarios [-- --untrained] [--out PATH]
//! ```
//!
//! Per family ([`icoil_world::MapFamilyKind::ALL`] order) the report
//! carries: success / collision / timeout rates, the HSA mode share
//! (fraction of mode-tagged frames served by the IL lane), the maneuver
//! taxonomy (mean gear reversals and the single-shot share, classified
//! post-hoc from the recorded traces), and CO solve-cost p50/p95 from
//! the merged telemetry histograms.
//!
//! `ICOIL_EPISODES` sets the episodes per family (default 20). The
//! default model is the cached trained artifact (`shared_model`);
//! `--untrained` substitutes a deterministic untrained network so CI can
//! exercise the full pipeline without the training artifact.

use icoil_bench::{
    print_row, shared_model, validate_scenarios_json, FamilyScenarioStats, RunSize,
    ScenariosReport,
};
use icoil_core::eval::drain_episode_metrics;
use icoil_core::{ICoilConfig, ICoilPolicy};
use icoil_il::IlModel;
use icoil_telemetry::{Metrics, Series};
use icoil_vehicle::ActionCodec;
use icoil_world::episode::{run_episode, EpisodeConfig, ModeTag};
use icoil_world::{
    classify_maneuver, gear_reversals, Maneuver, MapFamilyKind, ProcGen, ProcGenConfig, World,
};

fn family_stats(
    kind: MapFamilyKind,
    model: &IlModel,
    episodes: u64,
    config: &ICoilConfig,
) -> FamilyScenarioStats {
    let gen = ProcGen::new(ProcGenConfig {
        family: Some(kind),
        ..ProcGenConfig::default()
    });
    let episode_config = EpisodeConfig {
        max_time: 30.0,
        record_trace: true,
    };
    let mut successes = 0u64;
    let mut collisions = 0u64;
    let mut timeouts = 0u64;
    let mut il_frames = 0u64;
    let mut tagged_frames = 0u64;
    let mut reversals = 0u64;
    let mut single_shots = 0u64;
    let mut merged = Metrics::new();
    for i in 0..episodes {
        // disjoint seed block per family so no two families replay the
        // same lot even where parameter draws coincide
        let seed = 7000 + kind as u64 * 1000 + i;
        let scenario = gen.generate(seed).build();
        let mut policy = ICoilPolicy::new(config, model.clone(), &scenario);
        let mut world = World::new(scenario);
        let result = run_episode(&mut world, &mut policy, &episode_config);
        merged.merge(&drain_episode_metrics(&mut policy, &result));
        match result.outcome {
            icoil_world::Outcome::Success => successes += 1,
            icoil_world::Outcome::Collision => collisions += 1,
            icoil_world::Outcome::Timeout => timeouts += 1,
        }
        for frame in &result.trace {
            if let Some(mode) = frame.mode {
                tagged_frames += 1;
                if mode == ModeTag::Il {
                    il_frames += 1;
                }
            }
        }
        reversals += gear_reversals(&result.trace) as u64;
        if classify_maneuver(&result.trace) == Maneuver::SingleShot {
            single_shots += 1;
        }
    }
    let n = episodes as f64;
    let solve_hist = merged.series(Series::CoSolve);
    FamilyScenarioStats {
        family: kind.name().to_string(),
        episodes,
        success_rate: successes as f64 / n,
        collision_rate: collisions as f64 / n,
        timeout_rate: timeouts as f64 / n,
        il_mode_share: il_frames as f64 / (tagged_frames as f64).max(1.0),
        mean_gear_reversals: reversals as f64 / n,
        single_shot_share: single_shots as f64 / n,
        solve_p50_us: solve_hist.quantile(0.50) * 1e6,
        solve_p95_us: solve_hist.quantile(0.95) * 1e6,
    }
}

fn main() {
    let mut untrained = false;
    let mut out = "BENCH_scenarios.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--untrained" => untrained = true,
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("scenarios: --out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("scenarios: unknown argument {other}");
                eprintln!("usage: scenarios [--untrained] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let size = RunSize::from_env();
    let config = ICoilConfig::default();
    let model = if untrained {
        IlModel::untrained(ActionCodec::default(), config.bev, 1)
    } else {
        shared_model(&size)
    };
    eprintln!(
        "scenarios: {} episode(s) per family, {} model",
        size.episodes,
        if untrained { "untrained" } else { "trained" }
    );

    let started = std::time::Instant::now();
    let families: Vec<FamilyScenarioStats> = MapFamilyKind::ALL
        .into_iter()
        .map(|kind| {
            let stats = family_stats(kind, &model, size.episodes, &config);
            eprintln!(
                "scenarios: {:>16}  success {:>5.2}  il share {:>5.2}  reversals {:>4.1}",
                stats.family, stats.success_rate, stats.il_mode_share, stats.mean_gear_reversals
            );
            stats
        })
        .collect();

    let mut report = ScenariosReport {
        families,
        episodes_per_family: size.episodes,
        trained_model: !untrained,
        had_nonfinite: false,
    };
    report.sanitize();

    let widths = [16usize, 8, 8, 8, 8, 9, 10, 12, 10, 10];
    print_row(
        &[
            "family", "episodes", "success", "collide", "timeout", "il_share", "reversals",
            "single_shot", "p50_us", "p95_us",
        ]
        .map(String::from),
        &widths,
    );
    for f in &report.families {
        print_row(
            &[
                f.family.clone(),
                f.episodes.to_string(),
                format!("{:.2}", f.success_rate),
                format!("{:.2}", f.collision_rate),
                format!("{:.2}", f.timeout_rate),
                format!("{:.2}", f.il_mode_share),
                format!("{:.2}", f.mean_gear_reversals),
                format!("{:.2}", f.single_shot_share),
                format!("{:.1}", f.solve_p50_us),
                format!("{:.1}", f.solve_p95_us),
            ],
            &widths,
        );
    }

    let json = serde_json::to_string(&report).expect("report serializes");
    let v: serde_json::Value = serde_json::from_str(&json).expect("report re-parses");
    if let Err(e) = validate_scenarios_json(&v) {
        eprintln!("scenarios: emitted report fails its own schema: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("scenarios: cannot write {out}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "scenarios: report written to {out} in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
