//! Ablation: the HSA averaging window `T` of eqs. (7)–(8).
//!
//! Short windows make the mode decision jumpy; long windows make it
//! sluggish. This sweep locates the useful range.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin ablate_window
//! ```

use icoil_bench::{fmt_time, shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ParkingStats, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: true,
    };
    let scenario_configs: Vec<ScenarioConfig> = (0..size.episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Normal, s))
        .collect();

    println!(
        "# Ablation: HSA window T (normal level, {} episodes)",
        size.episodes
    );
    println!("# window  switches/ep  avg_s   success");
    for window in [1usize, 5, 20, 60, 150] {
        let mut config = ICoilConfig::default();
        config.hsa.window = window;
        let results =
            eval::run_batch_with(Method::ICoil, &config, &model, &scenario_configs, &episode, &size.eval_config());
        let switches: usize = results
            .iter()
            .map(|r| {
                r.trace
                    .windows(2)
                    .filter(|w| w[0].mode != w[1].mode)
                    .count()
            })
            .sum();
        let stats = ParkingStats::from_results(&results);
        println!(
            "{window:7}  {:10.1}  {:>6}  {:.0}%",
            switches as f64 / results.len() as f64,
            fmt_time(stats.avg_time),
            stats.success_ratio() * 100.0
        );
    }
}
