//! Regenerates **Fig. 6**: parking processes and trajectories of iCOIL
//! vs the IL baseline on a normal-level scenario, with per-frame mode
//! coloring (red = CO mode, yellow = IL mode in the paper).
//!
//! Prints one `(x, y, mode)` series per method; the iCOIL run should park
//! while pure IL fails once the dynamic obstacles interfere.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin fig6
//! ```

use icoil_bench::{shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{AsciiCanvas, Difficulty, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: true,
    };
    // pick the first seed where the two methods diverge (iCOIL parks,
    // IL does not) so the figure shows the paper's contrast
    let mut chosen = None;
    for seed in 0..size.episodes.max(10) {
        let sc = ScenarioConfig::new(Difficulty::Normal, seed);
        let icoil = eval::run_one(Method::ICoil, &config, &model, &sc, &episode);
        let il = eval::run_one(Method::Il, &config, &model, &sc, &episode);
        if icoil.is_success() && !il.is_success() {
            chosen = Some((seed, icoil, il));
            break;
        }
        if chosen.is_none() && icoil.is_success() {
            chosen = Some((seed, icoil, il));
        }
    }
    let Some((seed, icoil, il)) = chosen else {
        println!("# no successful iCOIL episode found in the seed budget");
        return;
    };
    println!("# Fig. 6: parking trajectories on normal level, seed {seed}");
    for (name, result) in [("iCOIL", &icoil), ("IL", &il)] {
        println!(
            "\n## {name}: outcome {} after {:.1} s",
            result.outcome, result.parking_time
        );
        println!("# frame  x  y  theta  mode");
        for f in result.trace.iter().step_by(10) {
            println!(
                "{:5}  {:6.2}  {:6.2}  {:6.3}  {}",
                f.frame,
                f.pose.x,
                f.pose.y,
                f.pose.theta,
                f.mode.map_or("-".to_string(), |m| m.to_string())
            );
        }
        let co_frames = f64::max(
            result
                .trace
                .iter()
                .filter(|f| f.mode == Some(icoil_world::ModeTag::Co))
                .count() as f64,
            0.0,
        );
        println!(
            "# CO-mode fraction: {:.0}%",
            100.0 * co_frames / result.trace.len().max(1) as f64
        );
        // ASCII overlay: '*' = CO mode, 'o' = IL mode, '#' static, 'D' dynamic
        let scenario = ScenarioConfig::new(Difficulty::Normal, seed).build();
        let mut canvas = AsciiCanvas::for_scenario(&scenario, 90);
        canvas.plot_trace(&result.trace);
        println!("{}", canvas.to_text());
    }
}
