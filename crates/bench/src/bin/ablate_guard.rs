//! Ablation: the guard time (mode-switch debounce).
//!
//! The paper adds a 20-timestamp guard to smooth transitions. This sweep
//! measures mode-chatter (switches per episode) and success with and
//! without it.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin ablate_guard
//! ```

use icoil_bench::{fmt_time, shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ParkingStats, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: true,
    };
    let scenario_configs: Vec<ScenarioConfig> = (0..size.episodes)
        .map(|s| ScenarioConfig::new(Difficulty::Normal, s))
        .collect();

    println!(
        "# Ablation: guard time (normal level, {} episodes)",
        size.episodes
    );
    println!("# guard  switches/ep  avg_s   success");
    for guard in [1usize, 5, 20, 60] {
        let mut config = ICoilConfig::default();
        config.hsa.guard_time = guard;
        let results =
            eval::run_batch_with(Method::ICoil, &config, &model, &scenario_configs, &episode, &size.eval_config());
        let switches: usize = results
            .iter()
            .map(|r| {
                r.trace
                    .windows(2)
                    .filter(|w| w[0].mode != w[1].mode)
                    .count()
            })
            .sum();
        let stats = ParkingStats::from_results(&results);
        println!(
            "{guard:6}  {:10.1}  {:>6}  {:.0}%",
            switches as f64 / results.len() as f64,
            fmt_time(stats.avg_time),
            stats.success_ratio() * 100.0
        );
    }
}
