//! Regenerates **Fig. 7**: the HSA scenario uncertainty over time and the
//! control commands (steer, reverse) around the mode switch, for one
//! complete iCOIL parking episode.
//!
//! The paper's observations to reproduce: uncertainty fluctuates early,
//! then drops low and stays stable near the bay; the reverse gear engages
//! after the mode switch; steering settles near zero as the car backs
//! into the bay.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin fig7
//! ```

use icoil_bench::{shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ModeTag, ScenarioConfig};

fn main() {
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: true,
    };
    // first successful iCOIL episode
    let mut chosen = None;
    for seed in 0..size.episodes.max(10) {
        let sc = ScenarioConfig::new(Difficulty::Easy, seed);
        let r = eval::run_one(Method::ICoil, &config, &model, &sc, &episode);
        if r.is_success() {
            chosen = Some((seed, r));
            break;
        }
    }
    let Some((seed, r)) = chosen else {
        println!("# no successful iCOIL episode found");
        return;
    };
    println!("# Fig. 7: HSA uncertainty and control commands, easy seed {seed}");
    println!("# frame  time_s  uncertainty  complexity  mode  steer  reverse");
    for f in r.trace.iter().step_by(5) {
        println!(
            "{:5}  {:6.2}  {:8.4}  {:12.1}  {}  {:+.3}  {}",
            f.frame,
            f.time,
            f.uncertainty.unwrap_or(f64::NAN),
            f.complexity.unwrap_or(f64::NAN),
            f.mode.map_or("-".to_string(), |m| m.to_string()),
            f.action.steer,
            f.action.reverse as u8,
        );
    }
    // summary of the switching structure
    let switches: Vec<usize> = r
        .trace
        .windows(2)
        .filter(|w| w[0].mode != w[1].mode)
        .map(|w| w[1].frame)
        .collect();
    let final_u: Vec<f64> = r
        .trace
        .iter()
        .rev()
        .take(50)
        .filter_map(|f| f.uncertainty)
        .collect();
    let early_u: Vec<f64> = r
        .trace
        .iter()
        .take(200)
        .filter_map(|f| f.uncertainty)
        .collect();
    println!("# mode switches at frames: {switches:?}");
    println!(
        "# mean uncertainty first 200 frames: {:.3}; last 50 frames: {:.3}",
        early_u.iter().sum::<f64>() / early_u.len().max(1) as f64,
        final_u.iter().sum::<f64>() / final_u.len().max(1) as f64,
    );
    let il_frames = r
        .trace
        .iter()
        .filter(|f| f.mode == Some(ModeTag::Il))
        .count();
    println!(
        "# IL-mode fraction {:.0}%; parked at {:.1} s",
        100.0 * il_frames as f64 / r.trace.len() as f64,
        r.parking_time
    );
}
