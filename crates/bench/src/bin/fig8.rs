//! Regenerates **Fig. 8**: iCOIL parking time under different starting
//! points (close / remote / random) and numbers of obstacles (0–5).
//!
//! The shapes to reproduce: the close start is insensitive to the
//! obstacle count; remote and random starts get slower as obstacles are
//! added; the random start has the largest spread.
//!
//! ```text
//! cargo run --release -p icoil-bench --bin fig8
//! ```

use icoil_bench::{fmt_time, shared_model, RunSize};
use icoil_core::{eval, ICoilConfig, Method};
use icoil_world::episode::EpisodeConfig;
use icoil_world::{Difficulty, ParkingStats, ScenarioConfig, StartRegion};

fn main() {
    let size = RunSize::from_env();
    let model = shared_model(&size);
    let config = ICoilConfig::default();
    let episode = EpisodeConfig {
        max_time: 60.0,
        record_trace: false,
    };
    println!("# Fig. 8: iCOIL parking time vs obstacle count per start region");
    println!("# ({} episodes per point)", size.episodes);
    println!("# start    n_obs  avg_s   std_s   success");
    for (name, start) in [
        ("close", StartRegion::Close),
        ("remote", StartRegion::Remote),
        ("random", StartRegion::Random),
    ] {
        for n_obs in 0..=5usize {
            let scenario_configs: Vec<ScenarioConfig> = (0..size.episodes)
                .map(|s| {
                    ScenarioConfig::new(Difficulty::Easy, 300 + s)
                        .with_start(start)
                        .with_n_static(n_obs)
                })
                .collect();
            let results =
                eval::run_batch_with(Method::ICoil, &config, &model, &scenario_configs, &episode, &size.eval_config());
            let stats = ParkingStats::from_results(&results);
            println!(
                "{name:8} {n_obs:5}  {:>6}  {:>6}  {:.0}%",
                fmt_time(stats.avg_time),
                fmt_time(stats.std_time),
                stats.success_ratio() * 100.0
            );
        }
        println!();
    }
}
