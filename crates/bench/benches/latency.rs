//! Criterion micro-benchmarks for the §V-E execution-frequency claim and
//! the per-component costs behind it.
//!
//! * `il_inference` — one forward pass of the IL CNN (paper: 75 Hz);
//! * `co_solve` — one full MPC solve with obstacles (paper: 18 Hz);
//! * `co_solve_warm` — the same solve reusing the previous frame's
//!   [`MpcMemory`] (the deployed receding-horizon path);
//! * `qp_solve` — the inner ADMM QP alone;
//! * `qp_solve_warm` — the QP with a warm iterate + cached workspace;
//! * `hybrid_astar` — one global plan (amortized over replans);
//! * `bev_render` + `detect` — the perception substrate;
//! * `hsa_update` — the mode-switching overhead (must be negligible).

use criterion::{criterion_group, criterion_main, Criterion};
use icoil_co::{solve_mpc, solve_mpc_warm, CoConfig, MovingObstacle, MpcMemory, RefState};
use icoil_geom::{Obb, Pose2};
use icoil_hsa::{Hsa, HsaConfig};
use icoil_il::IlModel;
use icoil_perception::{BevConfig, BevRenderer, ObjectDetector};
use icoil_planner::{plan, PlannerConfig, PlanningProblem};
use icoil_solver::{
    solve_qp, solve_qp_warm, Mat, QpProblem, QpSettings, QpWarmStart, QpWorkspace,
};
use icoil_vehicle::{ActionCodec, VehicleParams, VehicleState};
use icoil_world::{Difficulty, NoiseConfig, ScenarioConfig};
use rand::SeedableRng;

fn bench_il_inference(c: &mut Criterion) {
    let bev = BevConfig::default();
    let mut model = IlModel::untrained(ActionCodec::default(), bev, 1);
    let scenario = ScenarioConfig::new(Difficulty::Easy, 1).build();
    let renderer = BevRenderer::new(bev);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    let image = renderer.render(
        &scenario.start_state,
        &scenario.obstacle_footprints(0.0),
        &scenario.map,
        &NoiseConfig::none(),
        &mut rng,
    );
    c.bench_function("il_inference", |b| {
        b.iter(|| std::hint::black_box(model.infer(&image)))
    });
}

fn bench_co_solve(c: &mut Criterion) {
    let params = VehicleParams::default();
    let config = CoConfig::default();
    let scenario = ScenarioConfig::new(Difficulty::Normal, 1).build();
    let state = VehicleState::new(Pose2::new(10.0, 10.0, 0.0), 1.0);
    let obstacles: Vec<MovingObstacle> = scenario
        .obstacle_footprints(0.0)
        .into_iter()
        .map(MovingObstacle::fixed)
        .collect();
    let reference: Vec<RefState> = (1..=config.horizon)
        .map(|i| RefState {
            x: 10.0 + 1.5 * config.mpc_dt * i as f64,
            y: 10.0,
            theta: 0.0,
            v: 1.5,
        })
        .collect();
    c.bench_function("co_solve", |b| {
        b.iter(|| {
            std::hint::black_box(solve_mpc(&state, &reference, &obstacles, &params, &config))
        })
    });
}

fn bench_co_solve_warm(c: &mut Criterion) {
    let params = VehicleParams::default();
    let config = CoConfig::default();
    let scenario = ScenarioConfig::new(Difficulty::Normal, 1).build();
    let state = VehicleState::new(Pose2::new(10.0, 10.0, 0.0), 1.0);
    let obstacles: Vec<MovingObstacle> = scenario
        .obstacle_footprints(0.0)
        .into_iter()
        .map(MovingObstacle::fixed)
        .collect();
    let reference: Vec<RefState> = (1..=config.horizon)
        .map(|i| RefState {
            x: 10.0 + 1.5 * config.mpc_dt * i as f64,
            y: 10.0,
            theta: 0.0,
            v: 1.5,
        })
        .collect();
    let mut memory = MpcMemory::new();
    // Prime the memory with one frame, as the receding-horizon loop does.
    let _ = solve_mpc_warm(&state, &reference, &obstacles, &params, &config, &mut memory);
    c.bench_function("co_solve_warm", |b| {
        b.iter(|| {
            std::hint::black_box(solve_mpc_warm(
                &state,
                &reference,
                &obstacles,
                &params,
                &config,
                &mut memory,
            ))
        })
    });
}

fn bench_qp_solve(c: &mut Criterion) {
    // MPC-scale QP: 24 vars, 60 rows
    let n = 24;
    let p = Mat::diag(&vec![2.0; n]);
    let q: Vec<f64> = (0..n).map(|i| -0.1 * (i % 5) as f64).collect();
    let m = 60;
    let mut a = Mat::zeros(m, n);
    for i in 0..m {
        *a.at_mut(i, i % n) = 1.0;
        *a.at_mut(i, (i + 7) % n) = -0.5;
    }
    let qp = QpProblem::new(p, q, a, vec![-1.0; m], vec![1.0; m]).unwrap();
    let settings = QpSettings::default();
    c.bench_function("qp_solve", |b| {
        b.iter(|| std::hint::black_box(solve_qp(&qp, &settings)))
    });

    // Warm variant: previous-solution iterate plus cached Ruiz scaling
    // and Cholesky factor, as the MPC loop uses across SCP passes.
    let cold = solve_qp(&qp, &settings);
    let warm = QpWarmStart::from_solution(&cold);
    let mut workspace = QpWorkspace::new();
    let _ = solve_qp_warm(&qp, &settings, Some(&warm), &mut workspace);
    c.bench_function("qp_solve_warm", |b| {
        b.iter(|| std::hint::black_box(solve_qp_warm(&qp, &settings, Some(&warm), &mut workspace)))
    });
}

fn bench_hybrid_astar(c: &mut Criterion) {
    let scenario = ScenarioConfig::new(Difficulty::Easy, 1).build();
    let params = scenario.vehicle_params;
    let obstacles = scenario.static_footprints();
    c.bench_function("hybrid_astar", |b| {
        b.iter(|| {
            let problem = PlanningProblem {
                start: scenario.start_state.pose,
                goal: scenario.map.goal_pose(),
                bounds: scenario.map.bounds(),
                obstacles: &obstacles,
                vehicle: &params,
                safety_margin: 0.35,
            };
            std::hint::black_box(plan(&problem, &PlannerConfig::default()).unwrap())
        })
    });
}

fn bench_perception(c: &mut Criterion) {
    let scenario = ScenarioConfig::new(Difficulty::Hard, 1).build();
    let renderer = BevRenderer::new(BevConfig::default());
    let detector = ObjectDetector::default();
    let footprints = scenario.obstacle_footprints(0.0);
    c.bench_function("bev_render", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
            std::hint::black_box(renderer.render(
                &scenario.start_state,
                &footprints,
                &scenario.map,
                &scenario.noise,
                &mut rng,
            ))
        })
    });
    c.bench_function("detect", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
            std::hint::black_box(detector.detect(
                &scenario.start_state,
                &footprints,
                &scenario.noise,
                &mut rng,
            ))
        })
    });
}

fn bench_hsa_update(c: &mut Criterion) {
    let mut hsa = Hsa::new(HsaConfig::default());
    let probs = vec![1.0 / 21.0; 21];
    let boxes: Vec<Obb> = (0..5)
        .map(|i| Obb::from_pose(Pose2::new(3.0 + i as f64, 2.0, 0.0), 2.0, 2.0))
        .collect();
    c.bench_function("hsa_update", |b| {
        b.iter(|| std::hint::black_box(hsa.update(&probs, &boxes)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_il_inference, bench_co_solve, bench_co_solve_warm,
              bench_qp_solve, bench_hybrid_astar, bench_perception,
              bench_hsa_update
}
criterion_main!(benches);
