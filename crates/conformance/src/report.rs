//! The JSON triage report the fuzz run emits.

use icoil_world::ProcScenario;
use serde::{Deserialize, Serialize};

/// Per-check tally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckStats {
    /// Check name (snake_case, see `CheckKind::name`).
    pub check: String,
    /// How many scenarios this check ran on.
    pub runs: usize,
    /// How many of those diverged.
    pub divergences: usize,
}

/// One recorded divergence, with the original scenario and its shrunken
/// minimal reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceRecord {
    /// Which check diverged (snake_case name).
    pub check: String,
    /// The generator seed of the failing case.
    pub seed: u64,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// `true` for the `--inject` canary: expected, excluded from the
    /// exit status.
    pub injected: bool,
    /// The full failing spec as generated.
    pub scenario: ProcScenario,
    /// The deterministically minimized spec that still diverges.
    pub minimized: ProcScenario,
    /// Obstacle counts dropped by shrinking: `(statics, routes)` removed.
    pub shrunk_away: (usize, usize),
    /// Telemetry counter snapshot (name, value) from replaying the
    /// minimized repro with an instrumented CO policy — solver behavior
    /// context (ADMM iterations, regularization bumps, cold restarts,
    /// numerical errors, …) for triage without re-running anything.
    #[serde(default)]
    pub telemetry: Vec<(String, u64)>,
}

/// The complete triage report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageReport {
    /// Scenarios fuzzed.
    pub cases: usize,
    /// First generator seed (cases use `seed0..seed0 + cases`).
    pub seed0: u64,
    /// Whether the run used the reduced smoke settings.
    pub smoke: bool,
    /// Per-check run/divergence tallies, in check order.
    pub checks: Vec<CheckStats>,
    /// Every divergence, injected or not.
    pub divergences: Vec<DivergenceRecord>,
    /// Count of non-injected divergences — the pass/fail signal.
    pub unexplained: usize,
}

impl TriageReport {
    /// `true` when no *unexplained* divergence was found.
    pub fn passed(&self) -> bool {
        self.unexplained == 0
    }

    /// Serializes the report as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// The tally for `check`, creating it on first use.
    pub fn tally_mut(&mut self, check: &str) -> &mut CheckStats {
        if let Some(i) = self.checks.iter().position(|s| s.check == check) {
            return &mut self.checks[i];
        }
        self.checks.push(CheckStats {
            check: check.to_string(),
            runs: 0,
            divergences: 0,
        });
        self.checks.last_mut().expect("just pushed")
    }

    /// One-line summary for terminal output.
    pub fn summary(&self) -> String {
        let total_runs: usize = self.checks.iter().map(|s| s.runs).sum();
        format!(
            "{} scenarios, {} check runs, {} divergence(s) ({} injected, {} unexplained)",
            self.cases,
            total_runs,
            self.divergences.len(),
            self.divergences.iter().filter(|d| d.injected).count(),
            self.unexplained
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let report = TriageReport {
            cases: 2,
            seed0: 0,
            smoke: true,
            checks: Vec::new(),
            divergences: Vec::new(),
            unexplained: 0,
        };
        let back: TriageReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert!(back.passed());
        assert!(back.summary().contains("2 scenarios"));
    }
}
