//! Differential conformance harness for the iCOIL stack.
//!
//! The repo carries several optimized implementation paths whose whole
//! value rests on being *equivalent* to a simpler reference: warm-started
//! ADMM/MPC vs cold solves, work-stealing parallel evaluation vs serial,
//! buffer-reusing NN inference vs the allocating `forward()` pass, and
//! the HSA's running-sum window arithmetic vs eqs. 7–8 spelled out
//! naively. Each equivalence is asserted here as a *differential check*
//! executed over procedurally generated parking scenarios
//! ([`icoil_world::procedural`]) rather than the three fixed lots.
//!
//! The flow ([`run_fuzz`]):
//!
//! 1. generate a seeded, validated scenario spec — unpinned campaigns
//!    cycle case `i` through map family
//!    `MapFamilyKind::ALL[i % 6]`, so every family sees every check;
//! 2. run each [`CheckKind`] on it (episode-heavy checks are strided);
//! 3. on divergence, shrink the spec with [`icoil_world::shrink`] until
//!    no obstacle, noise level or geometry knob can be removed while the
//!    check still fails;
//! 4. emit a [`TriageReport`] (JSON) with tallies and minimized repros.
//!
//! The `conformance` binary (in `icoil-bench`) drives this from the
//! command line; `scripts/check.sh` runs the smoke campaign on every
//! check-in.

pub mod checks;
pub mod fuzz;
pub mod report;

pub use checks::{run_check, CheckKind, CheckSettings};
pub use fuzz::{run_fuzz, run_fuzz_with_progress, FuzzConfig};
pub use report::{CheckStats, DivergenceRecord, TriageReport};
